"""Micro-benchmark harness for the simulator cores.

The shape follows the ``BaseBenchmark``/harness idiom of GPU perf
suites: a benchmark object owns its inputs (``setup``), a measured
region (``run``), and derived metrics; the harness calibrates the
machine, runs every benchmark with warmup + repeats, and emits one
JSON document (``BENCH_core.json``) that CI's ``perf-gate`` job diffs
against the committed baseline.

Two benchmark families:

* :class:`KernelSimBenchmark` — one registry kernel under one GPU
  config and one SM core; metrics are best wall-clock seconds,
  simulated cycles, and cycles/second.
* :class:`Fig14SweepBenchmark` — the full fig14 kernel x config
  matrix under one core (the ISSUE's trajectory target), simulated
  back-to-back from pre-built traces.

Wall-clock on shared CI runners is noisy, so every measurement is also
reported *normalized*: divided by a pure-Python calibration loop timed
in the same process (dimensionless "calibration units").  The gate
compares normalized values, which cancels machine speed to first
order.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "BaseBenchmark",
    "BenchmarkConfig",
    "BenchmarkHarness",
    "Fig14SweepBenchmark",
    "KernelSimBenchmark",
    "calibrate",
    "check_against_baseline",
    "check_telemetry_overhead",
]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class BenchmarkConfig:
    """Harness-wide measurement knobs."""

    warmup: int = 1
    repeats: int = 3
    scale: float = 0.25


class BaseBenchmark:
    """One measured workload: ``setup()`` once, ``run()`` repeatedly.

    Subclasses set :attr:`name`, build their inputs in :meth:`setup`
    (excluded from timing), and do exactly the measured work in
    :meth:`run`, returning auxiliary metrics (e.g. simulated cycles).
    """

    name: str = "base"

    def setup(self) -> None:  # pragma: no cover - trivial default
        pass

    def run(self) -> dict[str, Any]:
        raise NotImplementedError

    def teardown(self) -> None:  # pragma: no cover - trivial default
        pass


def calibrate(target_seconds: float = 0.2) -> float:
    """Seconds per 10M units of a fixed pure-Python workload.

    The workload (integer arithmetic + list/dict traffic) resembles the
    simulator's instruction mix closely enough to track interpreter and
    machine speed; the result is this machine's "calibration unit".
    """
    def chunk(n: int) -> float:
        t0 = time.perf_counter()
        acc = 0
        data = {}
        seq = []
        for i in range(n):
            acc += i & 7
            if i & 1:
                data[i & 255] = acc
            seq.append(acc)
            if len(seq) > 64:
                seq.clear()
        return time.perf_counter() - t0

    n = 100_000
    while chunk(n) < target_seconds / 4:
        n *= 2
    best = min(chunk(n) for _ in range(3))
    return best * (10_000_000 / n)


class KernelSimBenchmark(BaseBenchmark):
    """Time one registry kernel under one GPU config and SM core."""

    def __init__(self, bench_name: str, config_name: str, core: str,
                 scale: float) -> None:
        self.name = f"{bench_name}/{config_name}/{core}"
        self.bench_name = bench_name
        self.config_name = config_name
        self.core = core
        self.scale = scale
        self._work: list[tuple[Any, Any]] = []  # (traces, gpu)

    def setup(self) -> None:
        from repro.experiments.configs import standard_configs
        from repro.experiments.runner import _GLOBAL_CACHE, _gpu_for
        from repro.workloads.registry import get_benchmark

        bench = get_benchmark(self.bench_name, scale=self.scale)
        config = next(
            c for c in standard_configs() if c.name == self.config_name
        )
        for kernel in bench.kernels:
            gpu = _gpu_for(kernel, config)
            traces = _GLOBAL_CACHE.original(kernel).traces
            self._work.append((traces, gpu))

    def run(self) -> dict[str, Any]:
        from repro.sim.gpu import make_simulator

        cycles = 0.0
        issued = 0
        for traces, gpu in self._work:
            stats = make_simulator(gpu, traces, core=self.core).run()
            cycles += stats.cycles
            issued += stats.issued_total
        return {"cycles": cycles, "issued": issued}


class Fig14SweepBenchmark(BaseBenchmark):
    """The full fig14 kernel x config simulation matrix, one core.

    Traces (functional execution + compilation) are built in
    ``setup()`` — the measured region is purely the timing simulator,
    which is what the event core changes.
    """

    def __init__(self, core: str, scale: float) -> None:
        self.name = f"fig14-sweep/{core}"
        self.core = core
        self.scale = scale
        self._work: list[tuple[Any, Any]] = []

    def setup(self) -> None:
        from repro.errors import CompilerError, ResourceError
        from repro.experiments.configs import standard_configs
        from repro.experiments.runner import (
            _GLOBAL_CACHE, _compiler_options_for, _gpu_for,
        )
        from repro.workloads.registry import all_benchmarks, get_benchmark

        for name in all_benchmarks():
            bench = get_benchmark(name, scale=self.scale)
            for kernel in bench.kernels:
                for config in standard_configs():
                    gpu = _gpu_for(kernel, config)
                    entry = _GLOBAL_CACHE.original(kernel)
                    self._work.append((entry.traces, gpu))
                    options = _compiler_options_for(kernel, config)
                    if options is None:
                        continue
                    try:
                        spec_entry = _GLOBAL_CACHE.specialized(
                            kernel, options
                        )
                    except (CompilerError, ResourceError):
                        continue
                    if spec_entry is not None:
                        self._work.append((spec_entry.traces, gpu))

    def run(self) -> dict[str, Any]:
        from repro.errors import ReproError
        from repro.sim.gpu import make_simulator

        cycles = 0.0
        sims = 0
        for traces, gpu in self._work:
            try:
                stats = make_simulator(gpu, traces, core=self.core).run()
            except ReproError:
                continue
            cycles += stats.cycles
            sims += 1
        return {"cycles": cycles, "sims": sims}


@dataclass
class BenchmarkHarness:
    """Calibrate, measure every benchmark, emit the JSON document."""

    config: BenchmarkConfig = field(default_factory=BenchmarkConfig)

    def measure(self, bench: BaseBenchmark) -> dict[str, Any]:
        bench.setup()
        try:
            for _ in range(self.config.warmup):
                bench.run()
            best = None
            metrics: dict[str, Any] = {}
            for _ in range(max(1, self.config.repeats)):
                t0 = time.perf_counter()
                metrics = bench.run()
                elapsed = time.perf_counter() - t0
                best = elapsed if best is None else min(best, elapsed)
        finally:
            bench.teardown()
        record = {"wall_s": best, **metrics}
        cycles = metrics.get("cycles")
        if cycles:
            record["cycles_per_sec"] = cycles / best
        return record

    def run_suite(
        self, benchmarks: list[BaseBenchmark]
    ) -> dict[str, Any]:
        calib = calibrate()
        results: dict[str, dict[str, Any]] = {}
        for bench in benchmarks:
            record = self.measure(bench)
            record["normalized"] = record["wall_s"] / calib
            results[bench.name] = record
            print(
                f"  {bench.name:40s} {record['wall_s']:8.3f}s "
                f"({record['normalized']:7.2f} calib units)"
            )
        doc: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "scale": self.config.scale,
            "repeats": self.config.repeats,
            "calibration_s": calib,
            "benchmarks": results,
        }
        doc["summary"] = _summarize(results)
        return doc


def _summarize(results: dict[str, dict[str, Any]]) -> dict[str, Any]:
    """Event-vs-reference speedups for every measured pair."""
    summary: dict[str, Any] = {}
    for name, record in results.items():
        if not name.endswith("/event"):
            continue
        ref = results.get(name[: -len("event")] + "reference")
        if ref is None:
            continue
        pair = name[: -len("/event")]
        summary[pair] = {
            "reference_wall_s": ref["wall_s"],
            "event_wall_s": record["wall_s"],
            "speedup": ref["wall_s"] / record["wall_s"],
        }
    return summary


def check_against_baseline(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float,
) -> list[str]:
    """Regression report: normalized wall-clock vs the committed file.

    Returns human-readable violation lines (empty = gate passes).  Only
    benchmarks present in both documents are compared; removed or new
    benchmarks are reported informationally by the caller.  Comparison
    is on calibration-normalized time so a slower CI machine does not
    fail the gate (and a faster one does not mask a regression).
    """
    problems: list[str] = []
    if baseline.get("schema") != current.get("schema"):
        return [
            f"schema changed ({baseline.get('schema')} -> "
            f"{current.get('schema')}): refresh BENCH_core.json"
        ]
    base_bench = baseline.get("benchmarks", {})
    for name, record in current.get("benchmarks", {}).items():
        base = base_bench.get(name)
        if base is None or "normalized" not in base:
            continue
        allowed = base["normalized"] * (1.0 + tolerance)
        if record["normalized"] > allowed:
            problems.append(
                f"{name}: normalized wall {record['normalized']:.2f} "
                f"exceeds baseline {base['normalized']:.2f} "
                f"by more than {tolerance:.0%}"
            )
    return problems


def check_telemetry_overhead(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.02,
) -> list[str]:
    """The disabled-feature overhead gate (ISSUE 7/8 acceptance).

    The harness always measures with the telemetry registry *and* the
    SMEM sanitizer disabled (their default states), so the *aggregate*
    normalized wall-clock of the suite vs the committed baseline
    bounds what both opt-in code paths cost when off — the telemetry
    counters and the sanitizer's None-guarded hooks in the functional
    machine's hot loops.  The aggregate sum is used rather than
    per-benchmark values because a 2%% bar is inside single-benchmark
    noise even after calibration normalization; summing the suite
    averages that noise away.
    """
    if baseline.get("schema") != current.get("schema"):
        return []  # the schema line from check_against_baseline covers it
    base_bench = baseline.get("benchmarks", {})
    shared = [
        name for name, record in current.get("benchmarks", {}).items()
        if "normalized" in record
        and "normalized" in base_bench.get(name, {})
    ]
    if not shared:
        return []
    base_total = sum(base_bench[n]["normalized"] for n in shared)
    cur_total = sum(
        current["benchmarks"][n]["normalized"] for n in shared
    )
    if base_total <= 0:
        return []
    ratio = cur_total / base_total
    if ratio > 1.0 + tolerance:
        return [
            f"telemetry-disabled overhead: aggregate normalized wall "
            f"{cur_total:.2f} is {ratio - 1.0:.1%} over baseline "
            f"{base_total:.2f} (allowed {tolerance:.0%})"
        ]
    return []


def load_json(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def dump_json(doc: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
