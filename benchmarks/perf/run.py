"""Entrypoint for the perf harness / CI perf-gate.

Measure and write a fresh baseline::

    PYTHONPATH=src python -m benchmarks.perf.run --scale 0.25 \
        --output BENCH_core.json

Gate against the committed baseline (CI's ``perf-gate`` job)::

    PYTHONPATH=src python -m benchmarks.perf.run --scale 0.25 \
        --output bench_fresh.json --check BENCH_core.json \
        --tolerance 0.2

Exit status 1 when any benchmark's calibration-normalized wall-clock
regresses past the tolerance.
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.perf.harness import (
    BenchmarkConfig,
    BenchmarkHarness,
    Fig14SweepBenchmark,
    KernelSimBenchmark,
    check_against_baseline,
    check_telemetry_overhead,
    dump_json,
    load_json,
)

#: Registry kernels micro-benchmarked per core (a slow, a mid, a fast
#: one at scale 0.25 — the trajectory signal, not full coverage; the
#: fig14 sweep below covers everything).
MICRO_BENCHMARKS = [
    ("spmv1_g3", "WASP_GPU"),
    ("pointnet", "WASP_GPU"),
    ("bert", "BASELINE"),
]


def build_suite(scale: float, sweep: bool):
    suite = []
    for bench_name, config_name in MICRO_BENCHMARKS:
        for core in ("reference", "event"):
            suite.append(
                KernelSimBenchmark(bench_name, config_name, core, scale)
            )
    if sweep:
        for core in ("reference", "event"):
            suite.append(Fig14SweepBenchmark(core, scale))
    return suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.run",
        description="Simulator perf harness: measure both SM cores and "
                    "emit/gate BENCH_core.json",
    )
    parser.add_argument("--scale", type=float, default=0.25,
                        help="registry problem-size scale (default 0.25)")
    parser.add_argument("--output", default="BENCH_core.json",
                        metavar="PATH", help="write results here")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare against this committed baseline "
                             "and exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed normalized wall-clock regression "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--telemetry-tolerance", type=float,
                        default=None, metavar="FRAC",
                        help="with --check: also fail when the suite's "
                             "aggregate normalized wall-clock (telemetry "
                             "disabled) exceeds the baseline by this "
                             "fraction (ISSUE 7 gate: 0.02)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per benchmark (best-of)")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the fig14 sweep benchmarks")
    args = parser.parse_args(argv)

    config = BenchmarkConfig(repeats=args.repeats, scale=args.scale)
    harness = BenchmarkHarness(config)
    suite = build_suite(args.scale, sweep=not args.no_sweep)
    print(f"[perf] measuring {len(suite)} benchmarks at "
          f"scale {args.scale} ({args.repeats} repeats)")
    doc = harness.run_suite(suite)
    for pair, stats in doc["summary"].items():
        print(f"  {pair}: event {stats['speedup']:.2f}x over reference")
    dump_json(doc, args.output)
    print(f"[perf] wrote {args.output}")

    if args.check:
        baseline = load_json(args.check)
        problems = check_against_baseline(doc, baseline, args.tolerance)
        if args.telemetry_tolerance is not None:
            problems += check_telemetry_overhead(
                doc, baseline, args.telemetry_tolerance
            )
        if problems:
            print(f"[perf] GATE FAILED vs {args.check}:")
            for line in problems:
                print(f"  {line}")
            return 1
        print(f"[perf] gate passed vs {args.check} "
              f"(tolerance {args.tolerance:.0%}"
              + (f", telemetry {args.telemetry_tolerance:.0%}"
                 if args.telemetry_tolerance is not None else "")
              + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
