"""Simulator performance-trajectory harness (``BENCH_core.json``).

Not a pytest package: these modules measure wall-clock, so they run as
``python -m benchmarks.perf.run`` (CI's ``perf-gate`` job), never under
the test runner.
"""
