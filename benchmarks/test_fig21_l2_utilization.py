"""Bench: regenerate Figure 21 (L2 bandwidth utilization)."""

from benchmarks.conftest import emit
from repro.experiments import fig21


def test_fig21_l2_utilization(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig21.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(result)
    improved = sum(
        1 for row in result.rows if row.wasp_l2 >= row.baseline_l2 - 0.02
    )
    # Paper shape: WASP generally improves L2 utilization.
    assert improved >= len(result.rows) // 2
