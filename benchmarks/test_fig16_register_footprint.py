"""Bench: regenerate Figure 16 (register footprint per thread block)."""

from benchmarks.conftest import emit
from repro.experiments import fig16


def test_fig16_register_footprint(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig16.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(result)
    # Paper shape: uniform allocation inflates footprints well past the
    # original kernel; per-stage allocation recovers a large share.
    inflations = [r.uniform_ratio for r in result.rows]
    assert max(inflations) > 1.5
    assert result.mean_savings() > 0.05
    for row in result.rows:
        assert row.per_stage_ratio <= row.uniform_ratio + 1e-9
