"""Bench: regenerate Table IV (WASP area overhead)."""

from benchmarks.conftest import emit
from repro.experiments import table4


def test_table4_area_overhead(benchmark):
    result = benchmark.pedantic(table4.run, rounds=3, iterations=1)
    emit(result)
    rows = {name: per_gpu for name, _, per_gpu in result.rows}
    # Paper values: mapper ~56 KB, RFQ ~30 KB, TMA ~27 KB per GPU.
    assert abs(rows["Warp Mapper"] - 56) < 2
    assert abs(rows["RFQ Metadata"] - 30) < 2
    assert abs(rows["WASP-TMA"] - 27) < 1
    assert rows["Total"] < 200
