"""Ablation benches for the design choices DESIGN.md calls out.

These are not paper figures; they isolate individual mechanisms:

* double buffering vs single buffering on the tile pipeline,
* per-kernel opt-in vs forced specialization,
* group_pipeline mapping vs round-robin on WASP hardware,
* the cost of SMEM queues vs RFQs at equal compiler output.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core.compiler import WaspCompilerOptions
from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.reporting import format_table, geomean
from repro.experiments.runner import GLOBAL_CACHE, run_benchmark
from repro.sim.config import QueueImpl
from repro.workloads import get_benchmark

GEMM_BENCHMARKS = ["3d_unet", "bert", "dlrm", "gpt2"]
PIPE_BENCHMARKS = ["pointnet", "rnnt", "lonestar_bfs", "hpgmg"]


class _Result:
    def __init__(self, title, headers, rows):
        self.title, self.headers, self.rows = title, headers, rows

    def to_text(self):
        return format_table(self.headers, self.rows, title=self.title)


def test_ablation_double_buffering(benchmark, bench_scale):
    """Double buffering should not lose to single buffering on tiles."""
    single = replace(
        wasp_gpu_config(),
        name="SINGLE_BUF",
        compiler=WaspCompilerOptions(double_buffering=False),
    )
    double = wasp_gpu_config()

    def run():
        rows = []
        for name in GEMM_BENCHMARKS:
            bench = get_benchmark(name, bench_scale)
            t_single = run_benchmark(bench, single, GLOBAL_CACHE).total_cycles
            t_double = run_benchmark(bench, double, GLOBAL_CACHE).total_cycles
            rows.append([name, f"{t_single / t_double:.3f}"])
        return _Result(
            "Ablation: double-buffering speedup over single buffering",
            ["Benchmark", "Speedup"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    ratios = [float(r[1]) for r in result.rows]
    assert geomean(ratios) >= 0.98  # never a systematic loss


def test_ablation_opt_in(benchmark, bench_scale):
    """Forced specialization can lose; opt-in never does."""
    forced = replace(wasp_gpu_config(), name="FORCED", opt_in=False)
    opt_in = wasp_gpu_config()
    base = baseline_config()

    def run():
        rows = []
        for name in PIPE_BENCHMARKS + ["spgemm2_road"]:
            bench = get_benchmark(name, bench_scale)
            t_base = run_benchmark(bench, base, GLOBAL_CACHE).total_cycles
            t_forced = run_benchmark(bench, forced, GLOBAL_CACHE).total_cycles
            t_opt = run_benchmark(bench, opt_in, GLOBAL_CACHE).total_cycles
            rows.append([
                name, f"{t_base / t_forced:.2f}", f"{t_base / t_opt:.2f}",
            ])
        return _Result(
            "Ablation: forced specialization vs per-kernel opt-in "
            "(speedup over BASELINE)",
            ["Benchmark", "Forced", "Opt-in"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    for row in result.rows:
        assert float(row[2]) >= float(row[1]) - 1e-9
        assert float(row[2]) >= 0.999  # opt-in never loses to baseline


def test_ablation_group_pipeline_mapping(benchmark, bench_scale):
    """Figure 5's mapper: group_pipeline vs round-robin, same hardware."""
    grouped = wasp_gpu_config()
    round_robin = replace(
        grouped,
        name="ROUND_ROBIN",
        gpu=grouped.gpu.with_features(
            replace(grouped.gpu.features, group_pipeline_mapping=False)
        ),
    )

    def run():
        rows = []
        for name in PIPE_BENCHMARKS:
            bench = get_benchmark(name, bench_scale)
            t_rr = run_benchmark(bench, round_robin, GLOBAL_CACHE).total_cycles
            t_gp = run_benchmark(bench, grouped, GLOBAL_CACHE).total_cycles
            rows.append([name, f"{t_rr / t_gp:.3f}"])
        return _Result(
            "Ablation: group_pipeline mapping speedup over round-robin",
            ["Benchmark", "Speedup"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    ratios = [float(r[1]) for r in result.rows]
    assert geomean(ratios) >= 0.97


def test_ablation_rfq_vs_smem_queues(benchmark, bench_scale):
    """Section III-C: RFQs vs software SMEM queues, same compiler output."""
    rfq = wasp_gpu_config()
    smem = replace(
        rfq,
        name="SMEM_QUEUES",
        gpu=rfq.gpu.with_features(
            replace(rfq.gpu.features, queue_impl=QueueImpl.SMEM)
        ),
    )

    def run():
        rows = []
        for name in PIPE_BENCHMARKS:
            bench = get_benchmark(name, bench_scale)
            t_smem = run_benchmark(bench, smem, GLOBAL_CACHE).total_cycles
            t_rfq = run_benchmark(bench, rfq, GLOBAL_CACHE).total_cycles
            rows.append([name, f"{t_smem / t_rfq:.3f}"])
        return _Result(
            "Ablation: RFQ speedup over SMEM software queues",
            ["Benchmark", "Speedup"], rows,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    ratios = [float(r[1]) for r in result.rows]
    # Paper: RFQs remove SMEM-queue overhead (4%-30%+ depending on
    # SMEM-bandwidth sensitivity).
    assert geomean(ratios) >= 1.0
