"""Bench: regenerate Figure 19 (dynamic instruction breakdown B/W/T)."""

from benchmarks.conftest import emit
from repro.experiments import fig19


def test_fig19_dynamic_instructions(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig19.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(result)
    reduced = 0
    for name in {row.benchmark for row in result.rows}:
        variants = result.variants_of(name)
        assert variants["B"].normalized_total == 1.0
        # Paper shape: WASP-TMA cuts issue slots versus software
        # address generation on offloadable benchmarks.
        if variants["T"].total < variants["W"].total:
            reduced += 1
    assert reduced >= 8
