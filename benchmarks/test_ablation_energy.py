"""Ablation bench: energy proxy for the WASP-TMA efficiency claim.

Section III-E argues hardware address generation "reduces energy
consumption"; this bench quantifies the claim with the counts-based
energy model on the offload-friendly benchmarks.
"""

from dataclasses import replace

from benchmarks.conftest import emit
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.experiments.reporting import format_table, geomean
from repro.fexec import run_kernel
from repro.sim.config import wasp_gpu
from repro.sim.energy import simulate_with_energy
from repro.workloads import get_benchmark

OFFLOAD_BENCHMARKS = ["pointnet", "curobo", "lonestar_bfs",
                      "lonestar_mst", "lonestar_sp"]


class _Result:
    def __init__(self, rows):
        self.rows = rows

    def to_text(self):
        return format_table(
            ["Benchmark", "Kernel", "Issue+RF energy ratio",
             "Total energy ratio"],
            self.rows,
            title="Ablation: WASP-TMA energy vs software address "
                  "generation (lower is better)",
        )


def _kernel_energy(kernel, options):
    compiled = WaspCompiler(options).compile(
        kernel.program, num_warps=kernel.launch.num_warps
    )
    if not compiled.specialized:
        return None
    launch = replace(
        kernel.launch,
        num_warps=kernel.launch.num_warps * compiled.num_stages,
    )
    traces = run_kernel(
        compiled.program, kernel.image_factory(), launch
    ).traces
    _, energy = simulate_with_energy(traces, wasp_gpu())
    return energy


def test_tma_energy_reduction(benchmark, bench_scale):
    software = WaspCompilerOptions(enable_tma_offload=False)
    hardware = WaspCompilerOptions()

    def run():
        rows = []
        for name in OFFLOAD_BENCHMARKS:
            bench = get_benchmark(name, bench_scale)
            kernel = bench.kernels[0]
            e_soft = _kernel_energy(kernel, software)
            e_tma = _kernel_energy(kernel, hardware)
            if e_soft is None or e_tma is None:
                continue
            core_ratio = (e_tma.issue + e_tma.register_file) / (
                e_soft.issue + e_soft.register_file
            )
            total_ratio = e_tma.total / e_soft.total
            rows.append(
                [name, kernel.name, f"{core_ratio:.2f}",
                 f"{total_ratio:.2f}"]
            )
        return _Result(rows)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(result)
    assert result.rows
    core_ratios = [float(r[2]) for r in result.rows]
    # Offloading must cut issue/register-file energy on these kernels.
    assert geomean(core_ratios) < 0.75
