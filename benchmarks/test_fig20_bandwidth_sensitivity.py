"""Bench: regenerate Figure 20 (memory bandwidth sensitivity)."""

from benchmarks.conftest import SWEEP_BENCHMARKS, emit
from repro.experiments import fig20
from repro.experiments.reporting import geomean


def test_fig20_bandwidth_sensitivity(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig20.run(scale=bench_scale, benchmarks=SWEEP_BENCHMARKS),
        rounds=1, iterations=1,
    )
    emit(result)
    half_base = geomean(
        result.value(name, "A100 0.5x") for name, _ in result.rows
    )
    half_wasp = geomean(
        result.value(name, "WASP 0.5x") for name, _ in result.rows
    )
    # Paper shape: halving bandwidth hurts the baseline badly (paper
    # geomean 0.75x) while WASP at half bandwidth stays close to the
    # full-bandwidth baseline.
    assert half_base < 1.0
    assert half_wasp > half_base
    full_wasp = geomean(
        result.value(name, "WASP 1x") for name, _ in result.rows
    )
    assert full_wasp > 1.0
