"""Bench: regenerate Figure 17 (pipeline-aware scheduling policies)."""

from benchmarks.conftest import SWEEP_BENCHMARKS, emit
from repro.experiments import fig17


def test_fig17_scheduling_policies(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig17.run(scale=bench_scale, benchmarks=SWEEP_BENCHMARKS),
        rounds=1, iterations=1,
    )
    emit(result)
    means = dict(zip(result.policy_names, result.geomeans()))
    # Reproduction shape (see EXPERIMENTS.md): policy effects are small
    # in this model because GTO's oldest-first tie-break already favours
    # producer warps (they are admitted first).  We require all policies
    # to stay within a few percent of GTO and report the ordering.
    assert all(v > 0.9 for v in means.values())
    assert max(means.values()) >= 0.97
