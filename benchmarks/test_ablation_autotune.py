"""Ablation bench: per-kernel RFQ size tuning (Figure 18 extension)."""

from benchmarks.conftest import SWEEP_BENCHMARKS, emit
from repro.experiments import autotune


def test_autotune_rfq_sizes(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: autotune.run(scale=bench_scale,
                             benchmarks=SWEEP_BENCHMARKS),
        rounds=1, iterations=1,
    )
    emit(result)
    # Per-kernel tuning never loses to the global size and usually
    # recovers a little extra (the paper's "can be individually set per
    # kernel" remark).
    assert result.mean_gain() >= 1.0 - 1e-9
