"""Bench: regenerate Figure 15 (progressive WASP hardware features)."""

from benchmarks.conftest import SWEEP_BENCHMARKS, emit
from repro.experiments import fig15


def test_fig15_progressive_features(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig15.run(scale=bench_scale, benchmarks=SWEEP_BENCHMARKS),
        rounds=1, iterations=1,
    )
    emit(result)
    cumulative = result.geomeans()
    # Paper shape: the full stack beats the software-only compiler, and
    # adding hardware features never hurts on aggregate.
    assert cumulative[-1] > 1.05
    assert cumulative[-1] >= cumulative[0] - 0.02
