"""Benchmark-harness configuration.

Each bench regenerates one paper table or figure and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full
evaluation.  ``REPRO_BENCH_SCALE`` (default 0.25) shrinks the workloads
for quick runs; set it to 1.0 for the full-size sweep recorded in
EXPERIMENTS.md.

The session keeps the persistent trace cache warm: every bench shares
``GLOBAL_CACHE`` (backed by ``REPRO_CACHE_DIR``, default
``.repro_cache``), so traces generated for one figure are reused by the
next, and by subsequent sessions.  Aggregate hit/miss counts are
printed at teardown.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

# A small benchmark subset for the most expensive sweeps; the headline
# figures (14, 19, 21, Table II) always run the full 20-benchmark suite.
SWEEP_BENCHMARKS = [
    "3d_unet", "pointnet", "rnnt", "spmv2_web", "spmm2_web",
    "hpgmg", "lonestar_bfs", "lonestar_sp",
]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session", autouse=True)
def warm_trace_cache():
    """Share one persistent trace cache across the whole bench session."""
    from repro.experiments.runner import GLOBAL_CACHE

    yield GLOBAL_CACHE
    stats = GLOBAL_CACHE.stats
    store = GLOBAL_CACHE.store
    where = store.cache_dir if store is not None else "memory only"
    print(
        f"\n[trace cache @ {where}: {stats.memory_hits} memory hits, "
        f"{stats.disk_hits} disk hits, {stats.generations} generations, "
        f"{stats.disk_writes} disk writes]"
    )


def emit(result) -> None:
    """Print a reproduced artifact beneath the benchmark timings."""
    print()
    print(result.to_text())
