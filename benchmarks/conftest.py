"""Benchmark-harness configuration.

Each bench regenerates one paper table or figure and prints it, so
``pytest benchmarks/ --benchmark-only -s`` reproduces the full
evaluation.  ``REPRO_BENCH_SCALE`` (default 0.25) shrinks the workloads
for quick runs; set it to 1.0 for the full-size sweep recorded in
EXPERIMENTS.md.
"""

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))

# A small benchmark subset for the most expensive sweeps; the headline
# figures (14, 19, 21, Table II) always run the full 20-benchmark suite.
SWEEP_BENCHMARKS = [
    "3d_unet", "pointnet", "rnnt", "spmv2_web", "spmm2_web",
    "hpgmg", "lonestar_bfs", "lonestar_sp",
]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


def emit(result) -> None:
    """Print a reproduced artifact beneath the benchmark timings."""
    print()
    print(result.to_text())
