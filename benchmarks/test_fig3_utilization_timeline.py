"""Bench: regenerate Figure 3 (pointnet utilization timeline)."""

from benchmarks.conftest import emit
from repro.experiments import fig3


def test_fig3_pointnet_timeline(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig3.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(result)
    base = result.by_config("BASELINE")
    wasp = result.by_config("WASP_GPU")
    # Paper shape: WASP overlaps compute with memory; the baseline
    # alternates phases, so its overlap score is lower.
    assert wasp.overlap_score() > base.overlap_score()
