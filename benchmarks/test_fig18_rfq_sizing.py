"""Bench: regenerate Figure 18 (RFQ size sweep)."""

from benchmarks.conftest import SWEEP_BENCHMARKS, emit
from repro.experiments import fig18


def test_fig18_rfq_sizes(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig18.run(scale=bench_scale, benchmarks=SWEEP_BENCHMARKS),
        rounds=1, iterations=1,
    )
    emit(result)
    means = dict(zip(result.sizes, result.geomeans()))
    # Paper shape: performance falls off for very deep queues because
    # RFQ register storage crowds out resident thread blocks.  (The
    # paper's small-queue penalty is muted here — see EXPERIMENTS.md:
    # in this model extra SM occupancy substitutes for queue depth.)
    assert means[128] < means[32]
    assert means[64] <= means[32] + 0.02
    assert all(v > 1.0 for v in means.values())  # WASP always wins
