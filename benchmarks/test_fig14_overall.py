"""Bench: regenerate Figure 14 (overall speedup, four configurations)."""

from benchmarks.conftest import emit
from repro.experiments import fig14
from repro.experiments.reporting import geomean


def test_fig14_overall_speedup(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: fig14.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(result)
    means = dict(zip(result.config_names, result.geomeans()))
    # Paper shape: BASELINE <= TILE <= ALL <= WASP_GPU, with the full
    # WASP GPU delivering a large mean speedup (paper: 1.47x).
    assert means["WASP_COMPILER_TILE"] >= 0.999
    assert means["WASP_COMPILER_ALL"] >= means["WASP_COMPILER_TILE"] - 0.01
    assert means["WASP_GPU"] >= means["WASP_COMPILER_ALL"]
    assert means["WASP_GPU"] > 1.25
