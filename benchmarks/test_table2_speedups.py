"""Bench: regenerate Table II (median/max kernel speedups)."""

from benchmarks.conftest import emit
from repro.experiments import table2


def test_table2_kernel_speedups(benchmark, bench_scale):
    result = benchmark.pedantic(
        lambda: table2.run(scale=bench_scale), rounds=1, iterations=1
    )
    emit(result)
    speedups = {row.name: row.max_speedup for row in result.rows}
    # Paper shape: every benchmark has at least one kernel that gains.
    assert max(speedups.values()) > 1.3
    assert len(result.rows) == 20
