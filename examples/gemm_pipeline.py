#!/usr/bin/env python3
"""The CUTLASS pattern: SMEM-tiled GEMM with automatic double buffering.

Builds the tile-GEMM kernel (Figure 1's motivating pattern), shows the
compiler's transformation to the two-stage arrive/wait pipeline with a
doubled SMEM buffer (Figure 10), and compares three points: the naive
phased kernel on the baseline GPU, the CUTLASS-modelled baseline (tile
pipeline with idealized mapping — what the paper's BASELINE runs on GEMM
kernels), and the full WASP GPU.

Run:  python examples/gemm_pipeline.py
"""


from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.runner import run_kernel as run_eval_kernel
from repro.fexec import run_kernel
from repro.sim import simulate_kernel
from repro.sim.config import baseline_a100
from repro.workloads.kernels import tile_gemm_kernel


def main() -> None:
    kernel = tile_gemm_kernel(
        "gemm_example", k_tiles=8, tile_elems=512, hmma_per_tile=16,
        num_tbs=2,
    )

    # Point 1: the *unspecialized* phased kernel (Figure 1a).
    traces = run_kernel(
        kernel.program, kernel.image_factory(), kernel.launch
    ).traces
    phased = simulate_kernel(traces, baseline_a100())
    print(f"Phased kernel (no warp specialization): "
          f"{phased.cycles:,.0f} cycles")

    # Point 2: the paper's BASELINE — CUTLASS-style tile pipeline.
    cutlass = run_eval_kernel(kernel, baseline_config())
    print(f"CUTLASS baseline (tile pipeline, idealized mapping): "
          f"{cutlass.cycles:,.0f} cycles "
          f"({phased.cycles / cutlass.cycles:.2f}x over phased)")

    # Point 3: the full WASP GPU.
    wasp = run_eval_kernel(kernel, wasp_gpu_config())
    print(f"WASP GPU: {wasp.cycles:,.0f} cycles "
          f"({phased.cycles / wasp.cycles:.2f}x over phased)")

    # Show the double-buffered pipeline the compiler generated.
    compiled = WaspCompiler(WaspCompilerOptions()).compile(
        kernel.program, num_warps=kernel.launch.num_warps
    )
    spec = compiled.program.tb_spec
    print(f"\nCompiler output: {compiled.num_stages} stages, "
          f"double-buffered tiles: {compiled.double_buffered}")
    print(f"SMEM: {kernel.program.smem_words} -> "
          f"{compiled.program.smem_words} words (buffers doubled)")
    print(f"Arrive/wait barriers: {sorted(spec.barrier_expected)}")
    print(f"Per-stage registers: {spec.stage_registers} "
          f"(uniform allocation would give every warp "
          f"{max(spec.stage_registers)})")

    producer_blocks = [
        blk.label for blk in compiled.program.blocks
        if blk.label.startswith("s0_")
    ]
    print(f"\nProducer-stage blocks: {producer_blocks}")
    print("(the __db copies are the second buffer of Figure 10)")


if __name__ == "__main__":
    main()
