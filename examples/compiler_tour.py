#!/usr/bin/env python3
"""A tour of the WASP compiler on the paper's three running examples.

Walks the Section IV pipeline step by step on the streaming
(Figure 11), gather (Figure 12) and SMEM-tile (Figures 10/13) kernels:
PDG construction, eligibility, stage extraction, buffering, WASP-TMA
offload, and the final thread-block specification (Table I).

Run:  python examples/compiler_tour.py
"""

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.core.compiler.eligibility import classify_loads
from repro.core.compiler.extraction import plan_extraction
from repro.core.compiler.pdg import build_pdg
from repro.core.compiler.skeleton import compute_skeleton
from repro.isa import ProgramBuilder, SpecialReg

WIDTH = 16


def build_stream_program(n, base_in, base_out):
    """out[i] = 2*in[i] + 1: the Figure 11 streaming shape."""
    b = ProgramBuilder("stream")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    i = b.mov(0)
    tid = b.imad(wid, WIDTH, lane)
    stride = b.imul(nw, WIDTH)
    b.label("loop")
    pos = b.iadd(tid, i)
    val = b.ldg(b.iadd(pos, base_in))
    val = b.ffma(val, 2.0, 1.0)
    b.stg(b.iadd(pos, base_out), val)
    b.iadd(i, stride, dst=i)
    b.bra("loop", guard=b.isetp("lt", i, n))
    b.label("done")
    b.exit()
    return b.finish()


def build_gather_program(n, idx_base, data_base, out_base):
    """out[i] = 3*data[idx[i]]: the Figure 12 gather shape."""
    b = ProgramBuilder("gather")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    i = b.mov(0)
    tid = b.imad(wid, WIDTH, lane)
    stride = b.imul(nw, WIDTH)
    b.label("loop")
    pos = b.iadd(tid, i)
    index = b.ldg(b.iadd(pos, idx_base))
    value = b.ldg(b.iadd(index, data_base))
    value = b.fmul(value, 3.0)
    b.stg(b.iadd(pos, out_base), value)
    b.iadd(i, stride, dst=i)
    b.bra("loop", guard=b.isetp("lt", i, n))
    b.label("done")
    b.exit()
    return b.finish()


def build_tile_program(tiles, tile_words, a_base, out_base, num_warps):
    """LDGSTS tile transfer between BAR.SYNCs (Figure 13)."""
    b = ProgramBuilder("tile")
    buf = b.alloc_smem("buf", tile_words)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tid = b.imad(wid, WIDTH, lane)
    t = b.mov(0)
    acc = b.mov(0.0)
    b.label("tile_loop")
    b.bar_sync("tb")
    ga = b.iadd(b.imad(t, tile_words, tid), a_base)
    sa = b.iadd(tid, buf)
    b.ldgsts(ga, sa, buffer="buf")
    b.bar_sync("tb")
    b.fadd(acc, b.lds(sa, buffer="buf"), dst=acc)
    b.iadd(t, 1, dst=t)
    b.bra("tile_loop", guard=b.isetp("lt", t, tiles))
    b.label("epilog")
    b.stg(b.iadd(tid, out_base), acc)
    b.exit()
    return b.finish()


def analyse(title: str, program, num_warps: int, options=None) -> None:
    print("=" * 72)
    print(f"{title}\n")
    print("-- original --")
    print(program.to_text())

    pdg = build_pdg(program)
    skeleton = compute_skeleton(pdg)
    report = classify_loads(pdg, skeleton)
    print(f"\ncontrol skeleton: {len(skeleton)} instructions")
    print(f"global loads: {len(pdg.global_loads())} "
          f"({len(report.eligible)} eligible for extraction)")
    for load in pdg.global_loads():
        reason = report.reason_for(load)
        verdict = "eligible" if reason is None else reason.value
        print(f"  {load!r:40s} -> {verdict}")

    plan = plan_extraction(pdg)
    print(f"\nplanned pipeline: {plan.num_stages} stages")
    for load_plan in plan.loads:
        kind = "tile" if load_plan.is_tile else "stream"
        queue = (f"Q{load_plan.queue_id} -> stage "
                 f"{load_plan.consumer_stage}"
                 if load_plan.queue_id is not None else "SMEM barriers")
        print(f"  depth {load_plan.depth} {kind:6s} load "
              f"in stage {load_plan.stage}: {queue}")

    result = WaspCompiler(options or WaspCompilerOptions()).compile(
        program, num_warps=num_warps
    )
    print("\n-- warp specialized --")
    print(result.program.to_text())
    spec = result.program.tb_spec
    print("\nThread block specification (Table I):")
    print(f"  stages: {spec.num_stages}, "
          f"warps/stage: {[len(w) for w in spec.warps_per_stage]}")
    print(f"  per-stage registers: {spec.stage_registers}")
    print("  queues: "
          f"{[(q.queue_id, q.src_stage, q.dst_stage, q.size) for q in spec.queues]}")
    print(f"  SMEM words: {spec.smem_words}")
    if spec.barrier_expected:
        print(f"  barriers: {spec.barrier_expected} "
              f"(credits {spec.barrier_initial})")
    if result.offload:
        print(f"  WASP-TMA: {result.offload.streams} streams, "
              f"{result.offload.gathers} gathers fused")
    print()


def main() -> None:
    analyse(
        "Streaming copy (paper Figure 11)",
        build_stream_program(64, 64, 256),
        num_warps=2,
    )
    analyse(
        "Gather (paper Figures 12 / 8c)",
        build_gather_program(64, 64, 256, 512),
        num_warps=2,
    )
    analyse(
        "SMEM tile transfer with double buffering "
        "(paper Figures 13 / 10)",
        build_tile_program(4, 32, 64, 512, num_warps=2),
        num_warps=2,
    )


if __name__ == "__main__":
    main()
