#!/usr/bin/env python3
"""Figure 3 walkthrough: pointnet's phased baseline vs WASP overlap.

Runs the pointnet ball-query gather kernel on the baseline A100 model
and on the WASP GPU, then prints the compute/memory utilization
timelines.  On the baseline, memory-access phases alternate with compute
phases; WASP's warp-specialized pipeline overlaps them.

Run:  python examples/pointnet_gather.py
"""

from repro.experiments import fig3
from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.runner import run_kernel
from repro.workloads import get_benchmark


def main() -> None:
    result = fig3.run(scale=0.5)
    print(result.to_text())

    base = result.by_config("BASELINE")
    wasp = result.by_config("WASP_GPU")
    print(
        f"\nOverlap score: baseline {100 * base.overlap_score():.1f}% "
        f"-> WASP {100 * wasp.overlap_score():.1f}%"
    )

    # Show what the harness actually ran underneath.
    benchmark = get_benchmark("pointnet", 0.5)
    kernel = benchmark.kernels[0]
    base_res = run_kernel(kernel, baseline_config())
    wasp_res = run_kernel(kernel, wasp_gpu_config())
    print(
        f"\n{kernel.name}: {base_res.cycles:,.0f} -> "
        f"{wasp_res.cycles:,.0f} cycles "
        f"({base_res.cycles / wasp_res.cycles:.2f}x), "
        f"pipeline stages = "
        f"{wasp_res.compile_result.num_stages if wasp_res.compile_result else 1}"
    )
    if wasp_res.compile_result and wasp_res.compile_result.offload:
        offload = wasp_res.compile_result.offload
        print(
            f"WASP-TMA offload: {offload.streams} stream jobs, "
            f"{offload.gathers} fused gather jobs"
        )


if __name__ == "__main__":
    main()
