#!/usr/bin/env python3
"""Quickstart: automatically warp-specialize a kernel and measure it.

Builds a streaming kernel in the SASS-like IR, runs it on the baseline
A100 model, compiles it with the WASP compiler, and runs the pipeline on
the WASP GPU — printing both program listings and the speedup.

Run:  python examples/quickstart.py
"""

from dataclasses import replace

import numpy as np

from repro.core.compiler import WaspCompiler
from repro.fexec import LaunchConfig, MemoryImage
from repro.isa import ProgramBuilder, SpecialReg
from repro.sim import simulate_program
from repro.sim.config import baseline_a100, wasp_gpu


def build_saxpy(n_per_tb: int, x_base: int, y_base: int, out_base: int):
    """out[i] = 2.5 * x[i] + y[i], grid-strided."""
    b = ProgramBuilder("saxpy")
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    tb = b.special(SpecialReg.TB_ID)
    i = b.mov(0)
    tid = b.imad(wid, 32, lane)
    tb_off = b.imul(tb, n_per_tb)
    base = b.iadd(tid, tb_off)
    stride = b.imul(nw, 32)
    b.label("loop")
    pos = b.iadd(base, i)
    x = b.ldg(b.iadd(pos, x_base))
    y = b.ldg(b.iadd(pos, y_base))
    out = b.ffma(x, 2.5, y)
    b.stg(b.iadd(pos, out_base), out)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, n_per_tb)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return b.finish()


def main() -> None:
    n_per_tb, num_tbs, num_warps = 2048, 4, 4
    n = n_per_tb * num_tbs

    def fresh_image() -> MemoryImage:
        img = MemoryImage(1 << 17)
        rng = np.random.default_rng(0)
        img.alloc("x", n)
        img.write_array("x", rng.uniform(-1, 1, n))
        img.alloc("y", n)
        img.write_array("y", rng.uniform(-1, 1, n))
        img.alloc("out", n)
        return img

    layout = fresh_image()
    program = build_saxpy(
        n_per_tb, layout.base("x"), layout.base("y"), layout.base("out")
    )
    launch = LaunchConfig(
        num_warps=num_warps, warp_width=32, num_thread_blocks=num_tbs
    )

    print("== Original kernel ==")
    print(program.to_text())

    baseline = simulate_program(program, fresh_image(), launch,
                                baseline_a100())
    print(f"\nBASELINE: {baseline.cycles:,.0f} cycles, "
          f"{baseline.issued_total:,} instructions, "
          f"DRAM {100 * baseline.dram_utilization:.0f}% utilized")

    compiled = WaspCompiler().compile(program, num_warps=num_warps)
    print(f"\n== WASP pipeline: {compiled.num_stages} stages, "
          f"queues={len(compiled.program.tb_spec.queues)}, "
          f"per-stage regs={compiled.stage_registers} ==")
    print(compiled.program.to_text())

    wasp_launch = replace(
        launch, num_warps=num_warps * compiled.num_stages
    )
    img = fresh_image()
    wasp = simulate_program(compiled.program, img, wasp_launch, wasp_gpu())

    # The specialized pipeline computes the same answer...
    reference = fresh_image()
    simulate_program(program, reference, launch, baseline_a100())
    assert np.allclose(img.read_array("out"), reference.read_array("out"))

    print(f"\nWASP_GPU: {wasp.cycles:,.0f} cycles, "
          f"{wasp.issued_total:,} instructions, "
          f"DRAM {100 * wasp.dram_utilization:.0f}% utilized")
    print(f"\nSpeedup: {baseline.cycles / wasp.cycles:.2f}x "
          "(outputs verified identical)")


if __name__ == "__main__":
    main()
