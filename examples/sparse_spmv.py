#!/usr/bin/env python3
"""Sparse kernels under WASP: SpMV and SpMM on two matrix structures.

Compares the four evaluation configurations on the cuSPARSE-style
benchmarks, showing the paper's sparse-suite observations: modest SpMV
gains, a large SpMM win on the irregular (webbase-like) matrix, and the
role of decoupling the serialized column->B-row load chain.

Run:  python examples/sparse_spmv.py
"""

from repro.experiments.configs import standard_configs
from repro.experiments.runner import run_benchmark
from repro.workloads import get_benchmark


def main() -> None:
    configs = standard_configs()
    names = ["spmv1_g3", "spmv2_web", "spmm1_g3", "spmm2_web"]
    print(f"{'benchmark':14s}" + "".join(f"{c.name:>20s}" for c in configs))
    for name in names:
        benchmark = get_benchmark(name, scale=0.5)
        baseline = None
        cells = []
        for cfg in configs:
            result = run_benchmark(benchmark, cfg)
            if baseline is None:
                baseline = result.total_cycles
            cells.append(f"{baseline / result.total_cycles:>19.2f}x")
        print(f"{name:14s}" + "".join(cells))

    print("\nPer-kernel detail for spmm2_web under WASP_GPU:")
    benchmark = get_benchmark("spmm2_web", scale=0.5)
    wasp = run_benchmark(benchmark, configs[-1])
    base = run_benchmark(benchmark, configs[0])
    for base_k, wasp_k in zip(base.kernels, wasp.kernels):
        compiled = wasp_k.compile_result
        stages = compiled.num_stages if compiled else 1
        print(
            f"  {wasp_k.kernel.name}: {base_k.cycles:,.0f} -> "
            f"{wasp_k.cycles:,.0f} cycles "
            f"({base_k.cycles / wasp_k.cycles:.2f}x), "
            f"{stages}-stage pipeline, "
            f"specialized={wasp_k.used_specialized}"
        )
        print(
            f"    DRAM utilization {100 * base_k.sim.dram_utilization:.0f}%"
            f" -> {100 * wasp_k.sim.dram_utilization:.0f}%, "
            f"L1 hit {100 * base_k.sim.l1_hit_rate:.0f}%"
            f" -> {100 * wasp_k.sim.l1_hit_rate:.0f}%"
        )


if __name__ == "__main__":
    main()
