"""Greedy spec minimization.

When the oracle fails on a spec, the shrinker searches for the smallest
spec that still fails *the same check*.  It is a classic greedy
delta-debugger over :data:`repro.fuzz.spec.SHRINK_FIELDS`: repeatedly
try the candidate reductions (nearest-to-minimum first) and restart
from any candidate that still reproduces, until no reduction does.

Reproduction means "``run_oracle`` reports a failure with the same
``check`` id" — not byte-identical messages, which legitimately change
as sizes shrink.  The shrinker is deterministic: candidates are tried
in a fixed order and the first reproducing one wins.
"""

from __future__ import annotations

from typing import Callable

from repro.fuzz.spec import FuzzSpec, shrink_candidates

#: Safety valve: maximum oracle invocations per shrink.
MAX_ATTEMPTS = 64


def shrink_spec(
    spec: FuzzSpec,
    check: str,
    reproduce: "Callable[[FuzzSpec], list] | None" = None,
    inject: str | None = None,
    max_attempts: int = MAX_ATTEMPTS,
) -> FuzzSpec:
    """Smallest spec (greedy) whose oracle run still fails ``check``.

    ``reproduce`` maps a spec to its list of failures; the default runs
    the full oracle with ``inject`` (and without the verdict cache —
    failing runs are never cached, but a *shrunk* candidate might pass
    and we must not pollute the cache mid-search with partial configs).
    Returns ``spec`` unchanged when nothing smaller reproduces.
    """
    if reproduce is None:
        from repro.fuzz.oracle import run_oracle

        # The timing relations only matter when that's what failed;
        # otherwise skipping them makes each shrink probe ~5x cheaper.
        metamorphic = check.startswith("timing-")

        def reproduce(candidate: FuzzSpec) -> list:
            return run_oracle(
                candidate, metamorphic=metamorphic, inject=inject,
                use_verdict_cache=False,
            ).failures

    attempts = 0
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in shrink_candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failures = reproduce(candidate)
            except Exception:
                continue  # a broken candidate is not a repro
            if any(f.check == check for f in failures):
                current = candidate
                progress = True
                break
    return current
