"""Differential fuzzing of the compiler → functional executor → simulator stack.

The static verifier (:mod:`repro.analysis`) proves structural protocol
properties of warp-specialized programs; this package hammers the
*semantics*: a randomly generated kernel compiled through
:class:`~repro.core.compiler.WaspCompiler` must compute bit-identical
global memory to its unspecialized original, keep its dynamic
instruction accounting consistent, and obey the simulator's metamorphic
timing invariants.

Pieces:

* :mod:`repro.fuzz.spec` / :mod:`repro.fuzz.generator` — seeded,
  replayable random kernels over the paper's access skeletons
  (streaming, gather, tiled SMEM double-buffer, reduction, mixed
  control flow);
* :mod:`repro.fuzz.oracle` — the differential baseline-vs-WASP oracle;
* :mod:`repro.fuzz.metamorphic` — timing invariants on the simulator;
* :mod:`repro.fuzz.mutate` — deliberate pipeline corruptions used to
  prove the oracle (and the static verifier) actually catch bugs;
* :mod:`repro.fuzz.shrink` — minimizes a failing spec to a small repro;
* :mod:`repro.fuzz.corpus` — persists failures under ``tests/corpus/``
  so every past failure becomes a permanent regression test;
* :mod:`repro.fuzz.runner` — the ``repro fuzz`` fan-out (parallel,
  verdict-cached, deterministic across ``--jobs``).
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    default_corpus_dir,
    load_corpus,
    save_failure,
)
from repro.fuzz.generator import build_kernel
from repro.fuzz.metamorphic import check_timing_invariants
from repro.fuzz.mutate import MUTATIONS, apply_mutation
from repro.fuzz.oracle import (
    FuzzFailure,
    FuzzWarning,
    OracleReport,
    run_oracle,
)
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import SKELETONS, FuzzSpec, generate_spec

__all__ = [
    "MUTATIONS",
    "SKELETONS",
    "CorpusEntry",
    "FuzzFailure",
    "FuzzReport",
    "FuzzSpec",
    "FuzzWarning",
    "OracleReport",
    "apply_mutation",
    "build_kernel",
    "check_timing_invariants",
    "default_corpus_dir",
    "generate_spec",
    "load_corpus",
    "run_fuzz",
    "run_oracle",
    "save_failure",
    "shrink_spec",
]
