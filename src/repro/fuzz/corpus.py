"""The failure corpus: every past fuzz failure, forever a regression test.

Layout (``tests/corpus/``)::

    tests/corpus/
        README.md
        <check>-seed<seed>[-<inject>].json     one entry per failure

Each entry is the JSON of a :class:`repro.fuzz.oracle.FuzzFailure`
(minimized spec included when the shrinker ran) plus replay metadata:
the injected mutation, if any, and what the entry *expects* — a clean
pass after the underlying bug was fixed, or a caught failure for
injected corruptions.  ``tests/test_fuzz_corpus.py`` replays every
entry on each test run, and CI's fuzz gate replays them on every PR.

Entries are deliberately tiny, human-readable JSON so a failing seed
can be committed with the fix that resolves it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.fuzz.oracle import FuzzFailure
from repro.fuzz.spec import FuzzSpec

#: Format version for corpus entries.
CORPUS_VERSION = 1


def default_corpus_dir() -> Path:
    """``tests/corpus/`` at the repository root."""
    return Path(__file__).resolve().parents[3] / "tests" / "corpus"


@dataclass
class CorpusEntry:
    """One persisted failure, replayable forever.

    ``expect`` is what replaying the spec should produce today:

    * ``"pass"`` — the bug that produced this failure is fixed; the
      spec must run the full oracle cleanly (the regression test).
    * ``"fail:<check>"`` — the entry encodes an *injected* corruption
      (``inject`` is set); replay must still catch exactly that check.
    """

    spec: FuzzSpec
    check: str
    expect: str
    inject: str | None = None
    note: str = ""
    verifier_rules: list[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        suffix = f"-{self.inject}" if self.inject else ""
        return f"{self.check}-seed{self.spec.seed}{suffix}"

    def to_json(self) -> dict[str, Any]:
        return {
            "version": CORPUS_VERSION,
            "spec": self.spec.to_json(),
            "check": self.check,
            "expect": self.expect,
            "inject": self.inject,
            "note": self.note,
            "verifier_rules": list(self.verifier_rules),
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "CorpusEntry":
        return cls(
            spec=FuzzSpec.from_json(doc["spec"]),
            check=doc["check"],
            expect=doc["expect"],
            inject=doc.get("inject"),
            note=doc.get("note", ""),
            verifier_rules=list(doc.get("verifier_rules", [])),
        )

    def save(self, corpus_dir: Path | None = None) -> Path:
        directory = corpus_dir or default_corpus_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        path.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )
        return path


def save_failure(
    failure: FuzzFailure,
    corpus_dir: Path | None = None,
    inject: str | None = None,
) -> Path:
    """Persist an oracle failure as a corpus entry.

    A genuine failure expects ``pass`` once fixed; an injected one is a
    permanent detector self-test expecting ``fail:<check>``.
    """
    entry = CorpusEntry(
        spec=failure.minimized or failure.spec,
        check=failure.check,
        expect=f"fail:{failure.check}" if inject else "pass",
        inject=inject,
        note=failure.message[:200],
        verifier_rules=list(failure.verifier_rules),
    )
    return entry.save(corpus_dir)


def load_corpus(corpus_dir: Path | None = None) -> list[CorpusEntry]:
    """All committed entries, in deterministic (sorted-name) order."""
    directory = corpus_dir or default_corpus_dir()
    if not directory.is_dir():
        return []
    entries = []
    for path in sorted(directory.glob("*.json")):
        entries.append(CorpusEntry.from_json(json.loads(path.read_text())))
    return entries


def replay_entry(entry: CorpusEntry) -> list[FuzzFailure]:
    """Run the oracle for an entry; returns surviving failures.

    An ``expect == "pass"`` entry replays clean iff the list is empty;
    a ``fail:<check>`` entry is satisfied iff some failure matches the
    expected check.  Callers (tests, the CI gate) make the assertion so
    failure messages point at the entry file.
    """
    from repro.fuzz.oracle import run_oracle

    return run_oracle(
        entry.spec, inject=entry.inject, use_verdict_cache=False,
    ).failures
