"""Seeded, replayable kernel specifications.

A :class:`FuzzSpec` is the *entire* identity of a generated kernel: the
program, its memory image and its launch are pure functions of the spec
(:func:`repro.fuzz.generator.build_kernel`), and the spec itself is a
pure function of an integer seed (:func:`generate_spec`).  Specs are
plain JSON-able data so failing ones can be persisted to the corpus and
mutated by the shrinker without losing replayability.

Randomness uses the stdlib :class:`random.Random` (no third-party
dependency) seeded with the spec seed; the generator's memory contents
use :func:`numpy.random.default_rng` with the same seed.  Both are
stable across processes and platforms.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Any

#: The access skeletons the paper names (Section II / Table II classes),
#: plus ``deep``: coupled dual-stream tiles shaped for N-stage circular
#: buffering (the attention-class pipeline pattern).
SKELETONS = ("streaming", "gather", "tiled", "reduction", "mixed", "deep")

#: Spec format version; bumped when generated programs change for the
#: same spec, which invalidates cached oracle verdicts.
#: v2: deep skeleton added; every sixth seed re-routes to it.
SPEC_VERSION = 2


@dataclass(frozen=True)
class FuzzSpec:
    """Parameters of one generated kernel.

    Every field is drawn by :func:`generate_spec`; fields irrelevant to
    a skeleton keep their canonical minimum so shrinking and hashing
    stay stable.  ``iters`` is the per-warp loop trip count (or tile
    count for the tiled skeleton).
    """

    seed: int
    skeleton: str
    num_warps: int = 2
    warp_width: int = 8
    num_tbs: int = 1
    iters: int = 2
    num_inputs: int = 1
    fp_ops: int = 0
    gather_depth: int = 1
    table_words: int = 64
    tile_elems: int = 64
    inner_trip: int = 2
    scale_imm: float = 1.0
    reduce_op: str = "sum"

    def to_json(self) -> dict[str, Any]:
        doc = asdict(self)
        doc["version"] = SPEC_VERSION
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "FuzzSpec":
        fields = {k: v for k, v in doc.items() if k != "version"}
        spec = cls(**fields)
        if spec.skeleton not in SKELETONS:
            raise ValueError(f"unknown skeleton {spec.skeleton!r}")
        return spec

    def describe(self) -> str:
        """Compact one-line rendering for reports."""
        extras = {
            "streaming": f"inputs={self.num_inputs}",
            "gather": f"depth={self.gather_depth} table={self.table_words}",
            "tiled": f"tile={self.tile_elems}",
            "reduction": f"op={self.reduce_op}",
            "mixed": f"inner={self.inner_trip} op={self.reduce_op}",
            "deep": f"tile={self.tile_elems} inputs={self.num_inputs}",
        }[self.skeleton]
        return (
            f"seed={self.seed} {self.skeleton} warps={self.num_warps}"
            f"x{self.warp_width} tbs={self.num_tbs} iters={self.iters} "
            f"fp={self.fp_ops} {extras}"
        )


def generate_spec(seed: int) -> FuzzSpec:
    """The spec for ``seed`` — deterministic and replayable."""
    rng = random.Random(seed)
    # Draw from the original five skeletons so historical seed->spec
    # mappings (pinned test seeds, committed corpus entries) survive
    # the addition of ``deep``; every sixth seed re-routes there
    # deterministically instead of widening the draw.
    skeleton = SKELETONS[rng.randrange(5)]
    if seed % 6 == 5:
        skeleton = "deep"
    spec = FuzzSpec(
        seed=seed,
        skeleton=skeleton,
        num_warps=rng.randint(1, 4),
        warp_width=rng.choice([4, 8]),
        num_tbs=rng.randint(1, 3),
        iters=rng.randint(1, 5),
        fp_ops=rng.randint(0, 4),
        scale_imm=rng.choice([1.0, 0.5, 2.0, -1.5, 1.0009765625]),
    )
    if skeleton == "streaming":
        spec = replace(spec, num_inputs=rng.randint(1, 3))
    elif skeleton == "gather":
        spec = replace(
            spec,
            gather_depth=rng.randint(1, 2),
            table_words=rng.choice([32, 64, 256]),
        )
    elif skeleton == "tiled":
        # Tile must cover all lanes of all warps at least once.
        spec = replace(
            spec,
            tile_elems=spec.num_warps * spec.warp_width
            * rng.choice([1, 2]),
            iters=rng.randint(2, 6),
        )
    elif skeleton == "reduction":
        spec = replace(spec, reduce_op=rng.choice(["sum", "min", "max"]))
    elif skeleton == "mixed":
        spec = replace(
            spec,
            inner_trip=rng.randint(1, 4),
            table_words=rng.choice([32, 64]),
            reduce_op=rng.choice(["sum", "min", "max"]),
        )
    elif skeleton == "deep":
        # Two coupled SMEM streams per tile; enough tiles that a deep
        # circular buffer (pipeline_depth up to 8) turns over fully.
        spec = replace(
            spec,
            tile_elems=spec.num_warps * spec.warp_width
            * rng.choice([1, 2]),
            iters=rng.randint(3, 8),
            num_inputs=2,
        )
    return spec


#: Shrink targets: (field, minimum) in the order the shrinker tries
#: them.  Structural fields (skeleton, seed) never shrink; sizes shrink
#: toward the smallest kernel that still reproduces a failure.
SHRINK_FIELDS: tuple[tuple[str, int], ...] = (
    ("num_tbs", 1),
    ("iters", 1),
    ("num_warps", 1),
    ("fp_ops", 0),
    ("num_inputs", 1),
    ("gather_depth", 1),
    ("inner_trip", 1),
    ("table_words", 32),
    ("warp_width", 4),
)


def shrink_candidates(spec: FuzzSpec) -> list[FuzzSpec]:
    """Strictly smaller specs to try, nearest-to-minimum first.

    For each shrinkable field this proposes the minimum and the halfway
    point; the tiled and deep skeletons keep ``tile_elems`` in lockstep
    with the thread count so the generated program stays well-formed.
    """
    out: list[FuzzSpec] = []
    for field, minimum in SHRINK_FIELDS:
        value = getattr(spec, field)
        for target in (minimum, (value + minimum) // 2):
            if target >= value:
                continue
            candidate = replace(spec, **{field: target})
            if candidate.skeleton in ("tiled", "deep"):
                candidate = replace(
                    candidate,
                    tile_elems=candidate.num_warps * candidate.warp_width,
                )
            out.append(candidate)
    return out
