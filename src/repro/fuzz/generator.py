"""Builds a runnable kernel from a :class:`~repro.fuzz.spec.FuzzSpec`.

One builder per access skeleton, mirroring the hand-written templates in
:mod:`repro.workloads.kernels` but shrunk to fuzzing scale and fully
parameterized.  All builders keep branches warp-uniform (divergence is
expressed with lane predication, as optimized GPU kernels do), so the
generated programs stay inside the functional machine's execution model
and inside the WASP compiler's eligibility rules often enough to
exercise the stage-split path.

The returned :class:`~repro.workloads.base.Kernel` is deterministic:
building the same spec twice yields programs with identical canonical
encodings and images with identical content digests, which is what
makes fuzz traces and oracle verdicts content-addressable.
"""

from __future__ import annotations

import numpy as np

from repro.fexec.launch import LaunchConfig
from repro.fexec.memory_image import MemoryImage
from repro.fuzz.spec import FuzzSpec
from repro.isa.builder import ProgramBuilder
from repro.isa.operands import Register, SpecialReg
from repro.workloads.base import Kernel

_IMAGE_WORDS = 1 << 14


def build_kernel(spec: FuzzSpec) -> Kernel:
    """The kernel described by ``spec``."""
    builder = _BUILDERS[spec.skeleton]
    return builder(spec)


def _elems(spec: FuzzSpec) -> int:
    """Elements each thread block touches in block-stride loops."""
    return spec.num_warps * spec.warp_width * spec.iters


def _prologue(b: ProgramBuilder, spec: FuzzSpec):
    """Returns (loop counter, thread's global element base, stride)."""
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    tb = b.special(SpecialReg.TB_ID)
    counter = b.mov(0)
    tid = b.imad(wid, spec.warp_width, lane)
    tb_off = b.imul(tb, _elems(spec))
    base = b.iadd(tid, tb_off)
    stride = b.imul(nw, spec.warp_width)
    return counter, base, stride


def _fp_chain(b: ProgramBuilder, value: Register, spec: FuzzSpec) -> Register:
    acc = value
    for k in range(spec.fp_ops):
        acc = b.ffma(acc, spec.scale_imm, 0.125 * (k + 1))
    return acc


def _reduce_into(b: ProgramBuilder, acc: Register, value) -> None:
    # Used by skeletons whose reduce_op stays 'sum'.
    b.fadd(acc, value, dst=acc)


def _launch(spec: FuzzSpec) -> LaunchConfig:
    return LaunchConfig(
        num_warps=spec.num_warps,
        warp_width=spec.warp_width,
        num_thread_blocks=spec.num_tbs,
    )


# -- skeletons --------------------------------------------------------------


def _streaming(spec: FuzzSpec) -> Kernel:
    """out[i] = f(in0[i] + in1[i] + ...): use-once streaming."""
    total = _elems(spec) * spec.num_tbs
    names = [f"in{k}" for k in range(spec.num_inputs)]

    def image_factory() -> MemoryImage:
        img = MemoryImage(_IMAGE_WORDS)
        rng = np.random.default_rng(spec.seed)
        for name in names:
            img.alloc(name, total)
            img.write_array(name, rng.uniform(-4, 4, total))
        img.alloc("out", total)
        return img

    layout = image_factory()
    b = ProgramBuilder(f"fuzz_streaming_{spec.seed}")
    i, base, stride = _prologue(b, spec)
    b.label("loop")
    pos = b.iadd(base, i)
    acc = None
    for name in names:
        addr = b.iadd(pos, layout.base(name))
        val = b.ldg(addr)
        acc = val if acc is None else b.fadd(acc, val)
    acc = _fp_chain(b, acc, spec)
    out_addr = b.iadd(pos, layout.base("out"))
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, _elems(spec))
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=b.program.name,
        program=b.finish(),
        image_factory=image_factory,
        launch=_launch(spec),
    )


def _gather(spec: FuzzSpec) -> Kernel:
    """out[i] = f(table[...idx[i]...]): 1- or 2-level index chase."""
    total = _elems(spec) * spec.num_tbs
    table_words = spec.table_words

    def image_factory() -> MemoryImage:
        img = MemoryImage(_IMAGE_WORDS)
        rng = np.random.default_rng(spec.seed)
        img.alloc("idx", total)
        img.write_array("idx", rng.integers(0, table_words, total))
        if spec.gather_depth == 2:
            img.alloc("table2", table_words)
            img.write_array(
                "table2", rng.integers(0, table_words, table_words)
            )
        img.alloc("table", table_words)
        img.write_array("table", rng.uniform(-4, 4, table_words))
        img.alloc("out", total)
        return img

    layout = image_factory()
    b = ProgramBuilder(f"fuzz_gather_{spec.seed}")
    i, base, stride = _prologue(b, spec)
    b.label("loop")
    pos = b.iadd(base, i)
    idx_addr = b.iadd(pos, layout.base("idx"))
    index = b.ldg(idx_addr)
    if spec.gather_depth == 2:
        addr2 = b.iadd(index, layout.base("table2"))
        index = b.ldg(addr2)
    data_addr = b.iadd(index, layout.base("table"))
    value = b.ldg(data_addr)
    acc = _fp_chain(b, value, spec)
    out_addr = b.iadd(pos, layout.base("out"))
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, _elems(spec))
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=b.program.name,
        program=b.finish(),
        image_factory=image_factory,
        launch=_launch(spec),
    )


def _tiled(spec: FuzzSpec) -> Kernel:
    """SMEM-staged reduction: cooperative LDGSTS between barriers.

    Per tile: stage ``tile_elems`` words into a shared buffer between
    BAR.SYNCs, then accumulate out of SMEM — the Figure 1 pattern that
    the tile path plus double buffering transforms.
    """
    threads = spec.num_warps * spec.warp_width
    per_thread = max(1, spec.tile_elems // threads)
    total = spec.iters * spec.tile_elems * spec.num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(_IMAGE_WORDS)
        rng = np.random.default_rng(spec.seed)
        img.alloc("a", total)
        img.write_array("a", rng.uniform(-4, 4, total))
        img.alloc("out", spec.tile_elems * spec.num_tbs)
        return img

    layout = image_factory()
    b = ProgramBuilder(f"fuzz_tiled_{spec.seed}")
    buf = b.alloc_smem("stage_buf", spec.tile_elems)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tb = b.special(SpecialReg.TB_ID)
    tid = b.imad(wid, spec.warp_width, lane)
    tb_off = b.imul(tb, spec.iters * spec.tile_elems)
    acc = b.mov(0.0)
    t = b.mov(0)
    b.label("tile_loop")
    b.bar_sync("tb")
    tile_base = b.imad(t, spec.tile_elems, tb_off)
    for copy in range(per_thread):
        offset = b.iadd(tid, copy * threads)
        ga = b.iadd(tile_base, offset)
        ga2 = b.iadd(ga, layout.base("a"))
        sa = b.iadd(offset, buf)
        b.ldgsts(ga2, sa, buffer="stage_buf")
    b.bar_sync("tb")
    for copy in range(per_thread):
        offset = b.iadd(tid, copy * threads)
        sa = b.iadd(offset, buf)
        val = b.lds(sa, buffer="stage_buf")
        val = _fp_chain(b, val, spec)
        b.fadd(acc, val, dst=acc)
    b.iadd(t, 1, dst=t)
    pred = b.isetp("lt", t, spec.iters)
    b.bra("tile_loop", guard=pred)
    b.label("epilogue")
    out_off = b.imul(tb, spec.tile_elems)
    oa = b.iadd(tid, out_off)
    oa2 = b.iadd(oa, layout.base("out"))
    b.stg(oa2, acc)
    b.exit()
    return Kernel(
        name=b.program.name,
        program=b.finish(),
        image_factory=image_factory,
        launch=_launch(spec),
    )


def _deep(spec: FuzzSpec) -> Kernel:
    """Coupled dual-stream tiles: the deep-pipeline (attention) shape.

    Per tile: cooperatively stage matching ``x`` and ``y`` tiles into
    two SMEM buffers between BAR.SYNCs, then accumulate their products
    out of SMEM.  Both buffers join the same tile sync pair, so the
    circular-buffering pass rotates them in lockstep — at
    ``pipeline_depth`` N this is the kernel class whose ring alignment
    the deep-pipeline battery targets.
    """
    threads = spec.num_warps * spec.warp_width
    per_thread = max(1, spec.tile_elems // threads)
    total = spec.iters * spec.tile_elems * spec.num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(_IMAGE_WORDS)
        rng = np.random.default_rng(spec.seed)
        img.alloc("x", total)
        img.write_array("x", rng.uniform(-4, 4, total))
        img.alloc("y", total)
        img.write_array("y", rng.uniform(-4, 4, total))
        img.alloc("out", spec.tile_elems * spec.num_tbs)
        return img

    layout = image_factory()
    b = ProgramBuilder(f"fuzz_deep_{spec.seed}")
    buf_x = b.alloc_smem("ring_x", spec.tile_elems)
    buf_y = b.alloc_smem("ring_y", spec.tile_elems)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tb = b.special(SpecialReg.TB_ID)
    tid = b.imad(wid, spec.warp_width, lane)
    tb_off = b.imul(tb, spec.iters * spec.tile_elems)
    acc = b.mov(0.0)
    t = b.mov(0)
    b.label("tile_loop")
    b.bar_sync("tb")
    tile_base = b.imad(t, spec.tile_elems, tb_off)
    for copy in range(per_thread):
        offset = b.iadd(tid, copy * threads)
        ga = b.iadd(tile_base, offset)
        gx = b.iadd(ga, layout.base("x"))
        gy = b.iadd(ga, layout.base("y"))
        sx = b.iadd(offset, buf_x)
        sy = b.iadd(offset, buf_y)
        b.ldgsts(gx, sx, buffer="ring_x")
        b.ldgsts(gy, sy, buffer="ring_y")
    b.bar_sync("tb")
    for copy in range(per_thread):
        offset = b.iadd(tid, copy * threads)
        sx = b.iadd(offset, buf_x)
        sy = b.iadd(offset, buf_y)
        xv = b.lds(sx, buffer="ring_x")
        yv = b.lds(sy, buffer="ring_y")
        prod = b.fmul(xv, yv)
        prod = _fp_chain(b, prod, spec)
        b.fadd(acc, prod, dst=acc)
    b.iadd(t, 1, dst=t)
    pred = b.isetp("lt", t, spec.iters)
    b.bra("tile_loop", guard=pred)
    b.label("epilogue")
    out_off = b.imul(tb, spec.tile_elems)
    oa = b.iadd(tid, out_off)
    oa2 = b.iadd(oa, layout.base("out"))
    b.stg(oa2, acc)
    b.exit()
    return Kernel(
        name=b.program.name,
        program=b.finish(),
        image_factory=image_factory,
        launch=_launch(spec),
    )


def _reduction(spec: FuzzSpec) -> Kernel:
    """Block-stride accumulate, warp-collective sum, one store per warp.

    The tail iteration is lane-predicated (SEL against an active mask)
    rather than branched, so a non-multiple trip count exercises the
    masked-writeback path through specialization.
    """
    # One deliberately ragged element count: 3/4 of the last iteration.
    per_tb = _elems(spec) - (spec.warp_width // 4)
    total_slots = _elems(spec) * spec.num_tbs
    warps_total = spec.num_warps * spec.num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(_IMAGE_WORDS)
        rng = np.random.default_rng(spec.seed)
        img.alloc("a", total_slots)
        img.write_array("a", rng.uniform(-4, 4, total_slots))
        img.alloc("out", max(1, warps_total))
        return img

    layout = image_factory()
    b = ProgramBuilder(f"fuzz_reduction_{spec.seed}")
    i, base, stride = _prologue(b, spec)
    acc = b.mov(0.0)
    b.label("loop")
    pos = b.iadd(base, i)
    addr = b.iadd(pos, layout.base("a"))
    val = b.ldg(addr)
    val = _fp_chain(b, val, spec)
    # Predicate off the ragged tail; inactive lanes contribute the
    # reduce identity.
    tb = b.special(SpecialReg.TB_ID)
    neg_tb_off = b.imul(tb, -_elems(spec))
    local = b.iadd(pos, neg_tb_off)
    active = b.isetp("lt", local, per_tb)
    if spec.reduce_op == "min":
        masked = b.sel(active, val, 1.0e9)
        b.min_(acc, masked, dst=acc)
    elif spec.reduce_op == "max":
        masked = b.sel(active, val, -1.0e9)
        b.max_(acc, masked, dst=acc)
    else:
        masked = b.sel(active, val, 0.0)
        b.fadd(acc, masked, dst=acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, _elems(spec))
    b.bra("loop", guard=pred)
    b.label("tail")
    # REDUX is the only warp collective; for min/max this sums the
    # per-lane extremes, which is still a deterministic warp-wide value.
    total = b.warp_sum(acc)
    wid = b.special(SpecialReg.WARP_ID)
    tbr = b.special(SpecialReg.TB_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    slot = b.imad(tbr, nw, wid)
    out_addr = b.iadd(slot, layout.base("out"))
    b.stg(out_addr, total)
    b.exit()
    return Kernel(
        name=b.program.name,
        program=b.finish(),
        image_factory=image_factory,
        launch=_launch(spec),
    )


def _mixed(spec: FuzzSpec) -> Kernel:
    """Nested loops + gather + predication: the graph-workload shape.

    Outer block-stride loop over entries; a uniform inner loop walks
    ``inner_trip`` neighbour slots through a two-level indirection;
    lane-parity predication picks between two scale factors before the
    reduction.
    """
    total = _elems(spec) * spec.num_tbs
    tw = spec.table_words

    def image_factory() -> MemoryImage:
        img = MemoryImage(_IMAGE_WORDS)
        rng = np.random.default_rng(spec.seed)
        img.alloc("entry", total)
        img.write_array("entry", rng.integers(0, tw, total))
        img.alloc("adj", tw * spec.inner_trip)
        img.write_array(
            "adj", rng.integers(0, tw, tw * spec.inner_trip)
        )
        img.alloc("dist", tw)
        img.write_array("dist", rng.uniform(0, 100, tw))
        img.alloc("out", total)
        return img

    layout = image_factory()
    b = ProgramBuilder(f"fuzz_mixed_{spec.seed}")
    i, base, stride = _prologue(b, spec)
    lane = b.special(SpecialReg.LANE_ID)
    parity = b.and_(lane, 1)
    odd = b.isetp("eq", parity, 1)
    b.label("outer")
    pos = b.iadd(base, i)
    entry_addr = b.iadd(pos, layout.base("entry"))
    node = b.ldg(entry_addr)
    row = b.imad(node, spec.inner_trip, layout.base("adj"))
    init = {"sum": 0.0, "min": 1.0e9, "max": -1.0e9}[spec.reduce_op]
    acc = b.mov(init)
    j = b.mov(0)
    b.label("inner")
    nb_addr = b.iadd(row, j)
    neighbour = b.ldg(nb_addr)
    dist_addr = b.iadd(neighbour, layout.base("dist"))
    dist = b.ldg(dist_addr)
    scaled = b.fmul(dist, spec.scale_imm)
    dist = b.sel(odd, scaled, dist)
    dist = _fp_chain(b, dist, spec)
    if spec.reduce_op == "min":
        b.min_(acc, dist, dst=acc)
    elif spec.reduce_op == "max":
        b.max_(acc, dist, dst=acc)
    else:
        b.fadd(acc, dist, dst=acc)
    b.iadd(j, 1, dst=j)
    inner_pred = b.isetp("lt", j, spec.inner_trip)
    b.bra("inner", guard=inner_pred)
    b.label("outer_tail")
    out_addr = b.iadd(pos, layout.base("out"))
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    outer_pred = b.isetp("lt", i, _elems(spec))
    b.bra("outer", guard=outer_pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=b.program.name,
        program=b.finish(),
        image_factory=image_factory,
        launch=_launch(spec),
    )


_BUILDERS = {
    "streaming": _streaming,
    "gather": _gather,
    "tiled": _tiled,
    "reduction": _reduction,
    "mixed": _mixed,
    "deep": _deep,
}
