"""Deliberate pipeline corruptions.

These mutations model real stage-split compiler bugs and are the
harness's self-test: applied to a *correctly* specialized program, each
one must be caught twice over —

* **statically** by :func:`repro.analysis.verify_program` (the WASP-Q /
  WASP-D protocol rules), and
* **dynamically** by the differential oracle (deadlock, memory
  divergence, or queue push/pop imbalance).

A mutation that only one of the two catches exposes a blind spot in
the other; ``tests/test_fuzz_mutation_agreement.py`` pins the expected
agreement.

Each mutation function takes a specialized :class:`Program`, returns a
mutated **clone** (the input is never modified), or ``None`` when the
program has no applicable site (e.g. no arrive/wait barriers).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.core.specs import ThreadBlockSpec
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, QueueRef, Register
from repro.isa.program import Program


def _clone_sites(program: Program) -> tuple[Program, list[Instruction]]:
    mutant = program.clone()
    return mutant, [i for blk in mutant.blocks for i in blk.instructions]


def drop_pop(program: Program) -> Program | None:
    """Replace the first queue *pop* operand with the constant 0.

    The consumer stops draining the queue but keeps computing (with a
    wrong value), so the producer's pushes go unconsumed: statically an
    unbalanced queue protocol, dynamically a memory divergence and a
    push/pop imbalance.
    """
    mutant, instrs = _clone_sites(program)
    for instr in instrs:
        for pos, src in enumerate(instr.srcs):
            if isinstance(src, QueueRef):
                instr.srcs[pos] = Immediate(0)
                return mutant
    return None


def drop_push(program: Program) -> Program | None:
    """Redirect the first queue *push* into a dead register.

    The producer computes the value but never enqueues it; the consumer
    blocks on an empty queue forever.  Statically an unbalanced queue
    protocol, dynamically a deadlock.
    """
    mutant, instrs = _clone_sites(program)
    fresh = Register(mutant.max_register_index() + 1)
    for instr in instrs:
        if isinstance(instr.dst, QueueRef):
            instr.dst = fresh
            return mutant
    return None


def arrive_to_wait(program: Program) -> Program | None:
    """Flip the first ``BAR.ARRIVE`` into a ``BAR.WAIT``.

    Both sides of the split barrier now wait and nobody arrives:
    statically a barrier-pairing violation, dynamically a deadlock.
    """
    mutant, instrs = _clone_sites(program)
    for instr in instrs:
        if instr.opcode is Opcode.BAR_ARRIVE:
            instr.opcode = Opcode.BAR_WAIT
            return mutant
    return None


def drop_arrive(program: Program) -> Program | None:
    """Delete the first ``BAR.ARRIVE`` instruction outright.

    The signal that publishes a producer's shared-memory writes never
    fires: statically a barrier-pairing violation (and the
    happens-before engine loses the ordering edge, so the guarded
    buffer races); dynamically the partner ``BAR.WAIT`` starves into a
    deadlock — or, when the barrier had initial credit, the consumer
    runs ahead and the SMEM sanitizer observes the race directly.
    """
    mutant, _ = _clone_sites(program)
    for block in mutant.blocks:
        for pos, instr in enumerate(block.instructions):
            if instr.opcode is Opcode.BAR_ARRIVE:
                del block.instructions[pos]
                return mutant
    return None


def reorder_push(program: Program) -> Program | None:
    """Hoist a queue push above the SMEM write it publishes.

    Models a compiler scheduling bug: the producer signals "data ready"
    before the data lands.  The queue's data edge no longer orders the
    write before the consumer's read — statically a same-generation
    SMEM race, dynamically stale reads (memory divergence and a
    sanitizer-observed race).
    """
    mutant, _ = _clone_sites(program)
    smem_writes = (Opcode.STS, Opcode.LDGSTS, Opcode.TMA_TILE)
    for block in mutant.blocks:
        write_pos: int | None = None
        for pos, instr in enumerate(block.instructions):
            if instr.opcode in smem_writes:
                if write_pos is None:
                    write_pos = pos
            elif write_pos is not None and isinstance(
                instr.dst, QueueRef
            ):
                push = block.instructions.pop(pos)
                block.instructions.insert(write_pos, push)
                return mutant
    return None


def phase_off_by_one(program: Program) -> Program | None:
    """Grant one barrier an extra generation of initial credit.

    The classic circular-buffer off-by-one: an empty-style barrier
    starts one generation too permissive, so a producer may refill a
    phase while a consumer is still reading it.  Statically a
    phase-overlap race (the happens-before window widens by one
    occurrence); dynamically a sanitizer-observed race — the pipeline
    still drains, so nothing deadlocks.
    """
    spec = program.tb_spec
    if not isinstance(spec, ThreadBlockSpec) or not spec.barrier_initial:
        return None
    initial = dict(spec.barrier_initial)
    credited = [b for b in sorted(initial) if initial[b] > 0]
    if not credited:
        return None
    mutant, _ = _clone_sites(program)
    name = credited[0]
    initial[name] += spec.barrier_expected.get(name, 1)
    mutant.tb_spec = replace(spec, barrier_initial=initial)
    return mutant


#: name -> mutation function, the vocabulary of ``repro fuzz --inject``.
MUTATIONS: dict[str, Callable[[Program], Program | None]] = {
    "drop-pop": drop_pop,
    "drop-push": drop_push,
    "arrive-to-wait": arrive_to_wait,
    "drop-arrive": drop_arrive,
    "reorder-push": reorder_push,
    "phase-off-by-one": phase_off_by_one,
}


def apply_mutation(program: Program, name: str) -> Program | None:
    """Apply mutation ``name``; ``None`` when it has no site here."""
    try:
        mutation = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {sorted(MUTATIONS)}"
        ) from None
    return mutation(program)
