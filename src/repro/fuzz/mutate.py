"""Deliberate pipeline corruptions.

These mutations model real stage-split compiler bugs and are the
harness's self-test: applied to a *correctly* specialized program, each
one must be caught twice over —

* **statically** by :func:`repro.analysis.verify_program` (the WASP-Q /
  WASP-D protocol rules), and
* **dynamically** by the differential oracle (deadlock, memory
  divergence, or queue push/pop imbalance).

A mutation that only one of the two catches exposes a blind spot in
the other; ``tests/test_fuzz_mutation_agreement.py`` pins the expected
agreement.

Each mutation function takes a specialized :class:`Program`, returns a
mutated **clone** (the input is never modified), or ``None`` when the
program has no applicable site (e.g. no arrive/wait barriers).
"""

from __future__ import annotations

from typing import Callable

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, QueueRef, Register
from repro.isa.program import Program


def _clone_sites(program: Program) -> tuple[Program, list[Instruction]]:
    mutant = program.clone()
    return mutant, [i for blk in mutant.blocks for i in blk.instructions]


def drop_pop(program: Program) -> Program | None:
    """Replace the first queue *pop* operand with the constant 0.

    The consumer stops draining the queue but keeps computing (with a
    wrong value), so the producer's pushes go unconsumed: statically an
    unbalanced queue protocol, dynamically a memory divergence and a
    push/pop imbalance.
    """
    mutant, instrs = _clone_sites(program)
    for instr in instrs:
        for pos, src in enumerate(instr.srcs):
            if isinstance(src, QueueRef):
                instr.srcs[pos] = Immediate(0)
                return mutant
    return None


def drop_push(program: Program) -> Program | None:
    """Redirect the first queue *push* into a dead register.

    The producer computes the value but never enqueues it; the consumer
    blocks on an empty queue forever.  Statically an unbalanced queue
    protocol, dynamically a deadlock.
    """
    mutant, instrs = _clone_sites(program)
    fresh = Register(mutant.max_register_index() + 1)
    for instr in instrs:
        if isinstance(instr.dst, QueueRef):
            instr.dst = fresh
            return mutant
    return None


def arrive_to_wait(program: Program) -> Program | None:
    """Flip the first ``BAR.ARRIVE`` into a ``BAR.WAIT``.

    Both sides of the split barrier now wait and nobody arrives:
    statically a barrier-pairing violation, dynamically a deadlock.
    """
    mutant, instrs = _clone_sites(program)
    for instr in instrs:
        if instr.opcode is Opcode.BAR_ARRIVE:
            instr.opcode = Opcode.BAR_WAIT
            return mutant
    return None


#: name -> mutation function, the vocabulary of ``repro fuzz --inject``.
MUTATIONS: dict[str, Callable[[Program], Program | None]] = {
    "drop-pop": drop_pop,
    "drop-push": drop_push,
    "arrive-to-wait": arrive_to_wait,
}


def apply_mutation(program: Program, name: str) -> Program | None:
    """Apply mutation ``name``; ``None`` when it has no site here."""
    try:
        mutation = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {sorted(MUTATIONS)}"
        ) from None
    return mutation(program)
