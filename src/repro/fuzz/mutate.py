"""Deliberate pipeline corruptions.

These mutations model real stage-split compiler bugs and are the
harness's self-test: applied to a *correctly* specialized program, each
one must be caught twice over —

* **statically** by :func:`repro.analysis.verify_program` (the WASP-Q /
  WASP-D protocol rules), and
* **dynamically** by the differential oracle (deadlock, memory
  divergence, or queue push/pop imbalance).

A mutation that only one of the two catches exposes a blind spot in
the other; ``tests/test_fuzz_mutation_agreement.py`` pins the expected
agreement.

Each mutation function takes a specialized :class:`Program`, returns a
mutated **clone** (the input is never modified), or ``None`` when the
program has no applicable site (e.g. no arrive/wait barriers).
"""

from __future__ import annotations

import re
from dataclasses import replace
from typing import Callable

from repro.core.compiler.stagesplit import phase_key, tile_ring
from repro.core.specs import ThreadBlockSpec
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, QueueRef, Register
from repro.isa.program import BasicBlock, Program

_COPY_RE = re.compile(r"__db\d*$")

#: SMEM address operand position, mirroring the buffering pass.
_SMEM_ADDR_POS = {Opcode.LDS: 0, Opcode.STS: 0, Opcode.LDGSTS: 1}


def _clone_sites(program: Program) -> tuple[Program, list[Instruction]]:
    mutant = program.clone()
    return mutant, [i for blk in mutant.blocks for i in blk.instructions]


def _ring_copies(program: Program) -> dict[str, list[int]]:
    """Base buffer name -> ring copy base addresses, in slot order."""
    families: dict[str, list[str]] = {}
    for name in program.smem_buffers:
        families.setdefault(_COPY_RE.sub("", name), []).append(name)
    out: dict[str, list[int]] = {}
    for base_name, names in families.items():
        if len(names) < 2:
            continue

        def slot(n: str) -> int:
            suffix = n[len(base_name):]
            if not suffix:
                return 0
            return 1 if suffix == "__db" else int(suffix[len("__db"):])

        names.sort(key=slot)
        out[base_name] = [program.smem_buffers[n][0] for n in names]
    return out


def _shift_smem_address(
    block: BasicBlock, instr: Instruction, delta: int
) -> bool:
    """Displace ``instr``'s SMEM address by ``delta`` words in place.

    Immediate addresses shift directly; register addresses shift by
    retuning the defining ``IADD``'s immediate (the unique per-site add
    the buffering pass emitted).  Returns False when neither applies.
    """
    pos = _SMEM_ADDR_POS.get(instr.opcode)
    if pos is None:
        return False
    addr = instr.srcs[pos]
    if isinstance(addr, Immediate):
        instr.srcs[pos] = Immediate(addr.value + delta)
        return True
    if isinstance(addr, Register):
        index = block.instructions.index(instr)
        for prior in reversed(block.instructions[:index]):
            if (
                prior.opcode is Opcode.IADD
                and prior.dst == addr
                and len(prior.srcs) == 2
                and isinstance(prior.srcs[1], Immediate)
            ):
                prior.srcs[1] = Immediate(prior.srcs[1].value + delta)
                return True
    return False


def _ring_phases(program: Program, base: str) -> set[int]:
    """Ring slot indices whose barriers the program references."""
    phases: set[int] = set()
    for blk in program.blocks:
        for ins in blk.instructions:
            bid = ins.barrier_id
            if not bid or not bid.endswith("_empty"):
                continue
            ring = tile_ring(bid[: -len("_empty")])
            if ring is not None and ring[0] == base:
                phases.add(ring[1])
    return phases


def drop_pop(program: Program) -> Program | None:
    """Replace the first queue *pop* operand with the constant 0.

    The consumer stops draining the queue but keeps computing (with a
    wrong value), so the producer's pushes go unconsumed: statically an
    unbalanced queue protocol, dynamically a memory divergence and a
    push/pop imbalance.
    """
    mutant, instrs = _clone_sites(program)
    for instr in instrs:
        for pos, src in enumerate(instr.srcs):
            if isinstance(src, QueueRef):
                instr.srcs[pos] = Immediate(0)
                return mutant
    return None


def drop_push(program: Program) -> Program | None:
    """Redirect the first queue *push* into a dead register.

    The producer computes the value but never enqueues it; the consumer
    blocks on an empty queue forever.  Statically an unbalanced queue
    protocol, dynamically a deadlock.
    """
    mutant, instrs = _clone_sites(program)
    fresh = Register(mutant.max_register_index() + 1)
    for instr in instrs:
        if isinstance(instr.dst, QueueRef):
            instr.dst = fresh
            return mutant
    return None


def arrive_to_wait(program: Program) -> Program | None:
    """Flip the first ``BAR.ARRIVE`` into a ``BAR.WAIT``.

    Both sides of the split barrier now wait and nobody arrives:
    statically a barrier-pairing violation, dynamically a deadlock.
    """
    mutant, instrs = _clone_sites(program)
    for instr in instrs:
        if instr.opcode is Opcode.BAR_ARRIVE:
            instr.opcode = Opcode.BAR_WAIT
            return mutant
    return None


def drop_arrive(program: Program) -> Program | None:
    """Delete the first ``BAR.ARRIVE`` instruction outright.

    The signal that publishes a producer's shared-memory writes never
    fires: statically a barrier-pairing violation (and the
    happens-before engine loses the ordering edge, so the guarded
    buffer races); dynamically the partner ``BAR.WAIT`` starves into a
    deadlock — or, when the barrier had initial credit, the consumer
    runs ahead and the SMEM sanitizer observes the race directly.
    """
    mutant, _ = _clone_sites(program)
    for block in mutant.blocks:
        for pos, instr in enumerate(block.instructions):
            if instr.opcode is Opcode.BAR_ARRIVE:
                del block.instructions[pos]
                return mutant
    return None


def reorder_push(program: Program) -> Program | None:
    """Hoist a queue push above the SMEM write it publishes.

    Models a compiler scheduling bug: the producer signals "data ready"
    before the data lands.  The queue's data edge no longer orders the
    write before the consumer's read — statically a same-generation
    SMEM race, dynamically stale reads (memory divergence and a
    sanitizer-observed race).
    """
    mutant, _ = _clone_sites(program)
    smem_writes = (Opcode.STS, Opcode.LDGSTS, Opcode.TMA_TILE)
    for block in mutant.blocks:
        write_pos: int | None = None
        for pos, instr in enumerate(block.instructions):
            if instr.opcode in smem_writes:
                if write_pos is None:
                    write_pos = pos
            elif write_pos is not None and isinstance(
                instr.dst, QueueRef
            ):
                push = block.instructions.pop(pos)
                block.instructions.insert(write_pos, push)
                return mutant
    return None


def phase_off_by_one(program: Program) -> Program | None:
    """Grant one barrier an extra generation of initial credit.

    The classic circular-buffer off-by-one: an empty-style barrier
    starts one generation too permissive, so a producer may refill a
    phase while a consumer is still reading it.  Statically a
    phase-overlap race (the happens-before window widens by one
    occurrence); dynamically a sanitizer-observed race — the pipeline
    still drains, so nothing deadlocks.
    """
    spec = program.tb_spec
    if not isinstance(spec, ThreadBlockSpec) or not spec.barrier_initial:
        return None
    initial = dict(spec.barrier_initial)
    credited = [b for b in sorted(initial) if initial[b] > 0]
    if not credited:
        return None
    mutant, _ = _clone_sites(program)
    name = credited[0]
    initial[name] += spec.barrier_expected.get(name, 1)
    mutant.tb_spec = replace(spec, barrier_initial=initial)
    return mutant


def skip_slot_advance(program: Program) -> Program | None:
    """Point a later-slot SMEM fill back at ring slot 0.

    Models a circular-buffering bug where one unrolled copy's address
    rotation is lost: the producer's slot-``k`` fill (``k ≥ 1``) lands
    in slot 0 while still synchronizing through slot ``k``'s barriers.
    Statically a phase overlap (the retagged slot collides with slot
    0's protocol); dynamically the sanitizer observes the fill racing
    the consumer's in-flight slot-0 read — no deadlock, since every
    barrier still fires.
    """
    mutant, _ = _clone_sites(program)
    rings = _ring_copies(mutant)
    for block in mutant.blocks:
        for instr in block.instructions:
            if instr.opcode not in (Opcode.STS, Opcode.LDGSTS):
                continue
            phase = instr.attrs.get("smem_phase", 0)
            bases = rings.get(instr.attrs.get("smem_buffer"))
            if phase < 1 or bases is None or phase >= len(bases):
                continue
            if _shift_smem_address(block, instr, bases[0] - bases[phase]):
                instr.attrs["smem_phase"] = 0
                return mutant
    return None


def depth_off_by_one(program: Program) -> Program | None:
    """Credit one extra ring slot per consumer generation.

    Models a consumer generated for a ring one slot deeper than the
    one actually allocated: alongside the legitimate empty-credit
    arrival it also credits the *next* slot, so the producer runs a
    slot ahead of the reads.  Statically a credit/phase overlap on the
    over-credited slot; dynamically a sanitizer-observed race — extra
    arrivals only ever unblock, so nothing deadlocks.
    """
    mutant, _ = _clone_sites(program)
    for block in mutant.blocks:
        for pos, instr in enumerate(block.instructions):
            if instr.opcode is not Opcode.BAR_ARRIVE:
                continue
            bid = instr.barrier_id
            if not bid or not bid.endswith("_empty"):
                continue
            ring = tile_ring(bid[: -len("_empty")])
            if ring is None:
                continue
            base, phase = ring
            depth = len(_ring_phases(mutant, base))
            if depth < 2:
                continue
            extra = Instruction(
                Opcode.BAR_ARRIVE,
                barrier_id=(
                    f"{phase_key(base, (phase + 1) % depth)}_empty"
                ),
                guard=instr.guard,
                guard_negated=instr.guard_negated,
                category=instr.category,
                attrs=dict(instr.attrs),
            )
            block.instructions.insert(pos + 1, extra)
            return mutant
    return None


def stale_phase_read(program: Program) -> Program | None:
    """Retarget a consumer's SMEM read one ring slot forward.

    Models a stale (mis-rotated) phase index on the consume side: the
    slot-``k`` read fetches slot ``k+1``, whose refill the slot-``k``
    barriers never ordered against this read.  Statically a phase
    overlap with the producer's slot-``k+1`` fill; dynamically a
    sanitizer-observed write-read race plus a memory divergence (the
    read returns the wrong tile).
    """
    mutant, _ = _clone_sites(program)
    rings = _ring_copies(mutant)
    for block in mutant.blocks:
        for instr in block.instructions:
            if instr.opcode is not Opcode.LDS:
                continue
            phase = instr.attrs.get("smem_phase")
            bases = rings.get(instr.attrs.get("smem_buffer"))
            if phase is None or bases is None or phase >= len(bases):
                continue
            nxt = (phase + 1) % len(bases)
            if _shift_smem_address(
                block, instr, bases[nxt] - bases[phase]
            ):
                instr.attrs["smem_phase"] = nxt
                return mutant
    return None


#: name -> mutation function, the vocabulary of ``repro fuzz --inject``.
MUTATIONS: dict[str, Callable[[Program], Program | None]] = {
    "drop-pop": drop_pop,
    "drop-push": drop_push,
    "arrive-to-wait": arrive_to_wait,
    "drop-arrive": drop_arrive,
    "reorder-push": reorder_push,
    "phase-off-by-one": phase_off_by_one,
    "skip-slot-advance": skip_slot_advance,
    "depth-off-by-one": depth_off_by_one,
    "stale-phase-read": stale_phase_read,
}


def apply_mutation(program: Program, name: str) -> Program | None:
    """Apply mutation ``name``; ``None`` when it has no site here."""
    try:
        mutation = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; choose from {sorted(MUTATIONS)}"
        ) from None
    return mutation(program)
