"""The ``repro fuzz`` fan-out.

Seeds are independent oracle tasks, fanned out over the same process
pool discipline as the experiment sweeps (:mod:`repro.experiments.
parallel`): job count comes from ``--jobs``, else ``REPRO_JOBS``, else
1; workers share the content-addressed trace store, where passing
oracle verdicts are cached so re-fuzzing identical seeds costs one
disk read per seed; and results are assembled **by seed**, so
``--jobs N`` reports exactly what ``--jobs 1`` reports.

Failing seeds are shrunk in the parent (serial — shrinking is a
search, not a map) and optionally persisted to the corpus.  An
optional wall-clock budget makes the nightly CI job time-boxed: seeds
are processed in order and the run stops cleanly once the budget is
spent, reporting how many seeds it actually covered.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.experiments.parallel import (
    _tel_before,
    _tel_delta,
    _worker_init,
    resolve_jobs,
)
from repro.experiments.runner import GLOBAL_CACHE
from repro.telemetry.registry import TELEMETRY
from repro.fuzz.oracle import (
    FuzzFailure,
    FuzzWarning,
    OracleReport,
    run_oracle,
)
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import generate_spec


@dataclass(frozen=True)
class FuzzTask:
    """One seed's oracle run; plain data so it can cross processes."""

    seed: int
    metamorphic: bool = True
    inject: str | None = None
    use_verdict_cache: bool = True


@dataclass
class FuzzReport:
    """Everything one fuzz run learned."""

    seeds_requested: int = 0
    seeds_run: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    budget_exhausted: bool = False
    verdict_cache_hits: int = 0
    #: Compiler option-set name -> number of seeds it specialized.
    specialized_counts: dict[str, int] = field(default_factory=dict)
    skeleton_counts: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)
    #: W-level verifier findings on passing seeds (per seed, per
    #: compiled variant) — surfaced, not swallowed; never fail the run.
    warnings: list[FuzzWarning] = field(default_factory=list)
    corpus_paths: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.seeds_run > 0 and not self.failures

    @property
    def warning_counts(self) -> dict[str, int]:
        """Verifier rule id -> number of (seed, variant) hits."""
        counts: dict[str, int] = {}
        for warning in self.warnings:
            counts[warning.rule] = counts.get(warning.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self) -> dict[str, Any]:
        return {
            "seeds_requested": self.seeds_requested,
            "seeds_run": self.seeds_run,
            "jobs": self.jobs,
            "wall_seconds": round(self.wall_seconds, 3),
            "budget_exhausted": self.budget_exhausted,
            "verdict_cache_hits": self.verdict_cache_hits,
            "specialized_counts": dict(
                sorted(self.specialized_counts.items())
            ),
            "skeleton_counts": dict(sorted(self.skeleton_counts.items())),
            "failures": [f.to_json() for f in self.failures],
            "warnings": [w.to_json() for w in self.warnings],
            "warning_counts": self.warning_counts,
            "corpus_paths": list(self.corpus_paths),
            "passed": self.passed,
        }

    def summary_lines(self) -> list[str]:
        lines = [
            f"fuzz: {self.seeds_run}/{self.seeds_requested} seeds "
            f"(jobs={self.jobs}, {self.wall_seconds:.1f}s"
            + (", budget exhausted" if self.budget_exhausted else "")
            + f", {self.verdict_cache_hits} verdict cache hits)",
            "  skeletons: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.skeleton_counts.items())
            ),
            "  specialized under: " + (", ".join(
                f"{name}={count}"
                for name, count in sorted(self.specialized_counts.items())
            ) or "none"),
        ]
        if self.warnings:
            lines.append(
                "  verifier warnings: " + ", ".join(
                    f"{rule}={count}"
                    for rule, count in self.warning_counts.items()
                )
            )
            lines.extend("    " + w.summary() for w in self.warnings)
        if self.failures:
            lines.append(f"  FAILURES ({len(self.failures)}):")
            lines.extend("    " + f.summary() for f in self.failures)
        else:
            lines.append("  no failures")
        return lines


def _run_fuzz_task(task: FuzzTask):
    tel_before = _tel_before()
    report = run_oracle(
        generate_spec(task.seed),
        metamorphic=task.metamorphic,
        inject=task.inject,
        use_verdict_cache=task.use_verdict_cache,
    )
    return task.seed, report, _tel_delta(tel_before)


def run_fuzz(
    seeds: int = 100,
    seed_base: int = 0,
    jobs: int | None = None,
    shrink: bool = True,
    inject: str | None = None,
    metamorphic: bool = True,
    time_budget: float | None = None,
    save_corpus: bool = False,
    corpus_dir: Path | None = None,
    use_verdict_cache: bool = True,
) -> FuzzReport:
    """Fuzz seeds ``seed_base .. seed_base + seeds - 1``.

    ``inject`` corrupts every specialized program with the named
    mutation — the expected outcome is then *failures on every seed
    that specializes*, which is how CI proves the oracle detects real
    stage-split bugs.  ``time_budget`` (seconds) stops dispatching new
    seeds once exceeded; already-running seeds finish and are counted.
    """
    jobs = resolve_jobs(jobs)
    tasks = [
        FuzzTask(
            seed=seed_base + i,
            metamorphic=metamorphic,
            inject=inject,
            use_verdict_cache=use_verdict_cache,
        )
        for i in range(seeds)
    ]
    report = FuzzReport(
        seeds_requested=seeds, jobs=jobs,
    )
    start = time.perf_counter()
    results: dict[int, OracleReport] = {}

    def out_of_time() -> bool:
        return (
            time_budget is not None
            and time.perf_counter() - start > time_budget
        )

    if jobs == 1:
        for task in tasks:
            if out_of_time():
                report.budget_exhausted = True
                break
            seed, oracle, _ = _run_fuzz_task(task)
            results[seed] = oracle
    else:
        store = GLOBAL_CACHE.store
        cache_dir = str(store.cache_dir) if store is not None else None
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_worker_init,
            initargs=(cache_dir, store is not None, TELEMETRY.enabled),
        ) as pool:
            pending = {pool.submit(_run_fuzz_task, t) for t in tasks}
            try:
                while pending:
                    done, pending = wait(
                        pending, timeout=0.5,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in done:
                        seed, oracle, tel = future.result()
                        results[seed] = oracle
                        if tel is not None:
                            TELEMETRY.merge_snapshot(tel)
                    if out_of_time() and pending:
                        report.budget_exhausted = True
                        break
            finally:
                for future in pending:
                    future.cancel()

    # Assemble by seed so the report is independent of completion order.
    for seed in sorted(results):
        oracle = results[seed]
        report.seeds_run += 1
        if oracle.from_cache:
            report.verdict_cache_hits += 1
        skeleton = oracle.spec.skeleton
        report.skeleton_counts[skeleton] = (
            report.skeleton_counts.get(skeleton, 0) + 1
        )
        for name in oracle.specialized_under:
            report.specialized_counts[name] = (
                report.specialized_counts.get(name, 0) + 1
            )
        report.failures.extend(oracle.failures)
        report.warnings.extend(oracle.warnings)

    if shrink:
        for failure in report.failures:
            minimized = shrink_spec(
                failure.spec, failure.check, inject=inject,
            )
            if minimized != failure.spec:
                failure.minimized = minimized

    if save_corpus and report.failures:
        from repro.fuzz.corpus import save_failure

        seen: set[str] = set()
        for failure in report.failures:
            path = save_failure(failure, corpus_dir=corpus_dir,
                                inject=inject)
            if str(path) not in seen:
                seen.add(str(path))
                report.corpus_paths.append(str(path))

    report.wall_seconds = time.perf_counter() - start
    _harvest_fuzz(report)
    return report


def _harvest_fuzz(report: FuzzReport) -> None:
    """Fold fuzz pool statistics into the registry.

    Seed counts depend on the wall-clock budget and verdict-cache
    locality, so every series here is ``invariant=False``.
    """
    if not TELEMETRY.enabled:
        return
    TELEMETRY.counter(
        "repro_pool_tasks_total", {"phase": "fuzz"},
        help="Sweep tasks completed by phase", invariant=False,
    ).inc(report.seeds_run)
    TELEMETRY.counter(
        "repro_pool_worker_seconds_total", {"phase": "fuzz"},
        help="Wall-clock seconds spent inside sweep tasks",
        invariant=False,
    ).inc(report.wall_seconds)
    TELEMETRY.gauge(
        "repro_pool_jobs", help="Worker processes of the last sweep",
    ).set_max(report.jobs)
