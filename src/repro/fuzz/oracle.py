"""The differential oracle: baseline vs. WASP, end to end.

For one generated spec the oracle:

1. functionally executes the unspecialized kernel (the reference);
2. compiles it with each of a deterministic set of compiler option
   tuples and, where specialization succeeds, functionally executes the
   specialized program;
3. asserts **bit-identical output memory images**;
4. asserts **consistent dynamic instruction accounting** — the
   specialized run performs exactly as many global stores, its queue
   pushes balance its pops per queue, and it does strictly more dynamic
   instructions only through replication/queue overhead (never fewer);
5. replays both traces on the timing simulator and asserts the PR 2
   stall invariant (``sum(stalls) + issued == active warp-cycles``) as
   a standing assertion, plus the metamorphic timing invariants of
   :mod:`repro.fuzz.metamorphic`;
6. cross-checks every failure against the static verifier, so a
   runtime-caught bug that the verifier misses is reported as a
   verifier blind spot (a rule it should have had);
7. runs the translation validator over every compiled (and, under
   ``inject``, mutated) variant and demands static/dynamic agreement:
   a ``not-equivalent`` verdict on a clean compile the functional
   checks accept is ``transval-disagreement``, and an ``equivalent``
   verdict on a program the functional checks reject is
   ``transval-false-equivalent`` — the validator must never certify a
   broken program.

Passing verdicts are persisted content-addressed in the trace store
(``.repro_cache/`` by default), so repeated fuzz runs over identical
seeds are cache hits, not recomputation.  Failures are never cached.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.analysis.diagnostics import Severity
from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.errors import CompilerError, ReproError, VerificationError
from repro.fexec.machine import run_kernel
from repro.fexec.trace import KernelTrace
from repro.fuzz.generator import build_kernel
from repro.fuzz.spec import SPEC_VERSION, FuzzSpec
from repro.isa.opcodes import Opcode
from repro.telemetry.registry import TELEMETRY
from repro.workloads.base import Kernel

#: Bumped whenever oracle checks change; invalidates cached verdicts.
#: v2: passing verdicts carry W-level verifier warnings (e.g. WASP-Q006)
#: so cached seeds still surface them in per-seed reports.
#: v3: deep-ring variant compiles every spec at pipeline_depth=4.
#: v4: translation-validation cross-check — every compiled variant's
#: static verdict is recorded in the cached payload and must agree
#: with the functional oracle (``transval-disagreement`` /
#: ``transval-false-equivalent`` failures otherwise).
ORACLE_VERSION = 4

#: Deterministic compiler option tuples every spec is compiled under.
OPTION_SETS: tuple[tuple[str, WaspCompilerOptions], ...] = (
    ("sw-queues", WaspCompilerOptions(enable_tma_offload=False)),
    ("full", WaspCompilerOptions()),
    ("two-stage", WaspCompilerOptions(max_stages=2)),
    ("tiny-queues", WaspCompilerOptions(queue_size=2,
                                        enable_tma_offload=False)),
    ("deep-ring", WaspCompilerOptions(pipeline_depth=4)),
)


@dataclass(frozen=True)
class FuzzWarning:
    """One W-level static-verifier finding on a *passing* seed.

    A warning is not an oracle failure — the compiled program is
    functionally correct — but rules like WASP-Q006 (credit pressure)
    mark latent hazards, so ``repro fuzz`` surfaces them per seed
    instead of silently dropping the compiler's diagnostics.
    """

    seed: int
    options_name: str
    rule: str
    message: str
    location: str = ""

    def to_json(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "options": self.options_name,
            "rule": self.rule,
            "message": self.message,
            "location": self.location,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "FuzzWarning":
        return cls(
            seed=int(doc["seed"]),
            options_name=doc.get("options", ""),
            rule=doc["rule"],
            message=doc.get("message", ""),
            location=doc.get("location", ""),
        )

    def summary(self) -> str:
        return (
            f"[{self.rule}] seed={self.seed} "
            f"options={self.options_name or '-'} "
            f"{self.location}: {self.message}"
        )


@dataclass
class FuzzFailure:
    """One oracle violation, with enough context to replay it."""

    seed: int
    spec: FuzzSpec
    check: str            # e.g. 'memory-divergence', 'deadlock'
    message: str
    options_name: str = ""
    #: Static-verifier cross-check: rule ids that fired on the failing
    #: compiled program.  Empty means the verifier was blind to this
    #: failure — a candidate for a new rule.
    verifier_rules: list[str] = field(default_factory=list)
    #: Set by the shrinker: the smallest spec still failing this check.
    minimized: FuzzSpec | None = None

    def to_json(self) -> dict[str, Any]:
        doc = {
            "seed": self.seed,
            "spec": self.spec.to_json(),
            "check": self.check,
            "message": self.message,
            "options": self.options_name,
            "verifier_rules": list(self.verifier_rules),
        }
        if self.minimized is not None:
            doc["minimized"] = self.minimized.to_json()
        return doc

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "FuzzFailure":
        return cls(
            seed=int(doc["seed"]),
            spec=FuzzSpec.from_json(doc["spec"]),
            check=doc["check"],
            message=doc.get("message", ""),
            options_name=doc.get("options", ""),
            verifier_rules=list(doc.get("verifier_rules", [])),
            minimized=(
                FuzzSpec.from_json(doc["minimized"])
                if doc.get("minimized") else None
            ),
        )

    def summary(self) -> str:
        spec = self.minimized or self.spec
        tag = " (minimized)" if self.minimized else ""
        return (
            f"[{self.check}] {spec.describe()}{tag} "
            f"options={self.options_name or '-'}: {self.message}"
        )


@dataclass
class OracleReport:
    """Outcome of the oracle on one spec."""

    spec: FuzzSpec
    failures: list[FuzzFailure] = field(default_factory=list)
    specialized_under: list[str] = field(default_factory=list)
    #: W-level verifier diagnostics per compiled variant (see
    #: :class:`FuzzWarning`); populated on cache hits too.
    warnings: list[FuzzWarning] = field(default_factory=list)
    #: Translation-validation verdict per compiled variant name
    #: (``equivalent`` / ``not-equivalent`` / ``abstain``); part of the
    #: cached passing payload so cache hits keep the certificates.
    transval_verdicts: dict[str, str] = field(default_factory=dict)
    from_cache: bool = False

    @property
    def passed(self) -> bool:
        return not self.failures


def verdict_key(kernel: Kernel, metamorphic: bool) -> str:
    """Content-addressed key for a cached passing verdict."""
    from repro.experiments.runner import _options_key

    opts = "|".join(
        f"{name}={_options_key(o)!r}" for name, o in OPTION_SETS
    )
    text = (
        f"fuzz-verdict|{kernel.content_digest()}|{opts}"
        f"|meta={int(metamorphic)}|v={ORACLE_VERSION}.{SPEC_VERSION}"
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _store():
    from repro.experiments.runner import GLOBAL_CACHE

    return GLOBAL_CACHE.store


def _tel_verdict(outcome: str) -> None:
    """Count one verdict-cache lookup.  Disk locality depends on prior
    runs, so the series is ``invariant=False``."""
    if not TELEMETRY.enabled:
        return
    TELEMETRY.counter(
        "repro_fuzz_verdict_cache_total", {"outcome": outcome},
        help="Fuzz verdict-cache lookups by outcome", invariant=False,
    ).inc()


def _count_opcode(traces: list[KernelTrace], *opcodes: Opcode) -> int:
    return sum(
        1
        for trace in traces
        for warp in trace.warps
        for di in warp.instrs
        if di.opcode in opcodes
    )


def _queue_balance(traces: list[KernelTrace]) -> dict[int, tuple[int, int]]:
    """Per queue id: (pushes, pops) over all thread blocks.

    TMA jobs push ``num_vectors`` entries per dynamic instruction; a
    plain queue destination pushes one.
    """
    balance: dict[int, list[int]] = {}
    for trace in traces:
        for warp in trace.warps:
            for di in warp.instrs:
                if di.queue_push is not None:
                    entry = balance.setdefault(di.queue_push, [0, 0])
                    if di.tma_job is not None:
                        entry[0] += int(di.tma_job.get("num_vectors", 0))
                    else:
                        entry[0] += 1
                if di.queue_pop is not None:
                    entry = balance.setdefault(di.queue_pop, [0, 0])
                    entry[1] += 1
    return {qid: (p, c) for qid, (p, c) in balance.items()}


def _verifier_rules(program) -> list[str]:
    """Rule ids the static verifier reports for ``program``."""
    from repro.analysis import verify_program

    try:
        report = verify_program(program)
    except ReproError as exc:
        return [f"verifier-crash:{type(exc).__name__}"]
    return sorted({d.rule for d in report.diagnostics})


def run_oracle(
    spec: FuzzSpec,
    metamorphic: bool = True,
    inject: str | None = None,
    use_verdict_cache: bool = True,
) -> OracleReport:
    """Run every oracle check for ``spec``.

    ``inject`` names a :mod:`repro.fuzz.mutate` corruption applied to
    each compiled program before execution — the self-test proving the
    oracle catches real stage-split bugs.  Injected runs never touch
    the verdict cache.
    """
    report = OracleReport(spec=spec)
    kernel = build_kernel(spec)

    cacheable = use_verdict_cache and inject is None
    store = _store() if cacheable else None
    key = verdict_key(kernel, metamorphic) if store is not None else None
    if store is not None and key is not None:
        payload = store.load(key)
        hit = (
            payload is not None
            and payload.get("fuzz_verdict") == "pass"
        )
        _tel_verdict("hit" if hit else "miss")
        if hit:
            report.from_cache = True
            report.specialized_under = list(
                payload.get("specialized_under", [])
            )
            report.warnings = [
                FuzzWarning.from_json(doc)
                for doc in payload.get("warnings", [])
            ]
            report.transval_verdicts = dict(
                payload.get("transval_verdicts", {})
            )
            return report

    reference = kernel.image_factory()
    ref_result = run_kernel(kernel.program, reference, kernel.launch)
    want = reference.snapshot()
    ref_stores = _count_opcode(ref_result.traces, Opcode.STG)

    for name, options in OPTION_SETS:
        _check_one_variant(
            report, kernel, name, options, want, ref_stores, inject,
        )

    if metamorphic and not report.failures:
        from repro.fuzz.metamorphic import check_timing_invariants

        report.failures.extend(
            check_timing_invariants(spec, kernel, ref_result.traces)
        )

    if store is not None and key is not None and report.passed:
        store.save(
            key, [], fuzz_verdict="pass",
            specialized_under=report.specialized_under,
            warnings=[w.to_json() for w in report.warnings],
            transval_verdicts=dict(report.transval_verdicts),
        )
    return report


def _check_one_variant(
    report: OracleReport,
    kernel: Kernel,
    name: str,
    options: WaspCompilerOptions,
    want: np.ndarray,
    ref_stores: int,
    inject: str | None,
) -> None:
    spec = report.spec

    def fail(check: str, message: str, program=None) -> None:
        report.failures.append(FuzzFailure(
            seed=spec.seed,
            spec=spec,
            check=check,
            message=message,
            options_name=name,
            verifier_rules=(
                _verifier_rules(program) if program is not None else []
            ),
        ))

    try:
        # Translation validation is disabled *inside* the compile and
        # run explicitly below: the oracle needs the raw verdict (on
        # the possibly-mutated program) for the static/dynamic
        # cross-check, not an exception mid-compile.
        result = WaspCompiler(replace(options, validate=False)).compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
    except VerificationError as exc:
        report.failures.append(FuzzFailure(
            seed=spec.seed, spec=spec, check="static-verifier",
            message=str(exc)[:300], options_name=name,
            verifier_rules=sorted({d.rule for d in exc.diagnostics}),
        ))
        return
    except CompilerError as exc:
        fail("compiler-crash", f"{type(exc).__name__}: {exc}")
        return
    if not result.specialized:
        return
    report.specialized_under.append(name)
    for diag in result.diagnostics:
        if diag.severity is Severity.WARNING:
            report.warnings.append(FuzzWarning(
                seed=spec.seed,
                options_name=name,
                rule=diag.rule,
                message=diag.message,
                location=diag.location,
            ))

    program = result.program
    if inject is not None:
        from repro.fuzz.mutate import apply_mutation

        mutated = apply_mutation(program, inject)
        if mutated is None:
            return  # no applicable site in this variant
        program = mutated

    verdict = _transval_verdict(
        kernel, program, fail, assume_verified=inject is None
    )
    report.transval_verdicts[name] = verdict

    before = len(report.failures)
    _run_dynamic_checks(
        kernel, program, result, want, ref_stores, inject, fail
    )
    dynamic_failed = len(report.failures) > before

    # Static/dynamic agreement: the validator must never certify a
    # program the functional oracle rejects, and on clean compiles it
    # must not reject a program the oracle accepts.  Abstention agrees
    # with everything — it claims nothing.  (An injected corruption the
    # validator flags but this input happens to tolerate is the static
    # side being *stronger*, which is fine.)
    if verdict == "equivalent" and dynamic_failed:
        fail(
            "transval-false-equivalent",
            "translation validator certified a program the functional "
            f"oracle rejected ({report.failures[before].check})",
            program=program,
        )
    elif verdict == "not-equivalent" and inject is None and not dynamic_failed:
        fail(
            "transval-disagreement",
            "translation validator rejected a clean compile the "
            "functional oracle accepted",
            program=program,
        )


def _transval_verdict(
    kernel: Kernel, program, fail, *, assume_verified: bool
) -> str:
    """Static verdict for one compiled (possibly mutated) variant.

    A validator crash is itself an oracle failure — the certificate
    machinery must hold up on everything the generator produces.
    """
    from repro.analysis.transval import validate_programs

    try:
        return validate_programs(
            kernel.program, program, assume_verified=assume_verified
        ).verdict
    except ReproError as exc:
        fail(
            "transval-crash",
            f"{type(exc).__name__}: {str(exc)[:300]}",
            program=program,
        )
        return "crash"


def _run_dynamic_checks(
    kernel: Kernel,
    program,
    result,
    want: np.ndarray,
    ref_stores: int,
    inject: str | None,
    fail,
) -> None:
    launch = replace(
        kernel.launch,
        num_warps=kernel.launch.num_warps * result.num_stages,
    )
    image = kernel.image_factory()
    try:
        # Injected corruptions additionally run under the SMEM
        # sanitizer: orderings a mutation breaks without deadlocking
        # (e.g. reorder-push, phase-off-by-one) must still be caught
        # dynamically.
        spec_result = run_kernel(
            program, image, launch, sanitize=inject is not None
        )
    except ReproError as exc:
        fail(
            "deadlock" if "deadlock" in type(exc).__name__.lower()
            else "runtime-crash",
            f"{type(exc).__name__}: {str(exc)[:300]}",
            program=program,
        )
        return

    if spec_result.races:
        fail(
            "sanitizer-race",
            f"{len(spec_result.races)} unordered SMEM access pair(s); "
            f"first: {spec_result.races[0].format()}",
            program=program,
        )
        return

    if not np.array_equal(image.snapshot(), want):
        got, exp = image.snapshot(), want
        diff = np.flatnonzero(got != exp)
        first = int(diff[0]) if diff.size else -1
        fail(
            "memory-divergence",
            f"{diff.size} words differ; first at {first} "
            f"(got {got[first]!r}, want {exp[first]!r})",
            program=program,
        )
        return

    spec_stores = _count_opcode(spec_result.traces, Opcode.STG)
    if spec_stores != ref_stores:
        fail(
            "instr-accounting",
            f"dynamic STG count changed: {ref_stores} -> {spec_stores}",
            program=program,
        )
    for qid, (pushes, pops) in _queue_balance(spec_result.traces).items():
        if pushes != pops:
            fail(
                "queue-balance",
                f"queue {qid}: {pushes} pushes vs {pops} pops",
                program=program,
            )
