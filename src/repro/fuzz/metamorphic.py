"""Metamorphic timing invariants on the simulator.

Bit-exact differential checking does not apply to the timing model (it
has no reference implementation), so we check *relations between runs*
that must hold for any workload:

* **stall accounting** — ``sum(stall_cycles) + issued_total`` equals
  ``active_warp_cycles`` exactly (PR 2's invariant), on every
  simulation this module performs;
* **bandwidth busy-time conservation** — the bandwidth servers are
  deterministic queues, so DRAM/L2 busy time times the scale factor is
  an exact invariant of the ladder (``total_work / base_rate``);
* **bandwidth monotonicity** — scaling DRAM/L2 bandwidth down never
  decreases total cycles, up to a scheduling-jitter guard band;
* **latency monotonicity** — raising DRAM latency never decreases
  total cycles, up to the same guard band;
* **RFQ monotonicity (occupancy-pinned)** — enlarging the register
  file queue never increases cycles *at fixed occupancy*.  Unpinned,
  the relation is genuinely false: RFQ entries live in the register
  file, so a larger RFQ can displace a whole thread block and slow the
  kernel down.  That displacement is intended behaviour (the paper's
  Fig. 18 trade-off), not a bug, so the invariant pins occupancy to
  isolate the queueing effect.
* **determinism** — simulating the same traces twice gives identical
  cycle counts and stall attribution.

The monotonicity relations carry a multiplicative guard band
(:data:`JITTER_TOL`).  The original greedy round-robin arbiter was not
work-conserving (issue slots idled while eligible warps existed —
permanently, when the warp count did not divide the processing-block
count, and transiently whenever one block's warps all stalled
together), which produced up to ~21% jitter and forced a 25% band.
With balanced thread-block placement and idle-slot stealing in the SM
core the arbiter is work-conserving and the band is 12%: the residual
jitter is cache-hit *reassignment* — L1 lines are owned by whichever
warp touches the sector first, so a different interleaving can move a
DRAM miss onto the critical warp's path even though total traffic and
hit counts are identical (a 300-seed sweep shows zero jitter on 298
seeds and ~10-11% on two such cache-luck outliers, pinned by the
committed corpus).  The band tolerates that while still catching sign
errors and order-of-magnitude regressions; the exact conservation law
keeps the bandwidth ladder sharp.

Each violated relation is reported as a :class:`FuzzFailure` with
check ``timing-*``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.fexec.trace import KernelTrace
from repro.fuzz.spec import FuzzSpec
from repro.sim.config import GPUConfig, wasp_gpu
from repro.sim.gpu import make_simulator, simulate_kernel
from repro.sim.results import SimResult
from repro.workloads.base import Kernel

#: Tolerance for exact relations (determinism, conservation): the
#: simulator is deterministic, so these hold up to float accumulation.
_EPS = 1e-6

#: Guard band for cycle-count monotonicity.  Issue is work-conserving,
#: but cache-hit reassignment under a different interleaving can still
#: move a DRAM miss onto the critical warp (worst observed: ~11% over
#: 300 fuzz seeds; corpus seeds 129/163/198 pin the band).  Genuine
#: regressions (sign errors, inverted scale factors) overshoot this
#: band by integer factors.
JITTER_TOL = 0.12

#: RFQ sizes for the occupancy-pinned monotonicity ladder.
RFQ_LADDER = (4, 16, 64)

#: Bandwidth scale factors, strongest first; cycles must be
#: non-increasing along this ladder.
BANDWIDTH_LADDER = (0.25, 0.5, 1.0)

#: DRAM latency ladder; cycles must be non-decreasing along it.
LATENCY_LADDER = (200, 400, 800)


def assert_stall_accounting(sim: SimResult, context: str = "") -> None:
    """The standing PR 2 invariant; raises ``AssertionError``."""
    total = sim.stall_total + sim.issued_total
    if abs(total - sim.active_warp_cycles) > max(
        _EPS, _EPS * sim.active_warp_cycles
    ):
        raise AssertionError(
            f"stall accounting broken{' (' + context + ')' if context else ''}: "
            f"stalls {sim.stall_total} + issued {sim.issued_total} "
            f"!= active {sim.active_warp_cycles}"
        )


def check_timing_invariants(
    spec: FuzzSpec,
    kernel: Kernel,
    traces: list[KernelTrace],
):
    """All metamorphic relations for one kernel's traces.

    Returns a list of :class:`repro.fuzz.oracle.FuzzFailure`; empty
    means every relation held.  ``traces`` are the baseline functional
    traces (the relations are about the timing model, so whether the
    trace came from the specialized or baseline program is irrelevant —
    using the baseline keeps this independent of compiler behaviour).
    """
    from repro.fuzz.oracle import FuzzFailure

    failures: list[FuzzFailure] = []

    def fail(check: str, message: str) -> None:
        failures.append(FuzzFailure(
            seed=spec.seed, spec=spec, check=check, message=message,
        ))

    def timed(gpu: GPUConfig, occupancy=None) -> SimResult:
        sim = simulate_kernel(traces, gpu, occupancy=occupancy)
        assert_stall_accounting(sim, context=kernel.name)
        return sim

    try:
        base_gpu = wasp_gpu()
        base = timed(base_gpu)

        again = timed(base_gpu)
        if (again.cycles != base.cycles
                or again.stall_cycles != base.stall_cycles):
            fail(
                "timing-nondeterminism",
                f"same traces, two runs: {base.cycles} vs {again.cycles} "
                "cycles (or stall attribution differs)",
            )

        ladder = [
            (factor, timed(base_gpu.scale_bandwidth(factor)))
            for factor in BANDWIDTH_LADDER
        ]
        for (f_lo, lo), (f_hi, hi) in zip(ladder, ladder[1:]):
            # Less bandwidth must not make the kernel faster — modulo
            # scheduler jitter (see module docstring).
            if lo.cycles < hi.cycles * (1.0 - JITTER_TOL):
                fail(
                    "timing-bandwidth-monotone",
                    f"bandwidth x{f_lo} ran faster than x{f_hi}: "
                    f"{lo.cycles} vs {hi.cycles} cycles",
                )
        _check_busy_conservation(ladder, fail)

        prev_cycles = None
        for latency in LATENCY_LADDER:
            cycles = timed(replace(base_gpu, dram_latency=latency)).cycles
            if (prev_cycles is not None
                    and cycles < prev_cycles * (1.0 - JITTER_TOL)):
                fail(
                    "timing-latency-monotone",
                    f"dram_latency={latency} made the kernel faster: "
                    f"{prev_cycles} -> {cycles} cycles",
                )
            prev_cycles = cycles

        # Pin occupancy at the smallest-RFQ configuration so the ladder
        # isolates queue capacity from register-file displacement.
        small = wasp_gpu(rfq_size=RFQ_LADDER[0])
        pinned = make_simulator(small, traces).occupancy
        prev_cycles = None
        for rfq in RFQ_LADDER:
            cycles = timed(
                wasp_gpu(rfq_size=rfq), occupancy=pinned
            ).cycles
            if (prev_cycles is not None
                    and cycles > prev_cycles * (1.0 + JITTER_TOL)):
                fail(
                    "timing-rfq-monotone",
                    f"rfq_size={rfq} at pinned occupancy made the kernel "
                    f"slower: {prev_cycles} -> {cycles} cycles",
                )
            prev_cycles = cycles
    except AssertionError as exc:
        fail("timing-stall-accounting", str(exc))

    return failures


def _check_busy_conservation(ladder, fail) -> None:
    """``busy_time * factor`` is constant along the bandwidth ladder.

    The bandwidth servers are deterministic queues, so at scale factor
    ``f`` the DRAM busy time is exactly ``total_sectors / (rate * f)``
    — *provided* the traffic itself did not change.  Scheduling order
    can in principle perturb cache hit patterns (and hence DRAM
    traffic), so the check is gated on the L1 hit rate staying fixed
    across the ladder; when it moved, the relation is vacuous and we
    skip rather than misreport.
    """
    if len({round(sim.l1_hit_rate, 9) for _f, sim in ladder}) != 1:
        return
    products = []
    for factor, sim in ladder:
        util = sim.dram_utilization
        if util <= 0.0 or util >= 0.999:  # idle or clamped: no signal
            return
        products.append((factor, util * max(1.0, sim.cycles) * factor))
    baseline = products[-1][1]
    for factor, product in products:
        if abs(product - baseline) > max(_EPS, 1e-3 * baseline):
            fail(
                "timing-bandwidth-conservation",
                "DRAM busy time does not scale inversely with "
                f"bandwidth: busy*factor is {product:.3f} at x{factor} "
                f"vs {baseline:.3f} at x{products[-1][0]}",
            )
            return
