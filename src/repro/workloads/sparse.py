"""Synthetic sparse matrices in CSR form.

Stand-ins for the SuiteSparse inputs the paper uses:

* :func:`banded_csr` — regular, narrow-band structure like
  ``AMD/G3_circuit`` (FEM circuit matrix, ~4.8 nnz/row, clustered
  columns → good gather locality).
* :func:`power_law_csr` — skewed structure like ``Williams/webbase-1M``
  (web graph, power-law rows, scattered columns → poor locality).
* :func:`road_like_csr` — near-planar constant-degree structure like
  ``SNAP/roadNet-CA``.

The generators are deterministic given a seed so every simulation of a
benchmark sees identical data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CsrMatrix:
    """CSR arrays; indices are int64, values float64."""

    num_rows: int
    num_cols: int
    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.row_ptr[-1])

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A @ x for functional checks."""
        y = np.zeros(self.num_rows)
        for row in range(self.num_rows):
            start, end = self.row_ptr[row], self.row_ptr[row + 1]
            cols = self.col_idx[start:end]
            y[row] = float(np.dot(self.values[start:end], x[cols]))
        return y


def _finalize(num_rows: int, num_cols: int, rows: list[np.ndarray],
              rng: np.random.Generator) -> CsrMatrix:
    row_ptr = np.zeros(num_rows + 1, dtype=np.int64)
    cols = []
    for row, row_cols in enumerate(rows):
        unique = np.unique(row_cols)
        cols.append(unique)
        row_ptr[row + 1] = row_ptr[row] + len(unique)
    col_idx = np.concatenate(cols) if cols else np.zeros(0, dtype=np.int64)
    values = rng.uniform(0.5, 1.5, size=len(col_idx))
    return CsrMatrix(num_rows, num_cols, row_ptr, col_idx, values)


def banded_csr(
    num_rows: int, nnz_per_row: int = 5, bandwidth: int = 16, seed: int = 7
) -> CsrMatrix:
    """Regular banded matrix (G3_circuit-like)."""
    rng = np.random.default_rng(seed)
    rows = []
    for row in range(num_rows):
        lo = max(0, row - bandwidth)
        hi = min(num_rows - 1, row + bandwidth)
        count = min(nnz_per_row, hi - lo + 1)
        row_cols = rng.choice(
            np.arange(lo, hi + 1), size=count, replace=False
        )
        rows.append(np.sort(np.append(row_cols, row) % num_rows))
    return _finalize(num_rows, num_rows, rows, rng)


def power_law_csr(
    num_rows: int, avg_nnz: int = 8, alpha: float = 1.6, seed: int = 11
) -> CsrMatrix:
    """Power-law matrix (webbase-like): skewed rows, scattered columns."""
    rng = np.random.default_rng(seed)
    raw = rng.pareto(alpha, size=num_rows) + 1.0
    lengths = np.maximum(
        1, (raw / raw.mean() * avg_nnz).astype(np.int64)
    )
    lengths = np.minimum(lengths, max(4, num_rows // 2))
    # Column popularity is itself skewed (hub columns).
    popularity = rng.pareto(alpha, size=num_rows) + 1.0
    popularity /= popularity.sum()
    rows = [
        rng.choice(num_rows, size=int(n), replace=True, p=popularity)
        for n in lengths
    ]
    return _finalize(num_rows, num_rows, rows, rng)


def road_like_csr(num_rows: int, seed: int = 13) -> CsrMatrix:
    """Near-planar constant-degree matrix (roadNet-like)."""
    rng = np.random.default_rng(seed)
    side = max(2, int(np.sqrt(num_rows)))
    rows = []
    for row in range(num_rows):
        x, y = row % side, row // side
        neighbours = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            node = ny * side + nx
            if 0 <= nx < side and 0 <= node < num_rows:
                neighbours.append(node)
        if rng.random() < 0.05:  # occasional shortcut (ramps/bridges)
            neighbours.append(int(rng.integers(0, num_rows)))
        rows.append(np.array(neighbours, dtype=np.int64))
    return _finalize(num_rows, num_rows, rows, rng)
