"""Synthetic graphs for the Lonestar benchmarks (bfs, mst, sp).

Graphs are stored as CSR adjacency (reusing :class:`CsrMatrix`), which
is also how the Lonestar GPU codes lay out their inputs.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.sparse import CsrMatrix, power_law_csr, road_like_csr


def power_law_graph(num_nodes: int, avg_degree: int = 8,
                    seed: int = 17) -> CsrMatrix:
    """Scale-free graph (social/web-like) as CSR adjacency."""
    return power_law_csr(num_nodes, avg_nnz=avg_degree, seed=seed)


def road_graph(num_nodes: int, seed: int = 19) -> CsrMatrix:
    """Road-network-like graph as CSR adjacency."""
    return road_like_csr(num_nodes, seed=seed)


def bfs_frontier(graph: CsrMatrix, source: int = 0,
                 depth: int = 2) -> np.ndarray:
    """Node ids at the given BFS depth (a realistic mid-search frontier)."""
    visited = {source}
    frontier = [source]
    for _ in range(depth):
        next_frontier = []
        for node in frontier:
            start, end = graph.row_ptr[node], graph.row_ptr[node + 1]
            for neighbour in graph.col_idx[start:end]:
                if int(neighbour) not in visited:
                    visited.add(int(neighbour))
                    next_frontier.append(int(neighbour))
        if not next_frontier:
            break
        frontier = next_frontier
    return np.array(sorted(frontier), dtype=np.int64)
