"""cuSPARSE benchmarks: SpMV, SpMM and SpGEMM (Table II, middle block).

Matrix stand-ins: ``banded_csr`` for AMD/G3_circuit, ``power_law_csr``
for Williams/webbase-1M and Williams/mac_econ_fwd500, ``road_like_csr``
for SNAP/roadNet-CA (see :mod:`repro.workloads.sparse`).
"""

from __future__ import annotations

from repro.fexec.launch import LaunchConfig
from repro.fexec.memory_image import MemoryImage
from repro.isa.builder import ProgramBuilder
from repro.isa.operands import SpecialReg
from repro.workloads.base import Benchmark, Kernel
from repro.workloads.kernels import WIDTH, csr_spmm_kernel, csr_spmv_kernel
from repro.workloads.registry import register
from repro.workloads.sparse import (
    CsrMatrix,
    banded_csr,
    power_law_csr,
    road_like_csr,
)

_HASH_WORDS = 128  # per-warp SMEM accumulator for SpGEMM


def _rows(scale: float, base: int) -> int:
    return max(32, int(base * scale) // 32 * 32)


@register("spmv1_g3")
def build_spmv1(scale: float = 1.0) -> Benchmark:
    rows = _rows(scale, 512)
    matrix = banded_csr(rows, nnz_per_row=6, bandwidth=16, seed=60)
    return Benchmark(
        name="spmv1_g3",
        category="cuSPARSE",
        description="Sparse matrix dense vector multiply (G3-circuit-like)",
        kernels=[
            csr_spmv_kernel("spmv_vector", matrix,
                            rows_per_tb=rows // 4, num_tbs=4, seed=61),
            csr_spmv_kernel("spmv_vector_2", matrix,
                            rows_per_tb=rows // 8, num_tbs=8, seed=62),
        ],
    )


@register("spmv2_web")
def build_spmv2(scale: float = 1.0) -> Benchmark:
    rows = _rows(scale, 512)
    matrix = power_law_csr(rows, avg_nnz=10, seed=63)
    return Benchmark(
        name="spmv2_web",
        category="cuSPARSE",
        description="Sparse matrix dense vector multiply (webbase-like)",
        kernels=[
            csr_spmv_kernel("spmv_vector", matrix,
                            rows_per_tb=rows // 4, num_tbs=4, seed=64),
            csr_spmv_kernel("spmv_vector_2", matrix,
                            rows_per_tb=rows // 8, num_tbs=8, seed=65),
        ],
    )


@register("spmm1_g3")
def build_spmm1(scale: float = 1.0) -> Benchmark:
    rows = _rows(scale, 256)
    matrix = banded_csr(rows, nnz_per_row=6, bandwidth=16, seed=66)
    return Benchmark(
        name="spmm1_g3",
        category="cuSPARSE",
        description="Sparse matrix dense matrix multiply (G3-circuit-like)",
        kernels=[
            csr_spmm_kernel("spmm_row_warp", matrix,
                            rows_per_tb=rows // 4, num_tbs=4, seed=67),
        ],
    )


@register("spmm2_web")
def build_spmm2(scale: float = 1.0) -> Benchmark:
    rows = _rows(scale, 256)
    matrix = power_law_csr(rows, avg_nnz=12, seed=68)
    return Benchmark(
        name="spmm2_web",
        category="cuSPARSE",
        description="Sparse matrix dense matrix multiply (webbase-like)",
        kernels=[
            csr_spmm_kernel("spmm_row_warp", matrix,
                            rows_per_tb=rows // 4, num_tbs=4, seed=69),
        ],
    )


def spgemm_numeric_kernel(
    name: str,
    a: CsrMatrix,
    b: CsrMatrix,
    rows_per_tb: int,
    num_tbs: int = 4,
    num_warps: int = 4,
    seed: int = 70,
) -> Kernel:
    """Row-wise SpGEMM numeric phase with a per-warp SMEM hash.

    For each row of A: walk its entries; for each (c, av) walk row c of
    B with lanes strided, accumulating av*bv into a per-warp SMEM hash
    indexed by the B column.  The hash is then flushed to the dense
    output row.  This is the Kokkos/nsparse-style GPU SpGEMM shape:
    data-dependent nested loops, gathers into B, and SMEM traffic.
    """
    if rows_per_tb * num_tbs > a.num_rows:
        raise ValueError(f"{name}: launch exceeds A rows")

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 20)
        img.alloc("a_ptr", a.num_rows + 1)
        img.write_array("a_ptr", a.row_ptr)
        img.alloc("a_cols", a.nnz + WIDTH)
        img.write_array("a_cols", a.col_idx)
        img.alloc("a_vals", a.nnz + WIDTH)
        img.write_array("a_vals", a.values)
        img.alloc("b_ptr", b.num_rows + 1)
        img.write_array("b_ptr", b.row_ptr)
        img.alloc("b_cols", b.nnz + WIDTH)
        img.write_array("b_cols", b.col_idx)
        img.alloc("b_vals", b.nnz + WIDTH)
        img.write_array("b_vals", b.values)
        img.alloc("c_out", a.num_rows * _HASH_WORDS)
        return img

    layout = image_factory()
    ap, ac, av = (layout.base("a_ptr"), layout.base("a_cols"),
                  layout.base("a_vals"))
    bp, bc, bv = (layout.base("b_ptr"), layout.base("b_cols"),
                  layout.base("b_vals"))
    cb = layout.base("c_out")

    builder = ProgramBuilder(name)
    hash_base = builder.alloc_smem("hash", _HASH_WORDS * num_warps)
    lane = builder.special(SpecialReg.LANE_ID)
    wid = builder.special(SpecialReg.WARP_ID)
    nw = builder.special(SpecialReg.NUM_WARPS)
    tb = builder.special(SpecialReg.TB_ID)
    warp_hash = builder.imad(wid, _HASH_WORDS, hash_base)
    tb_row = builder.imul(tb, rows_per_tb)
    row = builder.iadd(tb_row, wid)
    row_limit = builder.iadd(tb_row, rows_per_tb)
    builder.label("row_loop")
    # Zero this warp's hash (lanes cover the slots).
    z = builder.mov(0)
    builder.label("zero_loop")
    slot = builder.iadd(z, lane)
    zaddr = builder.iadd(slot, warp_hash)
    builder.sts(zaddr, 0.0, buffer="hash")
    builder.iadd(z, WIDTH, dst=z)
    zp = builder.isetp("lt", z, _HASH_WORDS)
    builder.bra("zero_loop", guard=zp)
    builder.label("a_row")
    ap_addr = builder.iadd(row, ap)
    a_start = builder.ldg(ap_addr)
    ap_addr2 = builder.iadd(ap_addr, 1)
    a_end = builder.ldg(ap_addr2)
    ja = builder.mov(a_start)
    builder.label("a_nnz")
    acol_addr = builder.iadd(ja, ac)
    acol = builder.ldg(acol_addr)
    aval_addr = builder.iadd(ja, av)
    aval = builder.ldg(aval_addr)
    bp_addr = builder.iadd(acol, bp)
    b_start = builder.ldg(bp_addr)
    bp_addr2 = builder.iadd(bp_addr, 1)
    b_end = builder.ldg(bp_addr2)
    jb = builder.mov(b_start)
    builder.label("b_nnz")
    jlane = builder.iadd(jb, lane)
    active = builder.isetp("lt", jlane, b_end)
    bcol_addr = builder.iadd(jlane, bc)
    bcol = builder.ldg(bcol_addr)
    bval_addr = builder.iadd(jlane, bv)
    bval = builder.ldg(bval_addr)
    contrib = builder.fmul(aval, bval)
    masked = builder.sel(active, contrib, 0.0)
    hslot = builder.and_(bcol, _HASH_WORDS - 1)
    haddr = builder.iadd(hslot, warp_hash)
    current = builder.lds(haddr, buffer="hash")
    updated = builder.fadd(current, masked)
    builder.sts(haddr, updated, buffer="hash")
    builder.iadd(jb, WIDTH, dst=jb)
    bmore = builder.isetp("lt", jb, b_end)
    builder.bra("b_nnz", guard=bmore)
    builder.label("a_next")
    builder.iadd(ja, 1, dst=ja)
    amore = builder.isetp("lt", ja, a_end)
    builder.bra("a_nnz", guard=amore)
    builder.label("flush")
    f = builder.mov(0)
    crow = builder.imul(row, _HASH_WORDS)
    builder.label("flush_loop")
    fslot = builder.iadd(f, lane)
    faddr = builder.iadd(fslot, warp_hash)
    value = builder.lds(faddr, buffer="hash")
    caddr0 = builder.iadd(crow, fslot)
    caddr = builder.iadd(caddr0, cb)
    builder.stg(caddr, value)
    builder.iadd(f, WIDTH, dst=f)
    fp = builder.isetp("lt", f, _HASH_WORDS)
    builder.bra("flush_loop", guard=fp)
    builder.label("row_next")
    builder.iadd(row, nw, dst=row)
    rp = builder.isetp("lt", row, row_limit)
    builder.bra("row_loop", guard=rp)
    builder.label("done")
    builder.exit()
    return Kernel(
        name=name,
        program=builder.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def spgemm_symbolic_kernel(
    name: str,
    a: CsrMatrix,
    b: CsrMatrix,
    rows_per_tb: int,
    num_tbs: int = 4,
    num_warps: int = 4,
    seed: int = 77,
) -> Kernel:
    """Row-wise SpGEMM symbolic phase: count output nnz per row.

    Real GPU SpGEMM runs a counting pass before the numeric pass; the
    access pattern is the same nested CSR walk but with a warp-collective
    population count instead of value accumulation — pure gather traffic
    with almost no FP work, an even better WASP target.
    """
    if rows_per_tb * num_tbs > a.num_rows:
        raise ValueError(f"{name}: launch exceeds A rows")

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 20)
        img.alloc("a_ptr", a.num_rows + 1)
        img.write_array("a_ptr", a.row_ptr)
        img.alloc("a_cols", a.nnz + WIDTH)
        img.write_array("a_cols", a.col_idx)
        img.alloc("b_ptr", b.num_rows + 1)
        img.write_array("b_ptr", b.row_ptr)
        img.alloc("counts", a.num_rows)
        return img

    layout = image_factory()
    ap, ac = layout.base("a_ptr"), layout.base("a_cols")
    bp, cnt = layout.base("b_ptr"), layout.base("counts")

    builder = ProgramBuilder(name)
    lane = builder.special(SpecialReg.LANE_ID)
    wid = builder.special(SpecialReg.WARP_ID)
    nw = builder.special(SpecialReg.NUM_WARPS)
    tb = builder.special(SpecialReg.TB_ID)
    tb_row = builder.imul(tb, rows_per_tb)
    row = builder.iadd(tb_row, wid)
    row_limit = builder.iadd(tb_row, rows_per_tb)
    builder.label("row_loop")
    ap_addr = builder.iadd(row, ap)
    a_start = builder.ldg(ap_addr)
    ap_addr2 = builder.iadd(ap_addr, 1)
    a_end = builder.ldg(ap_addr2)
    total = builder.mov(0.0)
    # Lanes cover A-row entries in chunks; each fetches its entry's B
    # row extent and contributes that row's length.
    jbase = builder.mov(a_start)
    builder.label("a_chunk")
    j = builder.iadd(jbase, lane)
    active = builder.isetp("lt", j, a_end)
    acol_addr = builder.iadd(j, ac)
    acol = builder.ldg(acol_addr)
    bp_addr = builder.iadd(acol, bp)
    b_start = builder.ldg(bp_addr)
    bp_addr2 = builder.iadd(bp_addr, 1)
    b_end = builder.ldg(bp_addr2)
    raw_len = builder.iadd(b_end, builder.imul(b_start, -1))
    length = builder.sel(active, raw_len, 0)
    chunk_total = builder.warp_sum(length)
    builder.fadd(total, chunk_total, dst=total)
    builder.iadd(jbase, WIDTH, dst=jbase)
    more = builder.isetp("lt", jbase, a_end)
    builder.bra("a_chunk", guard=more)
    builder.label("row_store")
    cnt_addr = builder.iadd(row, cnt)
    builder.stg(cnt_addr, total)
    builder.iadd(row, nw, dst=row)
    row_pred = builder.isetp("lt", row, row_limit)
    builder.bra("row_loop", guard=row_pred)
    builder.label("done")
    builder.exit()
    return Kernel(
        name=name,
        program=builder.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


@register("spgemm1_econ")
def build_spgemm1(scale: float = 1.0) -> Benchmark:
    rows = _rows(scale, 192)
    a = power_law_csr(rows, avg_nnz=5, alpha=2.2, seed=71)
    b = power_law_csr(rows, avg_nnz=5, alpha=2.2, seed=72)
    return Benchmark(
        name="spgemm1_econ",
        category="cuSPARSE",
        description="Sparse x sparse multiply (mac_econ-like)",
        kernels=[
            spgemm_symbolic_kernel("spgemm_symbolic", a, b,
                                   rows_per_tb=rows // 4, seed=77),
            spgemm_numeric_kernel("spgemm_numeric", a, b,
                                  rows_per_tb=rows // 4, seed=73),
        ],
    )


@register("spgemm2_road")
def build_spgemm2(scale: float = 1.0) -> Benchmark:
    rows = _rows(scale, 192)
    a = road_like_csr(rows, seed=74)
    b = road_like_csr(rows, seed=75)
    return Benchmark(
        name="spgemm2_road",
        category="cuSPARSE",
        description="Sparse x sparse multiply (roadNet-like)",
        kernels=[
            spgemm_symbolic_kernel("spgemm_symbolic", a, b,
                                   rows_per_tb=rows // 4, seed=78),
            spgemm_numeric_kernel("spgemm_numeric", a, b,
                                  rows_per_tb=rows // 4, seed=76),
        ],
    )
