"""ML / robotics benchmarks (Table II, top block).

Kernel mixes follow the paper's descriptions and cuBLAS/GEMM shares:
GEMM-class kernels are flagged ``is_gemm`` so the harness models the
CUTLASS-specialized baseline on them, while the gather/streaming side
kernels are where WASP finds new pipeline parallelism.
"""

from __future__ import annotations

from repro.workloads.base import Benchmark
from repro.workloads.kernels import (
    ell_graph_kernel,
    gather_kernel,
    stencil_kernel,
    streaming_kernel,
    tile_gemm_kernel,
)
from repro.workloads.registry import register


def _n(scale: float, base: int, quantum: int = 128) -> int:
    """Scale a per-TB element count, keeping warp-multiple alignment."""
    return max(quantum, int(base * scale) // quantum * quantum)


@register("3d_unet")
def build_3d_unet(scale: float = 1.0) -> Benchmark:
    """Dense volumetric segmentation: conv-as-GEMM + trilinear gathers."""
    return Benchmark(
        name="3d_unet",
        category="ML/Robotics",
        description="Dense Volumetric Segmentation",
        kernels=[
            tile_gemm_kernel(
                "conv_gemm", k_tiles=max(4, int(8 * scale)), tile_elems=512,
                hmma_per_tile=12, num_tbs=2, seed=40,
            ),
            gather_kernel(
                "upsample_gather", elems_per_tb=_n(scale, 2048),
                table_words=1 << 13, hot_fraction=0.6, fp_ops=3,
                num_tbs=4, seed=41,
            ),
            streaming_kernel(
                "instance_norm", elems_per_tb=_n(scale, 2048),
                num_inputs=2, fp_ops=4, num_tbs=4, seed=42,
            ),
        ],
    )


@register("bert")
def build_bert(scale: float = 1.0) -> Benchmark:
    """Encoder transformer: GEMM-dominant with streaming epilogues."""
    gemm = tile_gemm_kernel(
        "qkv_gemm", k_tiles=max(5, int(10 * scale)), tile_elems=512,
        hmma_per_tile=16, num_tbs=2, seed=43,
    )
    gemm.weight = 2.0  # 56% of runtime is cuBLAS (Table II)
    return Benchmark(
        name="bert",
        category="ML/Robotics",
        description="Encoder Transformer Network",
        kernels=[
            gemm,
            streaming_kernel(
                "softmax", elems_per_tb=_n(scale, 2048), num_inputs=1,
                fp_ops=6, num_tbs=4, seed=44,
            ),
            streaming_kernel(
                "layernorm", elems_per_tb=_n(scale, 2048), num_inputs=2,
                fp_ops=3, num_tbs=4, seed=45,
            ),
        ],
    )


@register("curobo")
def build_curobo(scale: float = 1.0) -> Benchmark:
    """Kinematics for robot motion planning: gather-heavy chains."""
    return Benchmark(
        name="curobo",
        category="ML/Robotics",
        description="Kinematics for robot motion planning",
        kernels=[
            ell_graph_kernel(
                "fk_chain", frontier_per_tb=_n(scale, 384), degree=6,
                num_nodes=1 << 12, fp_ops=4, reduce_min=False,
                num_tbs=4, seed=46,
            ),
            gather_kernel(
                "collision_spheres", elems_per_tb=_n(scale, 1536),
                table_words=1 << 12, hot_fraction=0.5, fp_ops=5,
                num_tbs=4, seed=47,
            ),
        ],
    )


@register("dlrm")
def build_dlrm(scale: float = 1.0) -> Benchmark:
    """Recommendation model: embedding gathers + MLP GEMMs."""
    gemm = tile_gemm_kernel(
        "mlp_gemm", k_tiles=max(4, int(8 * scale)), tile_elems=512,
        hmma_per_tile=16, num_tbs=2, seed=48,
    )
    gemm.weight = 2.0
    return Benchmark(
        name="dlrm",
        category="ML/Robotics",
        description="Deep learning recommendation model",
        kernels=[
            gather_kernel(
                "embedding_lookup", elems_per_tb=_n(scale, 2048),
                table_words=1 << 15, hot_fraction=0.2, fp_ops=1,
                num_tbs=4, seed=49,
            ),
            gemm,
            streaming_kernel(
                "interaction", elems_per_tb=_n(scale, 2048),
                num_inputs=2, fp_ops=2, num_tbs=4, seed=50,
            ),
        ],
    )


@register("gpt2")
def build_gpt2(scale: float = 1.0) -> Benchmark:
    """Decoder transformer: smaller GEMM share, KV-cache gathers."""
    return Benchmark(
        name="gpt2",
        category="ML/Robotics",
        description="Generative Pre-trained Transformer",
        kernels=[
            tile_gemm_kernel(
                "attn_gemm", k_tiles=max(3, int(6 * scale)), tile_elems=512,
                hmma_per_tile=12, num_tbs=2, seed=51,
            ),
            gather_kernel(
                "kv_cache_gather", elems_per_tb=_n(scale, 2048),
                table_words=1 << 14, hot_fraction=0.4, fp_ops=2,
                num_tbs=4, seed=52,
            ),
            streaming_kernel(
                "gelu", elems_per_tb=_n(scale, 2560), num_inputs=1,
                fp_ops=5, num_tbs=4, seed=53,
            ),
        ],
    )


@register("pointnet")
def build_pointnet(scale: float = 1.0) -> Benchmark:
    """Point-set learning: use-once gathers + streaming aggregation.

    The Figure 3 benchmark: alternating gather and compute phases that
    the baseline cannot overlap.
    """
    return Benchmark(
        name="pointnet",
        category="ML/Robotics",
        description="Deep learning point set segmentation",
        kernels=[
            gather_kernel(
                "ball_query_gather", elems_per_tb=_n(scale, 3072),
                table_words=1 << 13, hot_fraction=0.3, fp_ops=8,
                num_tbs=4, seed=54,
            ),
        ],
    )


@register("rnnt")
def build_rnnt(scale: float = 1.0) -> Benchmark:
    """Recurrent transducer: latency-sensitive streaming recurrences."""
    return Benchmark(
        name="rnnt",
        category="ML/Robotics",
        description="Recurrent neural network",
        kernels=[
            streaming_kernel(
                "lstm_gates", elems_per_tb=_n(scale, 1024), num_inputs=2,
                fp_ops=8, num_warps=2, num_tbs=4, seed=55,
            ),
            gather_kernel(
                "joint_gather", elems_per_tb=_n(scale, 1536),
                table_words=1 << 13, hot_fraction=0.5, fp_ops=3,
                num_warps=4, num_tbs=4, seed=56,
            ),
            stencil_kernel(
                "pred_window", elems_per_tb=_n(scale, 1024),
                offsets=(-2, -1, 0), fp_ops=4, num_warps=2, num_tbs=2,
                seed=57,
            ),
        ],
    )
