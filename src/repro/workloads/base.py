"""Benchmark and kernel descriptors."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.fexec.launch import LaunchConfig
from repro.fexec.memory_image import MemoryImage
from repro.isa.program import Program


@dataclass
class Kernel:
    """One kernel of a benchmark.

    Attributes:
        name: Kernel name, unique within the benchmark.
        program: The original (unspecialized) program.
        image_factory: Builds a fresh memory image with the kernel's
            inputs (runs mutate memory, so every simulation gets its own).
        launch: Launch configuration for the original program.
        weight: Relative share of benchmark runtime (launch count);
            used to aggregate kernel times into an application time.
        is_gemm: GEMM/cuBLAS-class kernel.  The paper's baseline models
            CUTLASS warp specialization on these (tile-pipelined with
            idealized warp mapping), so the harness compiles them with
            the tile path even in the BASELINE configuration.
    """

    name: str
    program: Program
    image_factory: Callable[[], MemoryImage]
    launch: LaunchConfig
    weight: float = 1.0
    is_gemm: bool = False

    def content_digest(self) -> str:
        """Stable content hash of everything trace generation depends on.

        Combines the program's canonical encoding, the launch geometry
        and the initial memory image, so structurally identical kernels
        hash identically across objects and processes.  Programs and
        image factories are treated as immutable once the kernel is
        built (the compiler clones before transforming), so the digest
        is memoized per instance.
        """
        cached = self.__dict__.get("_content_digest")
        if cached is None:
            h = hashlib.sha256()
            h.update(self.program.canonical_encoding().encode("utf-8"))
            h.update(
                f"|launch:{self.launch.num_warps}:{self.launch.warp_width}"
                f":{self.launch.num_thread_blocks}".encode("utf-8")
            )
            h.update(f"|image:{self.image_factory().content_digest()}"
                     .encode("utf-8"))
            cached = h.hexdigest()
            self.__dict__["_content_digest"] = cached
        return cached


@dataclass
class Benchmark:
    """A Table-II benchmark: a weighted set of kernels."""

    name: str
    category: str
    description: str
    kernels: list[Kernel] = field(default_factory=list)

    def kernel(self, name: str) -> Kernel:
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise KeyError(f"{self.name} has no kernel {name!r}")
