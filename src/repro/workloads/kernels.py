"""Reusable kernel templates.

Every Table-II benchmark is assembled from these memory-access
skeletons.  All templates keep branches warp-uniform (divergence is
handled with lane predication, as optimized GPU kernels do) and split
work across thread blocks via ``TB_ID``.
"""

from __future__ import annotations

import numpy as np

from repro.fexec.launch import LaunchConfig
from repro.fexec.memory_image import MemoryImage
from repro.isa.builder import ProgramBuilder
from repro.isa.operands import Register, SpecialReg
from repro.workloads.base import Kernel
from repro.workloads.sparse import CsrMatrix

WIDTH = 32


def _prologue(builder: ProgramBuilder, elems_per_tb: int):
    """Common index setup: returns (loop counter, global base, stride).

    ``global base`` is the thread's starting element index including the
    thread block offset; the loop advances by the block-stride.
    """
    lane = builder.special(SpecialReg.LANE_ID)
    wid = builder.special(SpecialReg.WARP_ID)
    nw = builder.special(SpecialReg.NUM_WARPS)
    tb = builder.special(SpecialReg.TB_ID)
    counter = builder.mov(0)
    tid = builder.imad(wid, WIDTH, lane)
    tb_off = builder.imul(tb, elems_per_tb)
    base = builder.iadd(tid, tb_off)
    stride = builder.imul(nw, WIDTH)
    return counter, base, stride


def _fp_chain(builder: ProgramBuilder, value: Register, ops: int) -> Register:
    """``ops`` FFMA instructions over ``value``.

    Short chains (ops <= 2) stay a single dependent chain; longer ones
    fan out over several live accumulators, like the register-hungry
    compute loops of real kernels — this is what skews register demand
    toward the compute pipeline stage (paper Figure 7 / Figure 16).
    """
    if ops <= 0:
        return value
    if ops <= 2:
        acc = value
        for _ in range(ops):
            acc = builder.ffma(acc, 1.0009765625, 0.25)
        return acc
    live = min(4, ops // 2)
    temps = [
        builder.ffma(value, 1.0 + (k + 1) / 1024.0, 0.125 * (k + 1))
        for k in range(live)
    ]
    for step in range(ops - live):
        idx = step % live
        builder.ffma(temps[idx], 1.0009765625, 0.25, dst=temps[idx])
    acc = temps[0]
    for temp in temps[1:]:
        acc = builder.fadd(acc, temp)
    return acc


def streaming_kernel(
    name: str,
    elems_per_tb: int = 2048,
    num_tbs: int = 4,
    num_warps: int = 4,
    num_inputs: int = 1,
    fp_ops: int = 2,
    seed: int = 0,
) -> Kernel:
    """out[i] = f(in0[i], in1[i], ...): pure use-once streaming."""
    total = elems_per_tb * num_tbs
    input_names = [f"in{k}" for k in range(num_inputs)]

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 18)
        rng = np.random.default_rng(seed)
        for array in input_names:
            img.alloc(array, total)
            img.write_array(array, rng.uniform(-1, 1, total))
        img.alloc("out", total)
        return img

    layout = image_factory()
    bases = [layout.base(a) for a in input_names]
    out_base = layout.base("out")

    b = ProgramBuilder(name)
    i, base, stride = _prologue(b, elems_per_tb)
    b.label("loop")
    pos = b.iadd(base, i)
    acc = None
    for array_base in bases:
        addr = b.iadd(pos, array_base)
        val = b.ldg(addr)
        acc = val if acc is None else b.fadd(acc, val)
    acc = _fp_chain(b, acc, fp_ops)
    out_addr = b.iadd(pos, out_base)
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, elems_per_tb)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def gather_kernel(
    name: str,
    elems_per_tb: int = 2048,
    num_tbs: int = 4,
    num_warps: int = 4,
    table_words: int = 1 << 14,
    hot_fraction: float = 0.0,
    fp_ops: int = 2,
    seed: int = 1,
) -> Kernel:
    """out[i] = f(table[idx[i]]): one-level use-once gather.

    ``hot_fraction`` of the indices land in a small cache-resident
    region (locality knob); the rest spread over the full table.
    """
    total = elems_per_tb * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 18)
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, table_words, total)
        if hot_fraction > 0:
            hot = rng.random(total) < hot_fraction
            idx[hot] = rng.integers(0, max(64, table_words // 64), hot.sum())
        img.alloc("idx", total)
        img.write_array("idx", idx)
        img.alloc("table", table_words)
        img.write_array("table", rng.uniform(-1, 1, table_words))
        img.alloc("out", total)
        return img

    layout = image_factory()
    idx_base = layout.base("idx")
    table_base = layout.base("table")
    out_base = layout.base("out")

    b = ProgramBuilder(name)
    i, base, stride = _prologue(b, elems_per_tb)
    b.label("loop")
    pos = b.iadd(base, i)
    idx_addr = b.iadd(pos, idx_base)
    index = b.ldg(idx_addr)
    data_addr = b.iadd(index, table_base)
    value = b.ldg(data_addr)
    acc = _fp_chain(b, value, fp_ops)
    out_addr = b.iadd(pos, out_base)
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, elems_per_tb)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def ell_graph_kernel(
    name: str,
    frontier_per_tb: int = 512,
    num_tbs: int = 4,
    num_warps: int = 4,
    degree: int = 8,
    num_nodes: int = 1 << 13,
    fp_ops: int = 0,
    reduce_min: bool = True,
    seed: int = 2,
) -> Kernel:
    """Two-level gather over padded (ELL) adjacency: the bfs/mst/sp shape.

    For each frontier entry: load the node id, walk its ``degree``
    neighbour slots, load each neighbour's value, and reduce (min for
    BFS-style relaxation, sum otherwise) into an output per entry.
    Three levels of memory indirection → a deep WASP pipeline.
    """
    total_frontier = frontier_per_tb * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("frontier", total_frontier)
        img.write_array(
            "frontier", rng.integers(0, num_nodes, total_frontier)
        )
        img.alloc("adj", num_nodes * degree)
        img.write_array(
            "adj", rng.integers(0, num_nodes, num_nodes * degree)
        )
        img.alloc("dist", num_nodes)
        img.write_array("dist", rng.uniform(0, 100, num_nodes))
        img.alloc("out", total_frontier)
        return img

    layout = image_factory()
    frontier_base = layout.base("frontier")
    adj_base = layout.base("adj")
    dist_base = layout.base("dist")
    out_base = layout.base("out")

    b = ProgramBuilder(name)
    i, base, stride = _prologue(b, frontier_per_tb)
    b.label("outer")
    pos = b.iadd(base, i)
    faddr = b.iadd(pos, frontier_base)
    node = b.ldg(faddr)
    row = b.imad(node, degree, adj_base)
    acc = b.mov(1.0e9 if reduce_min else 0.0)
    j = b.mov(0)
    b.label("inner")
    nb_addr = b.iadd(row, j)
    neighbour = b.ldg(nb_addr)
    dist_addr = b.iadd(neighbour, dist_base)
    dist = b.ldg(dist_addr)
    dist = _fp_chain(b, dist, fp_ops)
    if reduce_min:
        b.min_(acc, dist, dst=acc)
    else:
        b.fadd(acc, dist, dst=acc)
    b.iadd(j, 1, dst=j)
    inner_pred = b.isetp("lt", j, degree)
    b.bra("inner", guard=inner_pred)
    b.label("outer_tail")
    out_addr = b.iadd(pos, out_base)
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    outer_pred = b.isetp("lt", i, frontier_per_tb)
    b.bra("outer", guard=outer_pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def csr_spmv_kernel(
    name: str,
    matrix: CsrMatrix,
    rows_per_tb: int = 128,
    num_tbs: int = 4,
    num_warps: int = 4,
    seed: int = 3,
) -> Kernel:
    """CSR-vector SpMV: one row per warp, lanes strided over the row.

    The row extents come from ``row_ptr`` loads that feed the inner-loop
    trip count, so they are control-skeleton loads replicated into every
    pipeline stage — the realistic cost of decoupling sparse kernels.
    """
    if rows_per_tb * num_tbs > matrix.num_rows:
        raise ValueError(
            f"{name}: matrix has {matrix.num_rows} rows but the launch "
            f"covers {rows_per_tb * num_tbs}"
        )

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("row_ptr", matrix.num_rows + 1)
        img.write_array("row_ptr", matrix.row_ptr)
        # Pad nnz arrays by a warp so tail lanes read in-bounds (their
        # contributions are predicated off).
        img.alloc("cols", matrix.nnz + WIDTH)
        img.write_array("cols", matrix.col_idx)
        img.alloc("vals", matrix.nnz + WIDTH)
        img.write_array("vals", matrix.values)
        img.alloc("x", matrix.num_cols)
        img.write_array("x", rng.uniform(-1, 1, matrix.num_cols))
        img.alloc("y", matrix.num_rows)
        return img

    layout = image_factory()
    rp, cols, vals = (
        layout.base("row_ptr"), layout.base("cols"), layout.base("vals")
    )
    xb, yb = layout.base("x"), layout.base("y")

    b = ProgramBuilder(name)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    tb = b.special(SpecialReg.TB_ID)
    row = b.mov(wid)
    tb_row = b.imul(tb, rows_per_tb)
    b.iadd(row, tb_row, dst=row)
    warps_stride = b.mov(nw)
    row_limit = b.iadd(tb_row, rows_per_tb)
    b.label("row_loop")
    rp_addr = b.iadd(row, rp)
    start = b.ldg(rp_addr)
    rp_addr2 = b.iadd(rp_addr, 1)
    end = b.ldg(rp_addr2)
    acc = b.mov(0.0)
    jbase = b.mov(start)  # warp-uniform chunk cursor
    b.label("nnz_loop")
    j = b.iadd(jbase, lane)
    active = b.isetp("lt", j, end)  # per-lane tail mask
    col_addr = b.iadd(j, cols)
    col = b.ldg(col_addr)
    val_addr = b.iadd(j, vals)
    val = b.ldg(val_addr)
    x_addr = b.iadd(col, xb)
    x = b.ldg(x_addr)
    contrib = b.fmul(val, x)
    masked = b.sel(active, contrib, 0.0)
    b.fadd(acc, masked, dst=acc)
    b.iadd(jbase, WIDTH, dst=jbase)
    more = b.isetp("lt", jbase, end)  # uniform: both operands uniform
    b.bra("nnz_loop", guard=more)
    b.label("row_tail")
    total = b.warp_sum(acc)
    y_addr = b.iadd(row, yb)
    b.stg(y_addr, total)
    b.iadd(row, warps_stride, dst=row)
    row_pred = b.isetp("lt", row, row_limit)
    b.bra("row_loop", guard=row_pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def csr_spmm_kernel(
    name: str,
    matrix: CsrMatrix,
    rows_per_tb: int = 64,
    num_tbs: int = 4,
    num_warps: int = 4,
    seed: int = 6,
) -> Kernel:
    """CSR SpMM (C = A @ B, B dense with WIDTH columns): one row per warp.

    Lanes cover B's columns, so every sparse entry triggers a dependent
    coalesced load of one B row — the serialized col->B chain that makes
    the baseline latency-bound and gives WASP its largest sparse wins
    (spmm2_web in the paper).
    """
    if rows_per_tb * num_tbs > matrix.num_rows:
        raise ValueError(
            f"{name}: matrix has {matrix.num_rows} rows but the launch "
            f"covers {rows_per_tb * num_tbs}"
        )
    row_lengths = matrix.row_ptr[1:] - matrix.row_ptr[:-1]
    if row_lengths.min() < 1:
        raise ValueError(f"{name}: SpMM kernel requires >= 1 nnz per row")

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 20)
        rng = np.random.default_rng(seed)
        img.alloc("row_ptr", matrix.num_rows + 1)
        img.write_array("row_ptr", matrix.row_ptr)
        img.alloc("cols", matrix.nnz + WIDTH)
        img.write_array("cols", matrix.col_idx)
        img.alloc("vals", matrix.nnz + WIDTH)
        img.write_array("vals", matrix.values)
        img.alloc("bdense", matrix.num_cols * WIDTH)
        img.write_array(
            "bdense", rng.uniform(-1, 1, matrix.num_cols * WIDTH)
        )
        img.alloc("cdense", matrix.num_rows * WIDTH)
        return img

    layout = image_factory()
    rp, cols, vals = (
        layout.base("row_ptr"), layout.base("cols"), layout.base("vals")
    )
    bb, cb = layout.base("bdense"), layout.base("cdense")

    b = ProgramBuilder(name)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    nw = b.special(SpecialReg.NUM_WARPS)
    tb = b.special(SpecialReg.TB_ID)
    tb_row = b.imul(tb, rows_per_tb)
    row = b.iadd(tb_row, wid)
    row_limit = b.iadd(tb_row, rows_per_tb)
    b.label("row_loop")
    rp_addr = b.iadd(row, rp)
    start = b.ldg(rp_addr)
    rp_addr2 = b.iadd(rp_addr, 1)
    end = b.ldg(rp_addr2)
    acc = b.mov(0.0)
    j = b.mov(start)
    b.label("nnz_loop")
    col_addr = b.iadd(j, cols)
    col = b.ldg(col_addr)
    val_addr = b.iadd(j, vals)
    val = b.ldg(val_addr)
    brow = b.imad(col, WIDTH, bb)
    b_addr = b.iadd(brow, lane)
    bval = b.ldg(b_addr)
    b.ffma(val, bval, acc, dst=acc)
    b.iadd(j, 1, dst=j)
    more = b.isetp("lt", j, end)
    b.bra("nnz_loop", guard=more)
    b.label("row_tail")
    crow = b.imad(row, WIDTH, cb)
    c_addr = b.iadd(crow, lane)
    b.stg(c_addr, acc)
    b.iadd(row, nw, dst=row)
    row_pred = b.isetp("lt", row, row_limit)
    b.bra("row_loop", guard=row_pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def tile_gemm_kernel(
    name: str,
    k_tiles: int = 12,
    tile_elems: int = 512,
    num_tbs: int = 2,
    num_warps: int = 4,
    hmma_per_tile: int = 24,
    seed: int = 4,
) -> Kernel:
    """SMEM-tiled GEMM skeleton (the CUTLASS pattern, Figure 1).

    Per K-tile: cooperative LDGSTS of A and B tiles into SMEM between
    barriers, then TensorCore (HMMA) accumulation out of SMEM.  This is
    the kernel class the paper's baseline already runs warp-specialized
    (CUTLASS); WASP's tile path plus double buffering reproduces it
    automatically.
    """
    tile_per_warp = tile_elems // num_warps  # elems each warp copies
    total = tile_elems * k_tiles * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("a", total)
        img.write_array("a", rng.uniform(-1, 1, total))
        img.alloc("bmat", total)
        img.write_array("bmat", rng.uniform(-1, 1, total))
        img.alloc("c", tile_elems * num_tbs)
        return img

    layout = image_factory()
    a_base, b_base, c_base = (
        layout.base("a"), layout.base("bmat"), layout.base("c")
    )

    b = ProgramBuilder(name)
    buf_a = b.alloc_smem("tile_a", tile_elems)
    buf_b = b.alloc_smem("tile_b", tile_elems)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tb = b.special(SpecialReg.TB_ID)
    tid = b.imad(wid, WIDTH, lane)
    tb_off = b.imul(tb, tile_elems * k_tiles)
    acc = b.mov(0.0)
    t = b.mov(0)
    copies_per_thread = max(1, tile_per_warp // WIDTH)
    b.label("tile_loop")
    b.bar_sync("tb")
    tile_base = b.imad(t, tile_elems, tb_off)
    for copy in range(copies_per_thread):
        offset = b.iadd(tid, copy * num_warps * WIDTH)
        ga = b.iadd(tile_base, offset)
        ga2 = b.iadd(ga, a_base)
        sa = b.iadd(offset, buf_a)
        b.ldgsts(ga2, sa, buffer="tile_a")
        gb = b.iadd(ga, b_base)
        sb = b.iadd(offset, buf_b)
        b.ldgsts(gb, sb, buffer="tile_b")
    b.bar_sync("tb")
    k = b.mov(0)
    b.label("mma_loop")
    slot = b.imad(k, WIDTH, lane)
    wrapped = b.and_(slot, tile_elems - 1)
    sa_addr = b.iadd(wrapped, buf_a)
    frag_a = b.lds(sa_addr, buffer="tile_a")
    sb_addr = b.iadd(wrapped, buf_b)
    frag_b = b.lds(sb_addr, buffer="tile_b")
    b.hmma(frag_a, frag_b, acc, dst=acc)
    b.iadd(k, 1, dst=k)
    mma_pred = b.isetp("lt", k, hmma_per_tile)
    b.bra("mma_loop", guard=mma_pred)
    b.label("tile_tail")
    b.iadd(t, 1, dst=t)
    tile_pred = b.isetp("lt", t, k_tiles)
    b.bra("tile_loop", guard=tile_pred)
    b.label("epilogue")
    c_off = b.imul(tb, tile_elems)
    c_addr = b.iadd(tid, c_off)
    c_addr2 = b.iadd(c_addr, c_base)
    b.stg(c_addr2, acc)
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
        is_gemm=True,
    )


def tile_reduce_kernel(
    name: str,
    tiles: int = 12,
    tile_elems: int = 256,
    num_tbs: int = 2,
    num_warps: int = 4,
    fp_ops: int = 2,
    seed: int = 7,
) -> Kernel:
    """Non-GEMM SMEM tile pattern: staged reduction through a buffer.

    The Figure 1 pattern outside GEMM libraries: per tile, cooperatively
    stage data into SMEM between barriers, then reduce out of SMEM.
    Because it is not a GEMM, the paper's baseline does NOT run it
    through CUTLASS — this is exactly the kernel class that
    WASP_COMPILER_TILE newly transforms.
    """
    per_thread = max(1, tile_elems // (num_warps * WIDTH))
    total = tiles * tile_elems * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("a", total)
        img.write_array("a", rng.uniform(-1, 1, total))
        img.alloc("out", tile_elems * num_tbs)
        return img

    layout = image_factory()
    a_base, out_base = layout.base("a"), layout.base("out")

    b = ProgramBuilder(name)
    buf = b.alloc_smem("stage_buf", tile_elems)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tb = b.special(SpecialReg.TB_ID)
    tid = b.imad(wid, WIDTH, lane)
    tb_off = b.imul(tb, tiles * tile_elems)
    acc = b.mov(0.0)
    t = b.mov(0)
    b.label("tile_loop")
    b.bar_sync("tb")
    tile_base = b.imad(t, tile_elems, tb_off)
    for copy in range(per_thread):
        offset = b.iadd(tid, copy * num_warps * WIDTH)
        ga = b.iadd(tile_base, offset)
        ga2 = b.iadd(ga, a_base)
        sa = b.iadd(offset, buf)
        b.ldgsts(ga2, sa, buffer="stage_buf")
    b.bar_sync("tb")
    for copy in range(per_thread):
        offset = b.iadd(tid, copy * num_warps * WIDTH)
        sa = b.iadd(offset, buf)
        val = b.lds(sa, buffer="stage_buf")
        val = _fp_chain(b, val, fp_ops)
        b.fadd(acc, val, dst=acc)
    b.iadd(t, 1, dst=t)
    pred = b.isetp("lt", t, tiles)
    b.bra("tile_loop", guard=pred)
    b.label("epilogue")
    out_off = b.imul(tb, tile_elems)
    oa = b.iadd(tid, out_off)
    oa2 = b.iadd(oa, out_base)
    b.stg(oa2, acc)
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def fused_attention_kernel(
    name: str,
    kv_tiles: int = 8,
    tile_elems: int = 256,
    num_tbs: int = 2,
    num_warps: int = 2,
    score_per_tile: int = 8,
    seed: int = 8,
) -> Kernel:
    """FlashAttention-style fused attention skeleton.

    Two coupled producer→compute chains share one softmax stage: per KV
    tile the K and V tiles are cooperatively staged into SMEM between
    barriers (two LDGSTS streams, like the GEMM A/B pair), then the
    resident query fragment is scored against the K tile, scores are
    squashed into positive weights with a rational softmax surrogate
    (the ISA has FRCP but no EXP), and the weighted V tile folds into
    the running output and normalizer — the online-softmax recurrence
    that makes the whole attention a single deep pipeline.  This is the
    kernel class that motivates ring depths beyond 2: each KV tile is
    use-once, so an N-slot ring keeps N tile fetches in flight.
    """
    tile_per_warp = tile_elems // num_warps
    total = tile_elems * kv_tiles * num_tbs
    rows = tile_elems * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("q", rows)
        img.write_array("q", rng.uniform(-1, 1, rows))
        img.alloc("kmat", total)
        img.write_array("kmat", rng.uniform(-1, 1, total))
        img.alloc("vmat", total)
        img.write_array("vmat", rng.uniform(-1, 1, total))
        img.alloc("out", rows)
        return img

    layout = image_factory()
    q_base, k_base, v_base, out_base = (
        layout.base("q"), layout.base("kmat"),
        layout.base("vmat"), layout.base("out"),
    )

    b = ProgramBuilder(name)
    buf_k = b.alloc_smem("tile_k", tile_elems)
    buf_v = b.alloc_smem("tile_v", tile_elems)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tb = b.special(SpecialReg.TB_ID)
    tid = b.imad(wid, WIDTH, lane)
    tb_off = b.imul(tb, tile_elems * kv_tiles)
    q_off = b.imul(tb, tile_elems)
    q_pos = b.iadd(tid, q_off)
    q_addr = b.iadd(q_pos, q_base)
    q = b.ldg(q_addr)  # resident query fragment
    o = b.mov(0.0)  # running weighted V sum
    norm = b.mov(0.0009765625)  # running normalizer (epsilon seed)
    t = b.mov(0)
    copies_per_thread = max(1, tile_per_warp // WIDTH)
    b.label("kv_loop")
    b.bar_sync("tb")
    tile_base = b.imad(t, tile_elems, tb_off)
    for copy in range(copies_per_thread):
        offset = b.iadd(tid, copy * num_warps * WIDTH)
        ga = b.iadd(tile_base, offset)
        gk = b.iadd(ga, k_base)
        sk = b.iadd(offset, buf_k)
        b.ldgsts(gk, sk, buffer="tile_k")
        gv = b.iadd(ga, v_base)
        sv = b.iadd(offset, buf_v)
        b.ldgsts(gv, sv, buffer="tile_v")
    b.bar_sync("tb")
    j = b.mov(0)
    b.label("score_loop")
    slot = b.imad(j, WIDTH, lane)
    wrapped = b.and_(slot, tile_elems - 1)
    sk_addr = b.iadd(wrapped, buf_k)
    kfrag = b.lds(sk_addr, buffer="tile_k")
    score = b.fmul(q, kfrag)
    score_sq = b.fmul(score, score)
    denom = b.fadd(score_sq, 1.0)
    weight = b.fmul(score_sq, b.frcp(denom))  # positive, in (0, 1)
    sv_addr = b.iadd(wrapped, buf_v)
    vfrag = b.lds(sv_addr, buffer="tile_v")
    b.ffma(weight, vfrag, o, dst=o)
    b.fadd(norm, weight, dst=norm)
    b.iadd(j, 1, dst=j)
    score_pred = b.isetp("lt", j, score_per_tile)
    b.bra("score_loop", guard=score_pred)
    b.label("kv_tail")
    b.iadd(t, 1, dst=t)
    kv_pred = b.isetp("lt", t, kv_tiles)
    b.bra("kv_loop", guard=kv_pred)
    b.label("softmax_epilogue")
    b.fmul(o, b.frcp(norm), dst=o)  # shared softmax normalization
    out_addr = b.iadd(q_pos, out_base)
    b.stg(out_addr, o)
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def gemm_epilogue_kernel(
    name: str,
    k_tiles: int = 10,
    tile_elems: int = 512,
    num_tbs: int = 2,
    num_warps: int = 4,
    hmma_per_tile: int = 16,
    seed: int = 9,
) -> Kernel:
    """SMEM-tiled GEMM with a fused bias+ReLU epilogue.

    The mainloop is the CUTLASS tile pattern of
    :func:`tile_gemm_kernel`; after the last K tile the accumulator
    flows through a fused epilogue — a streaming bias gather plus a
    ReLU clamp — before the store.  The epilogue loads live outside the
    ring loop, so specialization must keep the epilogue's global
    traffic in the compute stage while the mainloop's tile fetches ride
    the circular buffer.
    """
    tile_per_warp = tile_elems // num_warps
    total = tile_elems * k_tiles * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("a", total)
        img.write_array("a", rng.uniform(-1, 1, total))
        img.alloc("bmat", total)
        img.write_array("bmat", rng.uniform(-1, 1, total))
        img.alloc("bias", tile_elems)
        img.write_array("bias", rng.uniform(-0.5, 0.5, tile_elems))
        img.alloc("c", tile_elems * num_tbs)
        return img

    layout = image_factory()
    a_base, b_base = layout.base("a"), layout.base("bmat")
    bias_base, c_base = layout.base("bias"), layout.base("c")

    b = ProgramBuilder(name)
    buf_a = b.alloc_smem("tile_a", tile_elems)
    buf_b = b.alloc_smem("tile_b", tile_elems)
    lane = b.special(SpecialReg.LANE_ID)
    wid = b.special(SpecialReg.WARP_ID)
    tb = b.special(SpecialReg.TB_ID)
    tid = b.imad(wid, WIDTH, lane)
    tb_off = b.imul(tb, tile_elems * k_tiles)
    acc = b.mov(0.0)
    t = b.mov(0)
    copies_per_thread = max(1, tile_per_warp // WIDTH)
    b.label("tile_loop")
    b.bar_sync("tb")
    tile_base = b.imad(t, tile_elems, tb_off)
    for copy in range(copies_per_thread):
        offset = b.iadd(tid, copy * num_warps * WIDTH)
        ga = b.iadd(tile_base, offset)
        ga2 = b.iadd(ga, a_base)
        sa = b.iadd(offset, buf_a)
        b.ldgsts(ga2, sa, buffer="tile_a")
        gb = b.iadd(ga, b_base)
        sb = b.iadd(offset, buf_b)
        b.ldgsts(gb, sb, buffer="tile_b")
    b.bar_sync("tb")
    k = b.mov(0)
    b.label("mma_loop")
    slot = b.imad(k, WIDTH, lane)
    wrapped = b.and_(slot, tile_elems - 1)
    sa_addr = b.iadd(wrapped, buf_a)
    frag_a = b.lds(sa_addr, buffer="tile_a")
    sb_addr = b.iadd(wrapped, buf_b)
    frag_b = b.lds(sb_addr, buffer="tile_b")
    b.hmma(frag_a, frag_b, acc, dst=acc)
    b.iadd(k, 1, dst=k)
    mma_pred = b.isetp("lt", k, hmma_per_tile)
    b.bra("mma_loop", guard=mma_pred)
    b.label("tile_tail")
    b.iadd(t, 1, dst=t)
    tile_pred = b.isetp("lt", t, k_tiles)
    b.bra("tile_loop", guard=tile_pred)
    b.label("epilogue")
    bias_addr = b.iadd(tid, bias_base)
    bias = b.ldg(bias_addr)
    b.fadd(acc, bias, dst=acc)
    b.max_(acc, 0.0, dst=acc)  # ReLU
    c_off = b.imul(tb, tile_elems)
    c_addr = b.iadd(tid, c_off)
    c_addr2 = b.iadd(c_addr, c_base)
    b.stg(c_addr2, acc)
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
        is_gemm=True,
    )


def moe_gather_scatter_kernel(
    name: str,
    tokens_per_tb: int = 1024,
    num_tbs: int = 4,
    num_warps: int = 4,
    num_experts: int = 8,
    expert_words: int = 1 << 10,
    fp_ops: int = 4,
    seed: int = 10,
) -> Kernel:
    """MoE gather-route-scatter: route lookup, expert gather, permuted store.

    Per token: load its routed expert id, gather the expert's weight
    entry (a second-level data-dependent gather into one of
    ``num_experts`` disjoint tables), run the expert FFN surrogate, and
    scatter the result to the token's permuted output slot.  Three
    levels of indirection on the read side plus a data-dependent store
    address — the deep-pipeline shape WASP extracts multiple decoupled
    load stages from.
    """
    total = tokens_per_tb * num_tbs

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 19)
        rng = np.random.default_rng(seed)
        img.alloc("route", total)
        img.write_array("route", rng.integers(0, num_experts, total))
        img.alloc("tok", total)
        img.write_array("tok", rng.uniform(-1, 1, total))
        img.alloc("weights", num_experts * expert_words)
        img.write_array(
            "weights", rng.uniform(-1, 1, num_experts * expert_words)
        )
        img.alloc("perm", total)
        img.write_array("perm", rng.permutation(total))
        img.alloc("out", total)
        return img

    layout = image_factory()
    route_base, tok_base = layout.base("route"), layout.base("tok")
    w_base, perm_base = layout.base("weights"), layout.base("perm")
    out_base = layout.base("out")

    b = ProgramBuilder(name)
    i, base, stride = _prologue(b, tokens_per_tb)
    b.label("token_loop")
    pos = b.iadd(base, i)
    route_addr = b.iadd(pos, route_base)
    expert = b.ldg(route_addr)
    tok_addr = b.iadd(pos, tok_base)
    x = b.ldg(tok_addr)
    within = b.and_(pos, expert_words - 1)
    w_idx = b.imad(expert, expert_words, within)
    w_addr = b.iadd(w_idx, w_base)
    w = b.ldg(w_addr)
    y = b.fmul(x, w)
    y = _fp_chain(b, y, fp_ops)
    perm_addr = b.iadd(pos, perm_base)
    dest = b.ldg(perm_addr)
    out_addr = b.iadd(dest, out_base)
    b.stg(out_addr, y)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, tokens_per_tb)
    b.bra("token_loop", guard=pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )


def stencil_kernel(
    name: str,
    elems_per_tb: int = 2048,
    num_tbs: int = 4,
    num_warps: int = 4,
    offsets: tuple[int, ...] = (-64, -1, 0, 1, 64),
    fp_ops: int = 1,
    seed: int = 5,
) -> Kernel:
    """Multi-point stencil: several affine streams into one update.

    The hpgmg/hpcg/snap smoothing shape: every point reads a handful of
    shifted input streams (partially cache-resident) and writes one
    output stream.
    """
    total = elems_per_tb * num_tbs
    halo = max(abs(o) for o in offsets) + 8

    def image_factory() -> MemoryImage:
        img = MemoryImage(1 << 18)
        rng = np.random.default_rng(seed)
        img.alloc("grid", total + 2 * halo)
        img.write_array("grid", rng.uniform(-1, 1, total + 2 * halo))
        img.alloc("out", total)
        return img

    layout = image_factory()
    grid_base = layout.base("grid") + halo
    out_base = layout.base("out")

    b = ProgramBuilder(name)
    i, base, stride = _prologue(b, elems_per_tb)
    b.label("loop")
    pos = b.iadd(base, i)
    centre = b.iadd(pos, grid_base)
    acc = None
    for offset in offsets:
        addr = b.iadd(centre, offset)
        val = b.ldg(addr)
        acc = val if acc is None else b.fadd(acc, val)
    acc = b.fmul(acc, 1.0 / len(offsets))
    acc = _fp_chain(b, acc, fp_ops)
    out_addr = b.iadd(pos, out_base)
    b.stg(out_addr, acc)
    b.iadd(i, stride, dst=i)
    pred = b.isetp("lt", i, elems_per_tb)
    b.bra("loop", guard=pred)
    b.label("done")
    b.exit()
    return Kernel(
        name=name,
        program=b.finish(),
        image_factory=image_factory,
        launch=LaunchConfig(
            num_warps=num_warps, warp_width=WIDTH, num_thread_blocks=num_tbs
        ),
    )
