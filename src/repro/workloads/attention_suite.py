"""Attention-class benchmarks (deep-pipeline additions).

These three workloads are the kernel classes whose headline wins come
from circular buffers deeper than 2: fused attention keeps several
use-once KV tiles in flight, GEMM-with-epilogue overlaps the fused
epilogue with the next tile's fetch, and MoE routing chains enough
gather levels that the decoupled stages only stay busy with a deep
ring.  They ride the same lint/profile/advise/corediff registry sweeps
as the Table-II set.
"""

from __future__ import annotations

from repro.workloads.base import Benchmark
from repro.workloads.kernels import (
    fused_attention_kernel,
    gather_kernel,
    gemm_epilogue_kernel,
    moe_gather_scatter_kernel,
    streaming_kernel,
)
from repro.workloads.registry import register


def _n(scale: float, base: int, quantum: int = 128) -> int:
    """Scale a per-TB element count, keeping warp-multiple alignment."""
    return max(quantum, int(base * scale) // quantum * quantum)


@register("flash_attention")
def build_flash_attention(scale: float = 1.0) -> Benchmark:
    """Fused attention: coupled K/V producer chains + a softmax stage."""
    return Benchmark(
        name="flash_attention",
        category="Attention",
        description="FlashAttention-style fused attention",
        kernels=[
            fused_attention_kernel(
                "fused_attention", kv_tiles=max(4, int(8 * scale)),
                tile_elems=256, num_tbs=2, num_warps=2,
                score_per_tile=8, seed=80,
            ),
            streaming_kernel(
                "rope_embed", elems_per_tb=_n(scale, 1536), num_inputs=2,
                fp_ops=4, num_tbs=4, seed=81,
            ),
        ],
    )


@register("gemm_epilogue")
def build_gemm_epilogue(scale: float = 1.0) -> Benchmark:
    """GEMM mainloop with a fused bias+ReLU epilogue stage."""
    gemm = gemm_epilogue_kernel(
        "gemm_bias_relu", k_tiles=max(5, int(10 * scale)), tile_elems=512,
        hmma_per_tile=16, num_tbs=2, seed=82,
    )
    gemm.weight = 2.0
    return Benchmark(
        name="gemm_epilogue",
        category="Attention",
        description="GEMM with fused bias+ReLU epilogue",
        kernels=[
            gemm,
            streaming_kernel(
                "residual_add", elems_per_tb=_n(scale, 2048), num_inputs=2,
                fp_ops=1, num_tbs=4, seed=83,
            ),
        ],
    )


@register("moe_routing")
def build_moe_routing(scale: float = 1.0) -> Benchmark:
    """MoE gather-route-scatter with expert-table indirection."""
    return Benchmark(
        name="moe_routing",
        category="Attention",
        description="Mixture-of-experts gather-route-scatter",
        kernels=[
            moe_gather_scatter_kernel(
                "moe_dispatch", tokens_per_tb=_n(scale, 1024),
                num_experts=8, expert_words=1 << 10, fp_ops=4,
                num_tbs=4, seed=84,
            ),
            gather_kernel(
                "expert_stats", elems_per_tb=_n(scale, 1536),
                table_words=1 << 12, hot_fraction=0.5, fp_ops=2,
                num_tbs=4, seed=85,
            ),
        ],
    )
