"""Benchmark registry (populated by the per-domain modules)."""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Benchmark

_BUILDERS: dict[str, Callable[[float], Benchmark]] = {}
_CACHE: dict[tuple[str, float], Benchmark] = {}


def register(name: str):
    """Decorator registering a benchmark builder under ``name``.

    Builders take a ``scale`` float (1.0 = default problem size) so the
    bench harness can run reduced-size sweeps.
    """

    def wrap(builder: Callable[[float], Benchmark]):
        _BUILDERS[name] = builder
        return builder

    return wrap


def get_benchmark(name: str, scale: float = 1.0) -> Benchmark:
    """Build (and cache) a benchmark model."""
    _load_all()
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[name](scale)
    return _CACHE[key]


def all_benchmarks() -> list[str]:
    """Names of every registered benchmark, in Table II order."""
    _load_all()
    order = [
        "3d_unet", "bert", "curobo", "dlrm", "gpt2", "pointnet", "rnnt",
        "spmv1_g3", "spmv2_web", "spmm1_g3", "spmm2_web",
        "spgemm1_econ", "spgemm2_road",
        "hpcg", "hpgmg", "lulesh", "snap",
        "lonestar_bfs", "lonestar_mst", "lonestar_sp",
        "flash_attention", "gemm_epilogue", "moe_routing",
    ]
    registered = set(_BUILDERS)
    ordered = [n for n in order if n in registered]
    ordered.extend(sorted(registered - set(order)))
    return ordered


_loaded = False


def _load_all() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    # Import for registration side effects.
    from repro.workloads import attention_suite  # noqa: F401
    from repro.workloads import graph_suite  # noqa: F401
    from repro.workloads import hpc  # noqa: F401
    from repro.workloads import ml  # noqa: F401
    from repro.workloads import sparse_suite  # noqa: F401
