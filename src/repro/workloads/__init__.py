"""Benchmark models (paper Table II).

Each benchmark is a set of kernels built in the SASS-like IR whose
memory-access skeletons match the paper's applications: streaming,
gather, two-level gather, CSR sparse kernels, SMEM-tiled GEMM and
stencils.  Synthetic sparse matrices and graphs stand in for the
SuiteSparse/Lonestar inputs (see DESIGN.md for the substitution table).
"""

from repro.workloads.base import Benchmark, Kernel
from repro.workloads.registry import all_benchmarks, get_benchmark

__all__ = ["Benchmark", "Kernel", "all_benchmarks", "get_benchmark"]
