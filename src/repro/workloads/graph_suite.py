"""Lonestar graph benchmarks (Table II): bfs, mst, sp.

All three are dominated by multi-level gathers over adjacency data with
almost no floating-point work — the paper's biggest WASP-TMA winners
(dynamic-instruction reduction plus extra memory-level parallelism).
"""

from __future__ import annotations

from repro.workloads.base import Benchmark
from repro.workloads.kernels import (
    ell_graph_kernel,
    gather_kernel,
    streaming_kernel,
)
from repro.workloads.registry import register


def _n(scale: float, base: int, quantum: int = 128) -> int:
    return max(quantum, int(base * scale) // quantum * quantum)


@register("lonestar_bfs")
def build_bfs(scale: float = 1.0) -> Benchmark:
    """Breadth-first search: frontier expansion over adjacency."""
    return Benchmark(
        name="lonestar_bfs",
        category="Graph",
        description="Breadth-first search",
        kernels=[
            ell_graph_kernel(
                "frontier_expand", frontier_per_tb=_n(scale, 512),
                degree=8, num_nodes=1 << 13, fp_ops=0, reduce_min=True,
                num_tbs=4, seed=90,
            ),
            ell_graph_kernel(
                "frontier_expand_wide", frontier_per_tb=_n(scale, 256),
                degree=16, num_nodes=1 << 13, fp_ops=0, reduce_min=True,
                num_tbs=4, seed=91,
            ),
            streaming_kernel(
                "level_update", elems_per_tb=_n(scale, 2048),
                num_inputs=1, fp_ops=0, num_tbs=4, seed=92,
            ),
        ],
    )


@register("lonestar_mst")
def build_mst(scale: float = 1.0) -> Benchmark:
    """Minimum spanning tree: component hooking + edge minimization."""
    return Benchmark(
        name="lonestar_mst",
        category="Graph",
        description="Minimum spanning tree",
        kernels=[
            ell_graph_kernel(
                "find_min_edge", frontier_per_tb=_n(scale, 384),
                degree=8, num_nodes=1 << 13, fp_ops=0, reduce_min=True,
                num_tbs=4, seed=93,
            ),
            gather_kernel(
                "component_lookup", elems_per_tb=_n(scale, 2048),
                table_words=1 << 13, hot_fraction=0.3, fp_ops=0,
                num_tbs=4, seed=94,
            ),
        ],
    )


@register("lonestar_sp")
def build_sp(scale: float = 1.0) -> Benchmark:
    """Survey propagation: message streaming over factor-graph edges."""
    return Benchmark(
        name="lonestar_sp",
        category="Graph",
        description="Survey propagation",
        kernels=[
            ell_graph_kernel(
                "message_update", frontier_per_tb=_n(scale, 512),
                degree=6, num_nodes=1 << 13, fp_ops=2, reduce_min=False,
                num_tbs=4, seed=95,
            ),
            gather_kernel(
                "clause_gather", elems_per_tb=_n(scale, 2048),
                table_words=1 << 14, hot_fraction=0.2, fp_ops=1,
                num_tbs=4, seed=96,
            ),
        ],
    )
