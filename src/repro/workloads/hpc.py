"""HPC benchmarks (Table II): hpcg, hpgmg, lulesh, snap."""

from __future__ import annotations

from repro.workloads.base import Benchmark
from repro.workloads.kernels import (
    csr_spmv_kernel,
    ell_graph_kernel,
    stencil_kernel,
    streaming_kernel,
    tile_reduce_kernel,
)
from repro.workloads.registry import register
from repro.workloads.sparse import banded_csr


def _n(scale: float, base: int, quantum: int = 128) -> int:
    return max(quantum, int(base * scale) // quantum * quantum)


@register("hpcg")
def build_hpcg(scale: float = 1.0) -> Benchmark:
    """Multigrid conjugate gradient: 27-point SpMV + vector updates."""
    rows = max(32, int(384 * scale) // 32 * 32)
    matrix = banded_csr(rows, nnz_per_row=12, bandwidth=32, seed=80)
    return Benchmark(
        name="hpcg",
        category="HPC",
        description="Multigrid conjugate gradient",
        kernels=[
            csr_spmv_kernel("spmv_27pt", matrix,
                            rows_per_tb=rows // 4, num_tbs=4, seed=81),
            streaming_kernel(
                "waxpby", elems_per_tb=_n(scale, 2048), num_inputs=2,
                fp_ops=1, num_tbs=4, seed=82,
            ),
        ],
    )


@register("hpgmg")
def build_hpgmg(scale: float = 1.0) -> Benchmark:
    """Geometric multigrid: smoother stencils at two levels + residual."""
    return Benchmark(
        name="hpgmg",
        category="HPC",
        description="Geometric multigrid linear solver",
        kernels=[
            stencil_kernel(
                "smooth_fine", elems_per_tb=_n(scale, 2048),
                offsets=(-64, -8, -1, 0, 1, 8, 64), fp_ops=2,
                num_tbs=4, seed=83,
            ),
            stencil_kernel(
                "smooth_coarse", elems_per_tb=_n(scale, 1024),
                offsets=(-32, -4, -1, 0, 1, 4, 32), fp_ops=2,
                num_warps=2, num_tbs=2, seed=84,
            ),
            streaming_kernel(
                "restrict", elems_per_tb=_n(scale, 1024), num_inputs=2,
                fp_ops=1, num_tbs=4, seed=85,
            ),
            tile_reduce_kernel(
                "residual_norm", tiles=max(4, int(10 * scale)),
                tile_elems=256, num_tbs=2, fp_ops=1, seed=97,
            ),
        ],
    )


@register("lulesh")
def build_lulesh(scale: float = 1.0) -> Benchmark:
    """Unstructured hydro: nodal gathers + FP-heavy element updates."""
    return Benchmark(
        name="lulesh",
        category="HPC",
        description="Hydrodynamics simulation",
        kernels=[
            ell_graph_kernel(
                "hourglass_gather", frontier_per_tb=_n(scale, 384),
                degree=8, num_nodes=1 << 13, fp_ops=4, reduce_min=False,
                num_tbs=4, seed=86,
            ),
            streaming_kernel(
                "eos_update", elems_per_tb=_n(scale, 1536), num_inputs=2,
                fp_ops=10, num_tbs=4, seed=87,
            ),
            tile_reduce_kernel(
                "energy_reduce", tiles=max(4, int(8 * scale)),
                tile_elems=256, num_tbs=2, fp_ops=4, seed=99,
            ),
        ],
    )


@register("snap")
def build_snap(scale: float = 1.0) -> Benchmark:
    """Discrete-ordinates particle transport: sweep streams + source."""
    return Benchmark(
        name="snap",
        category="HPC",
        description="Particle transport",
        kernels=[
            stencil_kernel(
                "sweep_flux", elems_per_tb=_n(scale, 2048),
                offsets=(-128, -1, 0), fp_ops=6, num_tbs=4, seed=88,
            ),
            streaming_kernel(
                "source_moments", elems_per_tb=_n(scale, 2048),
                num_inputs=3, fp_ops=5, num_tbs=4, seed=89,
            ),
            tile_reduce_kernel(
                "angular_reduce", tiles=max(4, int(8 * scale)),
                tile_elems=256, num_tbs=2, fp_ops=3, seed=98,
            ),
        ],
    )
