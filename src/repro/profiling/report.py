"""Render profiling data as text tables and machine-readable JSON.

This module consumes :class:`~repro.sim.results.SimResult` objects and
so must not be imported from ``repro.profiling.__init__`` (the results
module imports that package; see its docstring).  Users import it
directly: ``from repro.profiling import report``.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.reporting import format_table
from repro.profiling.stalls import (
    CAUSE_LABELS,
    TIMELINE_BUCKET,
    StallCause,
)
from repro.sim.results import SimResult


def _stage_name(stage: int) -> str:
    return f"stage {stage}"


def stall_breakdown_text(sim: SimResult, title: str = "") -> str:
    """Per-cause stall table with an accounting footer.

    The footer restates the attribution invariant — issued cycles plus
    every stall bucket equals the active warp-cycles — so a reader can
    confirm nothing went missing.
    """
    by_cause = sim.stall_by_cause()
    active = sim.active_warp_cycles
    rows = []
    for cause in CAUSE_LABELS:
        cycles = by_cause.get(cause, 0.0)
        if cycles <= 0:
            continue
        share = cycles / active if active > 0 else 0.0
        rows.append((CAUSE_LABELS[cause], f"{cycles:.0f}",
                     f"{100 * share:.1f}%"))
    issue_share = sim.issued_total / active if active > 0 else 0.0
    rows.append(("issued (not stalled)", f"{sim.issued_total}",
                 f"{100 * issue_share:.1f}%"))
    table = format_table(
        ["Where warp-cycles went", "Cycles", "Share"],
        rows,
        title=title or f"Stall breakdown: {sim.kernel_name}",
    )
    footer = (
        f"active warp-cycles: {active:.0f} "
        f"(= {sim.issued_total} issued + {sim.stall_total:.0f} stalled); "
        f"wall cycles: {sim.cycles:.0f}"
    )
    return f"{table}\n{footer}"


def stage_breakdown_text(sim: SimResult) -> str:
    """Per-pipeline-stage stall table (columns are causes)."""
    per_stage = sim.stall_by_stage()
    if not per_stage:
        return "no per-stage stalls recorded"
    causes = [c for c in CAUSE_LABELS
              if any(c in m for m in per_stage.values())]
    headers = ["Stage", "Issued"] + [c.value for c in causes]
    rows = []
    for stage in sorted(per_stage):
        issued = sim.issued_by_stage.get(stage, 0)
        row = [_stage_name(stage), issued]
        for cause in causes:
            row.append(f"{per_stage[stage].get(cause, 0.0):.0f}")
        rows.append(row)
    return format_table(headers, rows,
                        title="Stalled warp-cycles by pipeline stage")


def queue_occupancy_text(sim: SimResult) -> str:
    """Queue-channel occupancy table (needs an attached profiler)."""
    if not sim.queue_profiles:
        return ("no queue occupancy data (kernel has no queues, or "
                "profiling was off)")
    rows = []
    for prof in sim.queue_profiles:
        rows.append((
            f"tb{prof.tb_index} q{prof.queue_id}.{prof.slice_id}",
            prof.capacity,
            f"{prof.mean_depth():.2f}",
            prof.max_depth(),
            f"{100 * prof.full_fraction():.1f}%",
            f"{100 * prof.empty_fraction():.1f}%",
            prof.pushes,
            prof.pops,
        ))
    return format_table(
        ["Channel", "Cap", "Mean", "Max", "Full", "Empty",
         "Pushes", "Pops"],
        rows,
        title="Queue occupancy (time-weighted)",
    )


def profile_text(sim: SimResult, title: str = "") -> str:
    """The full text report the ``repro profile`` command prints."""
    parts = [stall_breakdown_text(sim, title=title)]
    parts.append("")
    parts.append(stage_breakdown_text(sim))
    parts.append("")
    parts.append(queue_occupancy_text(sim))
    return "\n".join(parts)


# -- machine-readable form --------------------------------------------------


def stall_json(sim: SimResult) -> dict[str, Any]:
    """Stall attribution of one simulation as plain JSON types."""
    return {
        "kernel": sim.kernel_name,
        "cycles": sim.cycles,
        "issued_total": sim.issued_total,
        "active_warp_cycles": sim.active_warp_cycles,
        "stall_total": sim.stall_total,
        "stalls_by_cause": {
            cause.value: cycles
            for cause, cycles in sorted(
                sim.stall_by_cause().items(), key=lambda kv: kv[0].value
            )
        },
        "stalls_by_stage": {
            str(stage): {c.value: cyc for c, cyc in sorted(
                causes.items(), key=lambda kv: kv[0].value)}
            for stage, causes in sorted(sim.stall_by_stage().items())
        },
    }


def queue_json(sim: SimResult) -> list[dict[str, Any]]:
    return [
        {
            "tb": prof.tb_index,
            "queue": prof.queue_id,
            "slice": prof.slice_id,
            "capacity": prof.capacity,
            "pushes": prof.pushes,
            "pops": prof.pops,
            "mean_depth": prof.mean_depth(),
            "max_depth": prof.max_depth(),
            "full_fraction": prof.full_fraction(),
            "empty_fraction": prof.empty_fraction(),
            "depth_cycles": {
                str(d): c for d, c in sorted(prof.depth_cycles.items())
            },
        }
        for prof in sim.queue_profiles
    ]


def profile_json(
    sim: SimResult,
    config_name: str = "",
    cache_stats: Any = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Complete machine-readable profile for one simulation."""
    doc: dict[str, Any] = {
        "schema": "repro-profile-v1",
        "config": config_name,
        **stall_json(sim),
        "queues": queue_json(sim),
        "timeline_bucket_cycles": TIMELINE_BUCKET,
    }
    if cache_stats is not None:
        doc["trace_cache"] = cache_stats_json(cache_stats)
    if extra:
        doc.update(extra)
    return doc


def cache_stats_json(stats: Any) -> dict[str, int]:
    """``CacheStats`` (duck-typed) as JSON; used by sweep reports too."""
    return {
        "memory_hits": stats.memory_hits,
        "disk_hits": stats.disk_hits,
        "generations": stats.generations,
        "disk_writes": stats.disk_writes,
        "lookups": stats.lookups,
    }


def sweep_stalls_json(report: Any) -> dict[str, Any]:
    """A ``SweepReport``'s aggregate stalls + cache stats as JSON.

    The cache counters aggregate correctly across pool workers: each
    worker measures its own :class:`CacheStats` delta per task and the
    parent merges them (see ``repro.experiments.parallel``).
    """
    by_cause: dict[str, float] = {}
    for (_stage, cause), cycles in report.stall_cycles.items():
        name = cause.value if isinstance(cause, StallCause) else str(cause)
        by_cause[name] = by_cause.get(name, 0.0) + cycles
    return {
        "schema": "repro-sweep-profile-v1",
        "jobs": report.jobs,
        "num_tasks": report.num_tasks,
        "wall_seconds": report.wall_seconds,
        "worker_seconds": report.worker_seconds,
        "issued_total": report.issued_total,
        "active_warp_cycles": report.active_warp_cycles,
        "stalls_by_cause": dict(sorted(by_cause.items())),
        "trace_cache": cache_stats_json(report.stats),
        "pool": report.to_json(),
    }


def sweep_stalls_text(report: Any) -> str:
    """One-line-per-cause roll-up of a sweep's stall attribution."""
    by_cause: dict[StallCause, float] = {}
    for (_stage, cause), cycles in report.stall_cycles.items():
        by_cause[cause] = by_cause.get(cause, 0.0) + cycles
    total = sum(by_cause.values())
    if total <= 0:
        return "sweep stalls: none recorded"
    parts = []
    for cause in CAUSE_LABELS:
        cycles = by_cause.get(cause, 0.0)
        if cycles > 0:
            parts.append(f"{cause.value} {100 * cycles / total:.0f}%")
    return "sweep stalls: " + ", ".join(parts)
