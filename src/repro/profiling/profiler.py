"""The pipeline profiler attached to one :class:`SMSimulator` run.

The profiler is strictly opt-in: the simulator carries ``profiler=None``
by default and every hook site is guarded by a single ``is not None``
check, so the timing model pays nothing when profiling is off.  When
attached, it collects three things:

* an **event trace** — a bounded ring buffer of issue slices, stall
  intervals and barrier arrivals, exportable as Chrome ``trace_event``
  JSON (see :mod:`repro.profiling.chrometrace`);
* **queue occupancy** — a time-weighted depth histogram and a bucketed
  depth timeline per inter-stage queue channel;
* a **memory access mix** — per-bucket L1/L2/DRAM service counts.

The ring buffer uses a ``deque(maxlen=...)``: when a run emits more
events than the capacity, the oldest are dropped (``dropped_events``
reports how many), so tracing a pathological run degrades gracefully
instead of exhausting memory.
"""

from __future__ import annotations

from collections import deque

from repro.profiling.stalls import (
    TIMELINE_BUCKET,
    QueueChannelProfile,
    StallCause,
)

DEFAULT_TRACE_CAPACITY = 262_144


class _QueueTracker:
    """Time-weighted occupancy accounting for one queue channel."""

    __slots__ = (
        "capacity", "depth", "last_time", "pushes", "pops",
        "depth_cycles", "buckets",
    )

    def __init__(self, capacity: int, start_time: float) -> None:
        self.capacity = capacity
        self.depth = 0
        self.last_time = start_time
        self.pushes = 0
        self.pops = 0
        self.depth_cycles: dict[int, float] = {}
        # bucket -> [depth*span accumulator, covered span, max depth]
        self.buckets: dict[int, list] = {}

    def account(self, now: float) -> None:
        """Charge the span since the last event at the current depth."""
        span = now - self.last_time
        if span <= 0:
            return
        self.depth_cycles[self.depth] = (
            self.depth_cycles.get(self.depth, 0.0) + span
        )
        t = self.last_time
        while t < now:
            index = int(t) // TIMELINE_BUCKET
            edge = (index + 1) * TIMELINE_BUCKET
            piece = min(now, edge) - t
            cell = self.buckets.get(index)
            if cell is None:
                cell = self.buckets[index] = [0.0, 0.0, 0]
            cell[0] += self.depth * piece
            cell[1] += piece
            if self.depth > cell[2]:
                cell[2] = self.depth
            t = min(now, edge)
        self.last_time = now


class PipelineProfiler:
    """Collects pipeline observability data for one simulation.

    Attach one instance per ``simulate_kernel`` call; instances are not
    reusable across runs (cycle time restarts at zero).
    """

    def __init__(
        self,
        trace_events: bool = True,
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        #: Simulator clock, updated by the SM core loop each iteration.
        self.now = 0.0
        self.trace_enabled = trace_events
        self.events: deque = deque(maxlen=max(1, trace_capacity))
        self.events_recorded = 0
        self.end_time = 0.0
        self._queues: dict[tuple[int, int, int], _QueueTracker] = {}
        #: bucket -> [l1 hits, l2 hits, dram accesses]
        self.mem_buckets: dict[int, list] = {}
        #: bucket -> [depth*span accumulator, samples, max depth] for
        #: the event core's wakeup heap (empty on the reference core).
        self.heap_buckets: dict[int, list] = {}
        #: (tb_index, warp_key) -> pipe stage, for trace track naming.
        self.warp_stages: dict[tuple[int, int], int] = {}

    # -- SM hooks --------------------------------------------------------

    def register_warp(
        self, tb_index: int, warp_key: int, stage: int
    ) -> None:
        self.warp_stages[(tb_index, warp_key)] = stage

    def record_issue(
        self,
        tb_index: int,
        warp_key: int,
        stage: int,
        name: str,
        ts: float,
        dur: float = 1.0,
    ) -> None:
        if not self.trace_enabled:
            return
        self.events_recorded += 1
        self.events.append(
            ("X", "issue", tb_index, warp_key, name, ts, dur, stage, None)
        )

    def record_stall(
        self,
        tb_index: int,
        warp_key: int,
        stage: int,
        cause: StallCause,
        ts: float,
        dur: float,
    ) -> None:
        if not self.trace_enabled:
            return
        self.events_recorded += 1
        self.events.append(
            (
                "X", "stall", tb_index, warp_key, cause.value,
                ts, dur, stage, cause.value,
            )
        )

    def record_barrier(
        self, tb_index: int, barrier_id: str, ts: float
    ) -> None:
        if not self.trace_enabled:
            return
        self.events_recorded += 1
        self.events.append(
            ("i", "barrier", tb_index, None, str(barrier_id), ts, 0.0,
             None, None)
        )

    # -- queue hooks -----------------------------------------------------

    def queue_event(
        self,
        tb_index: int,
        queue_id: int,
        slice_id: int,
        depth: int,
        capacity: int,
        kind: str,
    ) -> None:
        """A channel's allocated-entry count changed to ``depth``."""
        key = (tb_index, queue_id, slice_id)
        tracker = self._queues.get(key)
        if tracker is None:
            tracker = self._queues[key] = _QueueTracker(capacity, self.now)
        tracker.account(self.now)
        tracker.depth = depth
        if kind == "push":
            tracker.pushes += 1
        elif kind == "pop":
            tracker.pops += 1

    # -- memory hooks ----------------------------------------------------

    def record_mem(self, ts: float, level: int) -> None:
        """One sector serviced at ``ts`` by level 0=L1, 1=L2, 2=DRAM."""
        index = int(ts) // TIMELINE_BUCKET
        cell = self.mem_buckets.get(index)
        if cell is None:
            cell = self.mem_buckets[index] = [0, 0, 0]
        cell[level] += 1

    # -- event-core hooks ------------------------------------------------

    def record_heap_depth(self, ts: float, depth: int) -> None:
        """Sample the wakeup-heap depth at a processed cycle."""
        index = int(ts) // TIMELINE_BUCKET
        cell = self.heap_buckets.get(index)
        if cell is None:
            cell = self.heap_buckets[index] = [0.0, 0, 0]
        cell[0] += depth
        cell[1] += 1
        if depth > cell[2]:
            cell[2] = depth

    # -- finalization ----------------------------------------------------

    def finalize(self, end_time: float) -> None:
        """Close all open occupancy intervals at the end of the run."""
        self.end_time = max(self.end_time, end_time)
        for tracker in self._queues.values():
            tracker.account(end_time)

    @property
    def dropped_events(self) -> int:
        return self.events_recorded - len(self.events)

    def queue_profiles(self) -> list[QueueChannelProfile]:
        """Plain-data occupancy profiles, one per observed channel."""
        profiles = []
        for (tb, qid, slc), tracker in sorted(self._queues.items()):
            series = [
                (
                    float(index * TIMELINE_BUCKET),
                    cell[0] / cell[1] if cell[1] > 0 else 0.0,
                    cell[2],
                )
                for index, cell in sorted(tracker.buckets.items())
            ]
            profiles.append(
                QueueChannelProfile(
                    tb_index=tb,
                    queue_id=qid,
                    slice_id=slc,
                    capacity=tracker.capacity,
                    pushes=tracker.pushes,
                    pops=tracker.pops,
                    depth_cycles=dict(tracker.depth_cycles),
                    series=series,
                )
            )
        return profiles
