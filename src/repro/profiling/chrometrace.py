"""Chrome ``trace_event`` export and schema validation.

Traces are emitted in the Trace Event Format's JSON-object flavour
(``{"traceEvents": [...], "displayTimeUnit": ...}``) and load directly
in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  The
mapping from simulator concepts:

* one **process** (pid) per resident thread block — plus one synthetic
  process for the memory system and one per queue-channel group;
* one **thread** (tid) per warp, named ``warp <key> [stage S]`` so
  pipeline stages group visually;
* complete (``"X"``) slices for issue groups and stall intervals, with
  the stall cause in ``args``;
* counter (``"C"``) tracks for queue depths and the L1/L2/DRAM service
  mix per timeline bucket;
* instant (``"i"``) events for barrier arrivals.

One simulated cycle maps to one microsecond of trace time (``ts`` is
in microseconds in the format); ``displayTimeUnit`` is ``"ms"``.

Run ``python -m repro.profiling.chrometrace trace.json`` to validate a
file against the schema subset the CI smoke job checks.
"""

from __future__ import annotations

import json
from typing import Any

from repro.profiling.profiler import PipelineProfiler

_MEM_PID = 1_000_000       # synthetic process for memory counters
_SIM_PID = 1_100_000       # synthetic process for core counters
_QUEUE_TID_BASE = 100_000  # counter tids live above warp keys
_SPAN_PID_BASE = 900_000_000  # toolchain span rows live above all sims

_STAGE_COLORS = (
    "thread_state_running",
    "rail_response",
    "thread_state_iowait",
    "rail_animation",
    "thread_state_unknown",
    "rail_idle",
)


def _coalesce_issues(events: list[tuple]) -> list[tuple]:
    """Merge back-to-back issue slices of the same warp and name."""
    by_track: dict[tuple, list] = {}
    passthrough = []
    for ev in events:
        if ev[0] == "X" and ev[1] == "issue":
            by_track.setdefault((ev[2], ev[3]), []).append(ev)
        else:
            passthrough.append(ev)
    merged: list[tuple] = []
    for track_events in by_track.values():
        track_events.sort(key=lambda e: e[5])
        run: list | None = None
        for ev in track_events:
            if (
                run is not None
                and ev[4] == run[4]
                and abs(run[5] + run[6] - ev[5]) < 1e-9
            ):
                run[6] += ev[6]
                continue
            if run is not None:
                merged.append(tuple(run))
            run = list(ev)
        if run is not None:
            merged.append(tuple(run))
    return passthrough + merged


def chrome_trace_events(
    profiler: PipelineProfiler,
    pid_base: int = 0,
    label: str = "",
) -> list[dict[str, Any]]:
    """Translate one profiler's data into trace-event dictionaries.

    ``pid_base``/``label`` let several simulations (e.g. one per GPU
    configuration) share a single trace file without pid collisions.
    """
    prefix = f"{label}: " if label else ""
    out: list[dict[str, Any]] = []
    seen_pids: set[int] = set()
    seen_tids: set[tuple[int, int]] = set()

    def meta_process(pid: int, name: str) -> None:
        if pid in seen_pids:
            return
        seen_pids.add(pid)
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name},
        })

    def meta_thread(pid: int, tid: int, name: str) -> None:
        if (pid, tid) in seen_tids:
            return
        seen_tids.add((pid, tid))
        out.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name},
        })

    for (tb, warp), stage in sorted(profiler.warp_stages.items()):
        pid = pid_base + tb
        meta_process(pid, f"{prefix}thread block {tb}")
        meta_thread(pid, warp, f"warp {warp} [stage {stage}]")

    for ev in _coalesce_issues(list(profiler.events)):
        ph, cat, tb, warp, name, ts, dur, stage, cause = ev
        pid = pid_base + tb
        meta_process(pid, f"{prefix}thread block {tb}")
        if ph == "i":
            out.append({
                "name": f"barrier {name}", "ph": "i", "s": "p",
                "pid": pid, "tid": 0, "ts": ts, "cat": cat,
            })
            continue
        record: dict[str, Any] = {
            "name": name, "ph": "X", "pid": pid, "tid": warp,
            "ts": ts, "dur": dur, "cat": cat,
            "args": {"stage": stage},
        }
        if cause is not None:
            record["args"]["cause"] = cause
        elif stage is not None:
            record["cname"] = _STAGE_COLORS[stage % len(_STAGE_COLORS)]
        out.append(record)

    for profile in profiler.queue_profiles():
        pid = pid_base + profile.tb_index
        meta_process(pid, f"{prefix}thread block {profile.tb_index}")
        tid = (
            _QUEUE_TID_BASE
            + profile.queue_id * 64
            + profile.slice_id
        )
        name = f"queue {profile.queue_id}.{profile.slice_id} depth"
        meta_thread(pid, tid, name)
        for ts, mean_depth, _max_depth in profile.series:
            out.append({
                "name": name, "ph": "C", "pid": pid, "tid": tid,
                "ts": ts, "cat": "queue",
                "args": {"depth": round(mean_depth, 3)},
            })

    if profiler.mem_buckets:
        pid = pid_base + _MEM_PID
        meta_process(pid, f"{prefix}memory system")
        from repro.profiling.stalls import TIMELINE_BUCKET

        for index in sorted(profiler.mem_buckets):
            l1, l2, dram = profiler.mem_buckets[index]
            ts = float(index * TIMELINE_BUCKET)
            out.append({
                "name": "sectors serviced", "ph": "C", "pid": pid,
                "tid": 0, "ts": ts, "cat": "memory",
                "args": {"l1": l1, "l2": l2, "dram": dram},
            })
            total = l1 + l2 + dram
            out.append({
                "name": "cache hit rate", "ph": "C", "pid": pid,
                "tid": 1, "ts": ts, "cat": "memory",
                "args": {
                    "l1": round(l1 / total, 4) if total else 0.0,
                    "l1_or_l2": (
                        round((l1 + l2) / total, 4) if total else 0.0
                    ),
                },
            })

    if profiler.heap_buckets:
        pid = pid_base + _SIM_PID
        meta_process(pid, f"{prefix}event core")
        from repro.profiling.stalls import TIMELINE_BUCKET

        for index in sorted(profiler.heap_buckets):
            total, samples, peak = profiler.heap_buckets[index]
            out.append({
                "name": "wakeup heap depth", "ph": "C", "pid": pid,
                "tid": 0, "ts": float(index * TIMELINE_BUCKET),
                "cat": "simcore",
                "args": {
                    "mean": (
                        round(total / samples, 3) if samples else 0.0
                    ),
                    "max": peak,
                },
            })
    return out


def span_trace_events(recorder: Any) -> list[dict[str, Any]]:
    """Toolchain spans as one trace process row per subsystem.

    ``recorder`` is a :class:`repro.telemetry.spans.SpanRecorder`;
    wall-clock seconds map to trace microseconds, re-based to the
    earliest recorded span so the rows start at ts=0 alongside the
    simulation sections.
    """
    grouped = recorder.by_subsystem()
    if not grouped:
        return []
    t0 = min(s.start_s for spans in grouped.values() for s in spans)
    out: list[dict[str, Any]] = []
    for index, subsystem in enumerate(sorted(grouped)):
        pid = _SPAN_PID_BASE + index
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": f"toolchain: {subsystem}"},
        })
        for item in grouped[subsystem]:
            out.append({
                "name": item.name, "ph": "X", "pid": pid, "tid": 0,
                "ts": (item.start_s - t0) * 1e6,
                "dur": item.duration_s * 1e6,
                "cat": "toolchain",
                "args": {"subsystem": subsystem},
            })
    return out


def build_chrome_trace(
    sections: list[tuple[str, PipelineProfiler]],
    metadata: dict[str, Any] | None = None,
    spans: Any = None,
) -> dict[str, Any]:
    """Assemble a complete trace object from labelled profilers.

    ``spans`` (a :class:`repro.telemetry.spans.SpanRecorder`) adds the
    toolchain's compile/verify/predict rows once, above all sections.
    """
    events: list[dict[str, Any]] = []
    pid_base = 0
    for label, profiler in sections:
        events.append({
            "name": "section", "ph": "M", "pid": pid_base, "tid": 0,
            "args": {"name": label or "simulation"},
        })
        events.extend(
            chrome_trace_events(profiler, pid_base=pid_base, label=label)
        )
        pid_base += 2_000_000
    if spans is not None:
        events.extend(span_trace_events(spans))
    trace: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.profiling",
            "time_unit": "1 cycle = 1us tick",
        },
    }
    if metadata:
        trace["otherData"].update(metadata)
    return trace


def write_chrome_trace(
    path: str,
    sections: list[tuple[str, PipelineProfiler]],
    metadata: dict[str, Any] | None = None,
    spans: Any = None,
) -> dict[str, Any]:
    trace = build_chrome_trace(sections, metadata, spans=spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return trace


# -- validation (used by tests and the CI smoke job) -----------------------


def validate_chrome_trace(trace: Any) -> list[str]:
    """Check the schema subset Perfetto/chrome://tracing rely on.

    Returns a list of human-readable problems; empty means valid.
    """
    errors: list[str] = []
    if not isinstance(trace, dict):
        return ["top level must be a JSON object"]
    if trace.get("displayTimeUnit") not in ("ms", "ns"):
        errors.append("displayTimeUnit must be 'ms' or 'ns'")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    for index, ev in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid"):
            if key not in ev:
                errors.append(f"{where}: missing '{key}'")
        ph = ev.get("ph")
        if ph not in ("X", "M", "C", "i", "B", "E"):
            errors.append(f"{where}: unknown phase {ph!r}")
        if ph == "M":
            continue
        if "ts" not in ev:
            errors.append(f"{where}: missing 'ts'")
        elif not isinstance(ev["ts"], (int, float)):
            errors.append(f"{where}: 'ts' must be numeric")
        if ph == "X":
            if "tid" not in ev:
                errors.append(f"{where}: 'X' event missing 'tid'")
            if not isinstance(ev.get("dur"), (int, float)):
                errors.append(f"{where}: 'X' event needs numeric 'dur'")
        if len(errors) > 20:
            errors.append("... (truncated)")
            break
    return errors


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.profiling.chrometrace <trace.json>``"""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.profiling.chrometrace TRACE.json")
        return 2
    with open(argv[0], encoding="utf-8") as handle:
        trace = json.load(handle)
    errors = validate_chrome_trace(trace)
    if errors:
        for problem in errors:
            print(f"INVALID: {problem}")
        return 1
    events = trace["traceEvents"]
    slices = sum(1 for e in events if e.get("ph") == "X")
    print(
        f"OK: {len(events)} events ({slices} slices), "
        f"displayTimeUnit={trace['displayTimeUnit']}"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
