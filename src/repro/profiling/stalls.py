"""Stall-cause taxonomy and plain-data profile containers.

This module sits at the bottom of the dependency order: it imports
nothing from the rest of ``repro`` so that ``repro.sim.results`` (whose
containers cross process boundaries in the parallel sweep runner) can
use these types as dictionary keys and payloads.

Attribution model
-----------------
The SM core loop is event-skipping, not strictly cycle-stepped, so
stall cycles are charged as *intervals*: whenever a warp's blocking
condition changes (or it finally issues), the elapsed span since the
last accounting point is charged to the cause that held during it.
Every active warp-cycle is therefore attributed to exactly one of:

* an **issue** (the warp issued that cycle), or
* one :class:`StallCause`.

giving the invariant checked by the test suite::

    sum(stall cycles over causes) + issued_total == active warp-cycles
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Cycles per utilization/occupancy-timeline bucket (Figure 3).  Lives
#: here (rather than ``repro.sim.results``, which re-exports it) so the
#: profiler does not import the results module it feeds.
TIMELINE_BUCKET = 256


class StallCause(enum.Enum):
    """Why a warp could not issue on a cycle it was resident."""

    #: Producer blocked: the destination queue has no free entry.
    QUEUE_FULL = "queue_full"
    #: Consumer blocked: the source queue is empty or its head entry's
    #: data has not landed yet.
    QUEUE_EMPTY = "queue_empty"
    #: Waiting at a named arrive/wait barrier or a thread-block sync.
    BARRIER_WAIT = "barrier_wait"
    #: A source register's producing instruction (usually a load) has
    #: not completed: scoreboard / exposed memory latency.
    SCOREBOARD = "scoreboard"
    #: The per-warp outstanding-load (MSHR) limit is exhausted.
    MSHR = "mshr"
    #: Eligible to issue but lost issue-port arbitration to another
    #: warp on the same processing block.
    ISSUE_PORT = "issue_port"
    #: Fallback when an interval cannot be pinned to a specific cause
    #: (e.g. a warp admitted mid-cycle before its first observation).
    NO_ELIGIBLE = "no_eligible"


#: Report order and human-readable labels.
CAUSE_LABELS: dict[StallCause, str] = {
    StallCause.SCOREBOARD: "scoreboard / memory latency",
    StallCause.QUEUE_EMPTY: "queue empty (starved consumer)",
    StallCause.QUEUE_FULL: "queue full (back-pressured producer)",
    StallCause.BARRIER_WAIT: "barrier wait",
    StallCause.MSHR: "MSHR / outstanding-load limit",
    StallCause.ISSUE_PORT: "issue-port conflict",
    StallCause.NO_ELIGIBLE: "unattributed",
}


# -- stall-mix comparison ---------------------------------------------
#
# Both the simulator (``SimResult.stall_cycles``) and the static
# performance model (``DataflowWalk.stalls``) attribute time to
# ``(pipe stage, StallCause)`` keys.  These helpers give the one shared
# vocabulary for comparing the two: normalised shares, the dominant
# stage, and a distance metric used by the calibration suite.


def stall_mix(
    stalls: dict[tuple[int, StallCause], float],
) -> dict[StallCause, float]:
    """Normalised share of stalled time per cause (sums to 1)."""
    totals: dict[StallCause, float] = {}
    for (_stage, cause), cycles in stalls.items():
        totals[cause] = totals.get(cause, 0.0) + cycles
    grand = sum(totals.values())
    if grand <= 0.0:
        return {}
    return {cause: cycles / grand for cause, cycles in totals.items()}


def dominant_stage(
    stalls: dict[tuple[int, StallCause], float],
) -> int | None:
    """The pipeline stage carrying the most stalled time, if any."""
    per_stage: dict[int, float] = {}
    for (stage, _cause), cycles in stalls.items():
        per_stage[stage] = per_stage.get(stage, 0.0) + cycles
    if not per_stage:
        return None
    return max(per_stage, key=lambda s: (per_stage[s], -s))


def dominant_cause(
    stalls: dict[tuple[int, StallCause], float],
    stage: int | None = None,
) -> StallCause | None:
    """The heaviest cause overall, or within ``stage`` when given."""
    totals: dict[StallCause, float] = {}
    for (s, cause), cycles in stalls.items():
        if stage is not None and s != stage:
            continue
        totals[cause] = totals.get(cause, 0.0) + cycles
    if not totals:
        return None
    return max(totals, key=lambda c: (totals[c], c.value))


def mix_distance(
    left: dict[tuple[int, StallCause], float],
    right: dict[tuple[int, StallCause], float],
) -> float:
    """Total-variation distance between two stall mixes, in [0, 1].

    0 means identical cause shares; 1 means fully disjoint.  Stage
    structure is rolled up first: this compares *what* the kernels
    stall on, not where, so an execution-free model that cannot see
    issue arbitration still scores well when it nails the memory/queue
    split.
    """
    lmix = stall_mix(left)
    rmix = stall_mix(right)
    causes = set(lmix) | set(rmix)
    return 0.5 * sum(
        abs(lmix.get(c, 0.0) - rmix.get(c, 0.0)) for c in causes
    )


@dataclass
class QueueChannelProfile:
    """Occupancy profile of one inter-stage queue channel.

    ``depth_cycles`` is a time-weighted histogram: ``depth_cycles[d]``
    is how many cycles the channel held exactly ``d`` allocated entries
    (reserved WASP-TMA entries count as allocated).  ``series`` is the
    bucketed timeline: ``(bucket_start_cycle, mean_depth, max_depth)``
    per :data:`TIMELINE_BUCKET`-cycle bucket.
    """

    tb_index: int
    queue_id: int
    slice_id: int
    capacity: int
    pushes: int = 0
    pops: int = 0
    depth_cycles: dict[int, float] = field(default_factory=dict)
    series: list[tuple[float, float, int]] = field(default_factory=list)

    @property
    def observed_cycles(self) -> float:
        return sum(self.depth_cycles.values())

    def mean_depth(self) -> float:
        total = self.observed_cycles
        if total <= 0:
            return 0.0
        weighted = sum(d * c for d, c in self.depth_cycles.items())
        return weighted / total

    def max_depth(self) -> int:
        return max(self.depth_cycles, default=0)

    def full_fraction(self) -> float:
        """Fraction of observed time the channel sat completely full."""
        total = self.observed_cycles
        if total <= 0:
            return 0.0
        return self.depth_cycles.get(self.capacity, 0.0) / total

    def empty_fraction(self) -> float:
        total = self.observed_cycles
        if total <= 0:
            return 0.0
        return self.depth_cycles.get(0, 0.0) / total
