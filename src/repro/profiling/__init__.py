"""Pipeline observability: stall attribution, queue timelines, tracing.

Import order note: ``repro.sim.results`` imports this package for the
:class:`StallCause` taxonomy, so this ``__init__`` must only pull in
modules with no ``repro.sim`` dependencies (``stalls``, ``profiler``,
``chrometrace``).  The report renderers — which consume ``SimResult``
objects — live in :mod:`repro.profiling.report` and are imported
directly by their users (the CLI and tests).
"""

from repro.profiling.chrometrace import (
    build_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.profiling.profiler import PipelineProfiler
from repro.profiling.stalls import (
    CAUSE_LABELS,
    TIMELINE_BUCKET,
    QueueChannelProfile,
    StallCause,
)

__all__ = [
    "CAUSE_LABELS",
    "PipelineProfiler",
    "QueueChannelProfile",
    "StallCause",
    "TIMELINE_BUCKET",
    "build_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
