"""``repro bench report`` — the perf-trajectory dashboard.

Reads every committed ``BENCH_*.json`` (the perf-harness documents
under version control, e.g. ``BENCH_core.json``) plus, optionally, a
freshly measured run, and renders a per-benchmark regression table on
calibration-normalized wall-clock.  This is the human-facing view of
the same data CI's perf-gate checks mechanically.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any

from repro.experiments.reporting import format_table, geomean

__all__ = ["build_bench_report", "render_bench_report"]

REPORT_SCHEMA = "repro-bench-report-v1"


def _discover(directory: str) -> dict[str, dict[str, Any]]:
    docs: dict[str, dict[str, Any]] = {}
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        stem = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                docs[stem] = json.load(handle)
        except (OSError, ValueError):
            continue
    return docs


def build_bench_report(
    directory: str = ".",
    current: dict[str, Any] | None = None,
    baseline_name: str = "BENCH_core",
    tolerance: float = 0.2,
) -> dict[str, Any]:
    """Assemble the dashboard document.

    ``current`` is a freshly measured harness document (or None to
    report only the committed trajectory).  Deltas are computed
    against ``baseline_name`` when present, else the first committed
    file.  A benchmark regresses when its normalized time exceeds the
    baseline by more than ``tolerance``.
    """
    committed = _discover(directory)
    if baseline_name not in committed and committed:
        baseline_name = next(iter(committed))
    baseline = committed.get(baseline_name, {})
    base_bench = baseline.get("benchmarks", {})

    names: list[str] = []
    for doc in [*committed.values(),
                *([current] if current else [])]:
        for name in doc.get("benchmarks", {}):
            if name not in names:
                names.append(name)

    rows: list[dict[str, Any]] = []
    for name in names:
        row: dict[str, Any] = {"benchmark": name, "columns": {}}
        for stem, doc in committed.items():
            record = doc.get("benchmarks", {}).get(name)
            if record is not None:
                row["columns"][stem] = record.get("normalized")
        base = base_bench.get(name, {}).get("normalized")
        row["baseline"] = base
        if current is not None:
            record = current.get("benchmarks", {}).get(name)
            now = record.get("normalized") if record else None
            row["current"] = now
            if base and now is not None:
                row["delta"] = (now - base) / base
                row["status"] = (
                    "REGRESSED" if now > base * (1 + tolerance)
                    else "improved" if now < base * (1 - tolerance)
                    else "ok"
                )
            elif now is not None:
                row["status"] = "new"
            else:
                row["status"] = "removed"
        rows.append(row)

    summary: dict[str, Any] = {
        "files": sorted(committed),
        "baseline": baseline_name,
        "tolerance": tolerance,
        "regressions": [
            r["benchmark"] for r in rows
            if r.get("status") == "REGRESSED"
        ],
    }
    if current is not None:
        ratios = [
            r["current"] / r["baseline"] for r in rows
            if r.get("baseline") and r.get("current") is not None
        ]
        if ratios:
            summary["geomean_ratio"] = geomean(ratios)
    return {
        "schema": REPORT_SCHEMA,
        "rows": rows,
        "summary": summary,
    }


def _fmt_norm(value: Any) -> str:
    return f"{value:.2f}" if isinstance(value, float) else "-"


def render_bench_report(report: dict[str, Any]) -> str:
    """Fixed-width table of the trajectory document."""
    summary = report["summary"]
    files: list[str] = summary["files"]
    has_current = any("current" in r for r in report["rows"])
    headers = ["benchmark", *files]
    if has_current:
        headers += ["current", "delta", "status"]
    rows: list[list[object]] = []
    for row in report["rows"]:
        cells: list[object] = [row["benchmark"]]
        cells += [_fmt_norm(row["columns"].get(f)) for f in files]
        if has_current:
            delta = row.get("delta")
            cells += [
                _fmt_norm(row.get("current")),
                f"{delta:+.1%}" if delta is not None else "-",
                row.get("status", "-"),
            ]
        rows.append(cells)
    lines = [
        format_table(
            headers, rows,
            title="Perf trajectory (calibration-normalized wall)",
        )
    ]
    lines.append(
        f"baseline: {summary['baseline']}  "
        f"tolerance: {summary['tolerance']:.0%}"
    )
    ratio = summary.get("geomean_ratio")
    if ratio:
        lines.append(
            f"geomean current/baseline: {ratio:.3f} "
            f"({'slower' if ratio > 1 else 'faster'})"
        )
    if summary["regressions"]:
        lines.append(
            "REGRESSED: " + ", ".join(summary["regressions"])
        )
    return "\n".join(lines)
