"""Span-based wall-clock tracing for the toolchain.

A span is one timed pass — compile, verify, predict, functional
execution, simulator replay, cache I/O — attributed to a
*subsystem*.  Spans serve two consumers:

* the global :data:`~repro.telemetry.registry.TELEMETRY` registry,
  which receives a ``repro_pass_seconds`` histogram observation per
  span (``invariant=False``: wall time is machine-dependent), and
* the Chrome trace_event export, where each subsystem becomes one
  process row (``repro.profiling.chrometrace.span_trace_events``).

Recording is bounded (a ring buffer) and cheap (two
``perf_counter`` calls per span), so the recorder is always on for
the cold toolchain paths; only the registry observation is gated on
``TELEMETRY.enabled``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.telemetry.registry import SECONDS_BUCKETS, TELEMETRY

__all__ = ["SPANS", "Span", "SpanRecorder", "span"]

#: Ring-buffer capacity; long fuzz runs keep only the newest spans.
_MAX_SPANS = 4096


@dataclass(frozen=True)
class Span:
    """One completed timed region (wall-clock seconds)."""

    subsystem: str
    name: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class SpanRecorder:
    """Bounded recorder of completed spans, grouped by subsystem."""

    def __init__(self, maxlen: int = _MAX_SPANS) -> None:
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=maxlen)
        self.dropped = 0

    @contextmanager
    def span(self, subsystem: str, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.record(Span(subsystem, name, start, end))

    def record(self, item: Span) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(item)
        if TELEMETRY.enabled:
            TELEMETRY.histogram(
                "repro_pass_seconds",
                {"subsystem": item.subsystem, "pass": item.name},
                bounds=SECONDS_BUCKETS,
                help="Wall-clock time per toolchain pass",
                invariant=False,
            ).observe(item.duration_s)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def by_subsystem(self) -> dict[str, list[Span]]:
        grouped: dict[str, list[Span]] = {}
        for item in self.spans():
            grouped.setdefault(item.subsystem, []).append(item)
        return grouped


#: Process-global recorder used by the compiler/verifier/perf-model
#: entry points.  Worker processes keep their own (spans are a
#: per-process wall-clock artifact, not part of jobs-invariance).
SPANS = SpanRecorder()


def span(subsystem: str, name: str):
    """``with span("compiler", "build_pdg"): ...`` on the global
    recorder."""
    return SPANS.span(subsystem, name)
