"""Process-global metrics registry: counters, gauges, histograms.

Design constraints (DESIGN.md §7):

* **Near-zero overhead when disabled.**  The registry is off by
  default; simulator hot paths never call into it per cycle.  They
  keep raw integer attributes and *harvest* them into the registry
  once per run, guarded by :attr:`MetricsRegistry.enabled`.  Metric
  mutation itself is a plain attribute add — no allocation, no locks
  on the fast path (metric creation is locked; mutation is GIL-atomic
  enough for telemetry).
* **Mergeable.**  Worker processes snapshot their registry per task
  and ship the delta to the parent (the ``CacheStats.since`` idiom),
  so serial and ``--jobs N`` sweeps aggregate to identical invariant
  counters.
* **Fixed exponential buckets.**  Histograms share immutable bucket
  bounds so merges are element-wise adds; associativity is property
  tested.

Naming scheme: ``repro_<subsystem>_<metric>`` with Prometheus
conventions (``_total`` suffix on counters, ``_seconds`` on timing
histograms).  Metrics that are deterministic functions of the
simulated work are registered ``invariant=True``; wall-clock and
cache-locality metrics are ``invariant=False`` and excluded from the
jobs-invariance contract.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "TELEMETRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "exponential_buckets",
]

LabelsKey = tuple[tuple[str, str], ...]

#: Environment switch: set REPRO_TELEMETRY=1 to enable at import time
#: (CLI ``--metrics-out`` flags enable it programmatically).
_ENV_VAR = "REPRO_TELEMETRY"


def exponential_buckets(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` upper bounds: start, start*factor, ... (``+Inf`` is
    implicit as the overflow bucket)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: Default bounds for timing histograms: 100us .. ~400s.
SECONDS_BUCKETS = exponential_buckets(1e-4, 4.0, 12)
#: Default bounds for small integer distributions: 1 .. 1024.
DEPTH_BUCKETS = exponential_buckets(1.0, 2.0, 11)
#: Default bounds for large cycle counts: 1 .. ~16.7M.
CYCLES_BUCKETS = exponential_buckets(1.0, 4.0, 13)


def _labels_key(labels: Mapping[str, str] | None) -> LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic counter.  ``inc`` is a plain attribute add."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "invariant", "value")

    def __init__(self, name: str, labels: LabelsKey,
                 help: str = "", invariant: bool = True) -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.invariant = invariant
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def entry(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "help": self.help,
            "invariant": self.invariant,
            "value": self.value,
        }


class Gauge:
    """Point-in-time value (wall clock, utilization).  Never part of
    the jobs-invariance contract; merges take the max."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "invariant", "value")

    def __init__(self, name: str, labels: LabelsKey,
                 help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.invariant = False
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)

    def entry(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "help": self.help,
            "invariant": self.invariant,
            "value": self.value,
        }


class Histogram:
    """Fixed-exponential-bucket histogram.

    ``bounds`` are upper bounds (``le`` semantics: a value lands in
    the first bucket whose bound is >= value); the overflow (+Inf)
    bucket is ``counts[-1]``.  Merging histograms with identical
    bounds is an element-wise add, hence associative + commutative.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "invariant", "bounds",
                 "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelsKey,
                 bounds: tuple[float, ...] = SECONDS_BUCKETS,
                 help: str = "", invariant: bool = True) -> None:
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must strictly increase")
        self.name = name
        self.labels = labels
        self.help = help
        self.invariant = invariant
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, value: float, times: int) -> None:
        """Fold ``times`` identical observations in (harvest helper)."""
        if times <= 0:
            return
        self.counts[bisect_left(self.bounds, value)] += times
        self.sum += value * times
        self.count += times

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name}: bucket bounds differ"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def entry(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "help": self.help,
            "invariant": self.invariant,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


Metric = Counter | Gauge | Histogram

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


@dataclass
class MetricsSnapshot:
    """Picklable point-in-time copy of a registry's contents.

    ``entries`` maps ``(name, labels_key)`` to the metric's
    ``entry()`` dict.  Snapshots support delta (:meth:`since`) and
    accumulation (:meth:`merge`) so per-task worker deltas merge to
    the same totals regardless of scheduling.
    """

    entries: dict[tuple[str, LabelsKey], dict[str, Any]] = field(
        default_factory=dict
    )

    def since(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counter/histogram deltas vs ``before``; gauges keep their
        current value."""
        out: dict[tuple[str, LabelsKey], dict[str, Any]] = {}
        for key, entry in self.entries.items():
            prev = before.entries.get(key)
            entry = _copy_entry(entry)
            if prev is not None:
                if entry["kind"] == "counter":
                    entry["value"] -= prev["value"]
                elif entry["kind"] == "histogram":
                    entry["counts"] = [
                        c - p for c, p in
                        zip(entry["counts"], prev["counts"])
                    ]
                    entry["sum"] -= prev["sum"]
                    entry["count"] -= prev["count"]
            out[key] = entry
        return MetricsSnapshot(out)

    def merge(self, other: "MetricsSnapshot") -> None:
        for key, entry in other.entries.items():
            mine = self.entries.get(key)
            if mine is None:
                self.entries[key] = _copy_entry(entry)
                continue
            if mine["kind"] != entry["kind"]:
                raise ValueError(
                    f"metric {entry['name']}: kind conflict on merge"
                )
            if entry["kind"] == "counter":
                mine["value"] += entry["value"]
            elif entry["kind"] == "gauge":
                mine["value"] = max(mine["value"], entry["value"])
            else:
                if mine["bounds"] != entry["bounds"]:
                    raise ValueError(
                        f"metric {entry['name']}: bounds conflict"
                    )
                mine["counts"] = [
                    a + b for a, b in
                    zip(mine["counts"], entry["counts"])
                ]
                mine["sum"] += entry["sum"]
                mine["count"] += entry["count"]

    def to_list(self) -> list[dict[str, Any]]:
        """Stable-ordered entry list for the JSON document."""
        return [
            _copy_entry(self.entries[key])
            for key in sorted(self.entries)
        ]

    def invariant_counters(self) -> dict[str, float]:
        """Flat ``name{labels}`` -> value map of the jobs-invariant
        subset (counters and histogram counts, invariant only)."""
        flat: dict[str, float] = {}
        for (name, labels), entry in sorted(self.entries.items()):
            if not entry.get("invariant"):
                continue
            label_s = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{label_s}}}" if label_s else name
            if entry["kind"] == "counter":
                flat[key] = entry["value"]
            elif entry["kind"] == "histogram":
                flat[key + ":count"] = entry["count"]
                for bound, c in zip(
                    entry["bounds"] + [float("inf")], entry["counts"]
                ):
                    flat[f"{key}:le:{bound}"] = c
        return flat


def _copy_entry(entry: dict[str, Any]) -> dict[str, Any]:
    out = dict(entry)
    if "counts" in out:
        out["counts"] = list(out["counts"])
        out["bounds"] = list(out["bounds"])
    out["labels"] = dict(out["labels"])
    return out


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Creation is locked; mutation happens on the metric objects
    themselves.  When :attr:`enabled` is False the registry still
    hands out metric objects (callers on cold paths may skip the
    guard), but all harvest sites check ``enabled`` first so the
    disabled simulator pays nothing beyond its raw int counters.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelsKey], Metric] = {}
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def _get(self, cls: type, name: str,
             labels: Mapping[str, str] | None,
             **kwargs: Any) -> Any:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name}: registered as {metric.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[1], **kwargs)
                self._metrics[key] = metric
        return metric

    def counter(self, name: str,
                labels: Mapping[str, str] | None = None,
                help: str = "", invariant: bool = True) -> Counter:
        return self._get(Counter, name, labels, help=help,
                         invariant=invariant)

    def gauge(self, name: str,
              labels: Mapping[str, str] | None = None,
              help: str = "") -> Gauge:
        return self._get(Gauge, name, labels, help=help)

    def histogram(self, name: str,
                  labels: Mapping[str, str] | None = None,
                  bounds: tuple[float, ...] = SECONDS_BUCKETS,
                  help: str = "",
                  invariant: bool = True) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds,
                         help=help, invariant=invariant)

    def metrics(self) -> Iterable[Metric]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            {(m.name, m.labels): m.entry() for m in self.metrics()}
        )

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a (worker-delta) snapshot into the live metrics."""
        for (name, labels), entry in snap.entries.items():
            kind = entry["kind"]
            if kind == "counter":
                self.counter(
                    name, dict(labels), help=entry.get("help", ""),
                    invariant=entry.get("invariant", True),
                ).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(
                    name, dict(labels), help=entry.get("help", "")
                ).set_max(entry["value"])
            else:
                hist = self.histogram(
                    name, dict(labels),
                    bounds=tuple(entry["bounds"]),
                    help=entry.get("help", ""),
                    invariant=entry.get("invariant", True),
                )
                if hist.bounds != tuple(entry["bounds"]):
                    raise ValueError(
                        f"metric {name}: bounds conflict on merge"
                    )
                for i, c in enumerate(entry["counts"]):
                    hist.counts[i] += c
                hist.sum += entry["sum"]
                hist.count += entry["count"]


def _env_enabled() -> bool:
    return os.environ.get(_ENV_VAR, "").strip().lower() in (
        "1", "on", "true", "yes"
    )


#: The process-global registry.  Workers inherit the enabled flag via
#: the pool initializer (repro.experiments.parallel._worker_init).
TELEMETRY = MetricsRegistry(enabled=_env_enabled())
