"""``repro-metrics-v1`` JSON snapshot + Prometheus text exposition.

One metrics document is emitted by ``repro metrics`` and by the
``--metrics-out`` flag on ``run``/``profile``/``fuzz``/``corediff``/
``advise``.  The JSON layout is versioned (CI's metrics-smoke job
validates it with :func:`validate_metrics_document`); the Prometheus
rendering follows the text exposition format 0.0.4 so the snapshot
can be scraped or pushed as-is.

Run as a module to validate files (used by CI)::

    python -m repro.telemetry.snapshot metrics.json [metrics.prom]
"""

from __future__ import annotations

import json
import re
import sys
from typing import Any, Iterable

from repro.telemetry.registry import MetricsSnapshot
from repro.telemetry.spans import SPANS, SpanRecorder

__all__ = [
    "METRICS_SCHEMA",
    "REQUIRED_FAMILIES",
    "build_metrics_document",
    "missing_families",
    "parse_prometheus",
    "render_prometheus",
    "validate_metrics_document",
    "write_metrics_outputs",
]

METRICS_SCHEMA = "repro-metrics-v1"

#: Metric-family prefixes `repro metrics` must cover (ISSUE 7
#: acceptance): event core, caches, process pool, pass timings.
REQUIRED_FAMILIES = (
    "repro_eventcore_",
    "repro_cache_",
    "repro_pool_",
    "repro_pass_",
)

_NAME_RE = re.compile(r"^repro_[a-z][a-z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def build_metrics_document(
    snapshot: MetricsSnapshot,
    command: str = "",
    spans: SpanRecorder | None = None,
) -> dict[str, Any]:
    """The versioned JSON document for ``--metrics-out``."""
    recorder = SPANS if spans is None else spans
    items = recorder.spans()
    return {
        "schema": METRICS_SCHEMA,
        "command": command,
        "metrics": snapshot.to_list(),
        "spans": {
            "count": len(items),
            "dropped": recorder.dropped,
            "subsystems": sorted({s.subsystem for s in items}),
        },
    }


def validate_metrics_document(doc: Any) -> list[str]:
    """Schema check; returns human-readable problems (empty = ok)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, want {METRICS_SCHEMA!r}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return problems + ["metrics is not a list"]
    seen: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    for i, entry in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        name = entry.get("name", "")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            problems.append(f"{where}: bad name {name!r}")
            continue
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            problems.append(f"{name}: bad kind {kind!r}")
            continue
        labels = entry.get("labels", {})
        if not isinstance(labels, dict) or not all(
            isinstance(k, str) and _LABEL_RE.match(k)
            and isinstance(v, str) for k, v in labels.items()
        ):
            problems.append(f"{name}: bad labels {labels!r}")
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            problems.append(f"{name}: duplicate series {labels}")
        seen.add(key)
        if not isinstance(entry.get("invariant"), bool):
            problems.append(f"{name}: missing invariant flag")
        if kind in ("counter", "gauge"):
            if not isinstance(entry.get("value"), (int, float)):
                problems.append(f"{name}: non-numeric value")
        else:
            bounds = entry.get("bounds")
            counts = entry.get("counts")
            if (not isinstance(bounds, list)
                    or not isinstance(counts, list)
                    or len(counts) != len(bounds) + 1):
                problems.append(f"{name}: bounds/counts mismatch")
                continue
            if bounds != sorted(set(bounds)):
                problems.append(f"{name}: bounds not increasing")
            if entry.get("count") != sum(counts):
                problems.append(
                    f"{name}: count != sum of bucket counts"
                )
    return problems


def missing_families(
    doc: dict[str, Any],
    families: Iterable[str] = REQUIRED_FAMILIES,
) -> list[str]:
    """Required family prefixes with no metric in the document."""
    names = {
        entry.get("name", "")
        for entry in doc.get("metrics", [])
        if isinstance(entry, dict)
    }
    return [
        prefix for prefix in families
        if not any(n.startswith(prefix) for n in names)
    ]


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_labels(labels: dict[str, str],
                   extra: tuple[str, str] | None = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in pairs
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(doc: dict[str, Any]) -> str:
    """Text exposition format 0.0.4 for the JSON document."""
    by_name: dict[str, list[dict[str, Any]]] = {}
    for entry in doc.get("metrics", []):
        by_name.setdefault(entry["name"], []).append(entry)
    lines: list[str] = []
    for name in sorted(by_name):
        entries = by_name[name]
        kind = entries[0]["kind"]
        help_text = next(
            (e["help"] for e in entries if e.get("help")), ""
        )
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for entry in entries:
            labels = entry.get("labels", {})
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_format_labels(labels)} "
                    f"{_format_value(entry['value'])}"
                )
                continue
            cumulative = 0
            for bound, count in zip(
                list(entry["bounds"]) + [float("inf")],
                entry["counts"],
            ):
                cumulative += count
                le = _format_labels(
                    labels, ("le", _format_value(float(bound)))
                )
                lines.append(f"{name}_bucket{le} {cumulative}")
            suffix = _format_labels(labels)
            lines.append(
                f"{name}_sum{suffix} {_format_value(entry['sum'])}"
            )
            lines.append(f"{name}_count{suffix} {cumulative}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|Inf|NaN))$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Strict-enough parser of the exposition text.

    Returns ``{metric_name: {"kind": ..., "samples": N}}`` and raises
    :class:`ValueError` on any malformed line — CI's metrics-smoke
    job uses this as the exposition-format check.
    """
    families: dict[str, dict[str, Any]] = {}
    declared: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: bad TYPE: {raw!r}")
            declared[parts[2]] = parts[3]
            families.setdefault(
                parts[2], {"kind": parts[3], "samples": 0}
            )
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: bad sample: {raw!r}")
        labels = match.group("labels")
        if labels:
            body = labels[1:-1]
            if body and _LABEL_PAIR_RE.sub("", body).strip(", "):
                raise ValueError(
                    f"line {lineno}: bad labels: {raw!r}"
                )
        name = match.group("name")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if (name.endswith(suffix)
                    and name[: -len(suffix)] in declared):
                base = name[: -len(suffix)]
                break
        if base not in declared:
            raise ValueError(
                f"line {lineno}: sample before TYPE: {raw!r}"
            )
        families[base]["samples"] += 1
    return families


def write_metrics_outputs(
    doc: dict[str, Any],
    json_path: str | None,
    prom_path: str | None = None,
) -> None:
    if json_path:
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if prom_path:
        with open(prom_path, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(doc))


def main(argv: list[str] | None = None) -> int:
    """Validate a metrics JSON (and optionally a .prom) file."""
    args = sys.argv[1:] if argv is None else argv
    if not args:
        print("usage: python -m repro.telemetry.snapshot "
              "METRICS.json [METRICS.prom]")
        return 2
    with open(args[0], "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_metrics_document(doc)
    problems += [
        f"missing required metric family {prefix}*"
        for prefix in missing_families(doc)
    ]
    if len(args) > 1:
        with open(args[1], "r", encoding="utf-8") as handle:
            try:
                families = parse_prometheus(handle.read())
            except ValueError as exc:
                problems.append(f"prometheus: {exc}")
            else:
                print(f"prometheus: {len(families)} families parsed")
    if problems:
        for line in problems:
            print(f"INVALID: {line}")
        return 1
    print(f"{args[0]}: valid {METRICS_SCHEMA} document "
          f"({len(doc['metrics'])} series)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
