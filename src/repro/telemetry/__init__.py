"""Unified telemetry: metrics registry, toolchain spans, dashboards.

The package has three layers:

* :mod:`repro.telemetry.registry` — process-global
  :class:`MetricsRegistry` holding counters, gauges, and fixed-bucket
  exponential histograms.  Disabled by default; hot paths keep raw
  Python ints and *harvest* into the registry at end-of-run so the
  disabled cost is a handful of integer adds (see DESIGN.md §7).
* :mod:`repro.telemetry.spans` — wall-clock span recording for the
  compile → lint → predict → simulate toolchain, exportable as extra
  process rows in the Chrome trace_event document.
* :mod:`repro.telemetry.snapshot` / :mod:`repro.telemetry.trajectory`
  — the ``repro-metrics-v1`` JSON snapshot + Prometheus text
  exposition, and the ``repro bench report`` perf-trajectory
  dashboard over committed ``BENCH_*.json`` files.
"""

from repro.telemetry.registry import (
    TELEMETRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    exponential_buckets,
)
from repro.telemetry.spans import SPANS, Span, SpanRecorder, span
from repro.telemetry.snapshot import (
    METRICS_SCHEMA,
    build_metrics_document,
    render_prometheus,
    parse_prometheus,
    validate_metrics_document,
)

__all__ = [
    "TELEMETRY",
    "SPANS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "METRICS_SCHEMA",
    "Span",
    "SpanRecorder",
    "build_metrics_document",
    "exponential_buckets",
    "parse_prometheus",
    "render_prometheus",
    "span",
    "validate_metrics_document",
]
