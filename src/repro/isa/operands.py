"""Instruction operands: registers, immediates, queues, special registers.

Operands are small frozen dataclasses so they can be used as dictionary
keys (e.g., in the compiler's def-use maps) and compared structurally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Operand:
    """Marker base class for all operand kinds."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Register(Operand):
    """A virtual (pre-allocation) or physical (post-allocation) register.

    Register indices are per-thread, as in SASS: ``R0``, ``R1``, ...
    """

    index: int

    def __repr__(self) -> str:
        return f"R{self.index}"


@dataclass(frozen=True, slots=True)
class Predicate(Operand):
    """A predicate register (``P0``, ``P1``, ...)."""

    index: int

    def __repr__(self) -> str:
        return f"P{self.index}"


@dataclass(frozen=True, slots=True)
class Immediate(Operand):
    """A literal integer or float operand."""

    value: int | float

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True, slots=True)
class QueueRef(Operand):
    """A named register-file queue operand (Section III-C).

    ``queue_id`` names the queue within the thread block (queues connect a
    source stage to a destination stage and are declared in the thread
    block specification).  A queue used as a destination operand pushes
    one warp-wide entry; used as a source operand it pops one entry.
    """

    queue_id: int

    def __repr__(self) -> str:
        return f"Q{self.queue_id}"


class SpecialReg(enum.Enum):
    """Architectural special registers readable by any thread."""

    LANE_ID = "SR_LANEID"            # thread index within the warp
    WARP_ID = "SR_WARPID"            # warp index within the thread block
    TB_ID = "SR_CTAID"               # thread block index within the grid
    NUM_WARPS = "SR_NWARPS"          # warps per thread block
    PIPE_STAGE_ID = "SR_PIPESTAGE"   # WASP explicit stage naming (III-A)
    STAGE_WARP_ID = "SR_STAGEWARP"   # warp index within its pipeline stage
    NUM_STAGE_WARPS = "SR_NSTAGEWARPS"  # warps per pipeline stage


@dataclass(frozen=True, slots=True)
class SpecialRegister(Operand):
    """An operand reading one of the :class:`SpecialReg` values."""

    which: SpecialReg

    def __repr__(self) -> str:
        return self.which.value
