"""JSON encode/decode for ISA programs, instructions and operands.

The canonical text encoding (:meth:`Program.canonical_encoding`) is a
one-way content hash; this module is the *reversible* counterpart: a
plain-JSON document from which the exact program structure can be
rebuilt.  It exists so fuzz corpus entries, cached compiler outputs and
cross-process tooling can move programs around without pickling.

Round-trip contract (pinned by ``tests/test_isa_serialize.py``):

* ``decode_x(encode_x(v))`` is structurally equal to ``v`` (operands
  compare by value; instructions by everything except ``uid``, which is
  intentionally regenerated like :meth:`Instruction.clone`);
* ``encode_x(decode_x(doc)) == doc`` — encoding is idempotent, so a
  document can be re-encoded endlessly without drift (all containers
  are normalized to JSON-native types on the way out).
"""

from __future__ import annotations

from typing import Any

from repro.core.specs import NamedQueueSpec, ThreadBlockSpec
from repro.errors import IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrCategory, Opcode
from repro.isa.operands import (
    Immediate,
    Operand,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.program import Program

#: Bumped on breaking changes to the document layout.
FORMAT_VERSION = 1


def _jsonify(value: Any) -> Any:
    """Normalize to JSON-native types (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


# -- operands ---------------------------------------------------------------


def encode_operand(op: Operand | None) -> dict[str, Any] | None:
    if op is None:
        return None
    if isinstance(op, Register):
        return {"kind": "reg", "index": op.index}
    if isinstance(op, Predicate):
        return {"kind": "pred", "index": op.index}
    if isinstance(op, Immediate):
        return {"kind": "imm", "value": op.value}
    if isinstance(op, QueueRef):
        return {"kind": "queue", "queue_id": op.queue_id}
    if isinstance(op, SpecialRegister):
        return {"kind": "special", "which": op.which.name}
    raise IsaError(f"cannot encode operand {op!r}")


def decode_operand(doc: dict[str, Any] | None) -> Operand | None:
    if doc is None:
        return None
    kind = doc["kind"]
    if kind == "reg":
        return Register(int(doc["index"]))
    if kind == "pred":
        return Predicate(int(doc["index"]))
    if kind == "imm":
        value = doc["value"]
        if not isinstance(value, (int, float)):
            raise IsaError(f"immediate value {value!r} is not a number")
        return Immediate(value)
    if kind == "queue":
        return QueueRef(int(doc["queue_id"]))
    if kind == "special":
        return SpecialRegister(SpecialReg[doc["which"]])
    raise IsaError(f"unknown operand kind {kind!r}")


# -- instructions -----------------------------------------------------------


def encode_instruction(instr: Instruction) -> dict[str, Any]:
    """Everything but ``uid``, which is per-process identity."""
    doc: dict[str, Any] = {
        "opcode": instr.opcode.name,
        "dst": encode_operand(instr.dst),
        "srcs": [encode_operand(s) for s in instr.srcs],
    }
    # Optional fields appear only when set, keeping documents tight and
    # idempotence trivially visible.
    if instr.guard is not None:
        doc["guard"] = encode_operand(instr.guard)
        doc["guard_negated"] = instr.guard_negated
    if instr.target is not None:
        doc["target"] = instr.target
    if instr.barrier_id is not None:
        doc["barrier_id"] = instr.barrier_id
    if instr.attrs:
        doc["attrs"] = _jsonify(instr.attrs)
    if instr.category is not None and instr.category is not instr.info.category:
        doc["category"] = instr.category.name
    return doc


def decode_instruction(doc: dict[str, Any]) -> Instruction:
    guard = decode_operand(doc.get("guard"))
    if guard is not None and not isinstance(guard, Predicate):
        raise IsaError(f"guard must be a predicate, got {guard!r}")
    category = doc.get("category")
    return Instruction(
        opcode=Opcode[doc["opcode"]],
        dst=decode_operand(doc.get("dst")),
        srcs=[decode_operand(s) for s in doc.get("srcs", [])],
        guard=guard,
        guard_negated=bool(doc.get("guard_negated", False)),
        target=doc.get("target"),
        barrier_id=doc.get("barrier_id"),
        attrs=dict(doc.get("attrs", {})),
        category=InstrCategory[category] if category else None,
    )


# -- thread-block spec ------------------------------------------------------


def encode_tb_spec(spec: ThreadBlockSpec | None) -> dict[str, Any] | None:
    if spec is None:
        return None
    return {
        "num_stages": spec.num_stages,
        "warps_per_stage": _jsonify(spec.warps_per_stage),
        "stage_registers": list(spec.stage_registers),
        "queues": [
            {
                "queue_id": q.queue_id,
                "src_stage": q.src_stage,
                "dst_stage": q.dst_stage,
                "size": q.size,
            }
            for q in spec.queues
        ],
        "smem_words": spec.smem_words,
        "barrier_expected": dict(spec.barrier_expected),
        "barrier_initial": dict(spec.barrier_initial),
    }


def decode_tb_spec(doc: dict[str, Any] | None) -> ThreadBlockSpec | None:
    if doc is None:
        return None
    return ThreadBlockSpec(
        num_stages=int(doc["num_stages"]),
        warps_per_stage=[list(ws) for ws in doc["warps_per_stage"]],
        stage_registers=list(doc["stage_registers"]),
        queues=[
            NamedQueueSpec(
                queue_id=int(q["queue_id"]),
                src_stage=int(q["src_stage"]),
                dst_stage=int(q["dst_stage"]),
                size=int(q["size"]),
            )
            for q in doc.get("queues", [])
        ],
        smem_words=int(doc.get("smem_words", 0)),
        barrier_expected=dict(doc.get("barrier_expected", {})),
        barrier_initial=dict(doc.get("barrier_initial", {})),
    )


# -- programs ---------------------------------------------------------------


def encode_program(program: Program) -> dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "name": program.name,
        "smem_words": program.smem_words,
        "num_registers": program.num_registers,
        "smem_buffers": {
            name: list(extent)
            for name, extent in program.smem_buffers.items()
        },
        "tb_spec": encode_tb_spec(program.tb_spec),
        "blocks": [
            {
                "label": blk.label,
                "instructions": [
                    encode_instruction(i) for i in blk.instructions
                ],
            }
            for blk in program.blocks
        ],
    }


def decode_program(doc: dict[str, Any]) -> Program:
    version = doc.get("version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise IsaError(
            f"program document version {version} != {FORMAT_VERSION}"
        )
    program = Program(
        name=doc["name"],
        smem_words=int(doc.get("smem_words", 0)),
        num_registers=doc.get("num_registers"),
        tb_spec=decode_tb_spec(doc.get("tb_spec")),
        smem_buffers={
            name: (int(extent[0]), int(extent[1]))
            for name, extent in doc.get("smem_buffers", {}).items()
        },
    )
    for blk_doc in doc.get("blocks", []):
        blk = program.block(blk_doc["label"])
        for instr_doc in blk_doc.get("instructions", []):
            blk.append(decode_instruction(instr_doc))
    return program
