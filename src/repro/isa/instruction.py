"""The :class:`Instruction` record.

An instruction is a single SASS-like operation.  Instructions are mutable
(the compiler rewrites operands during extraction and register
re-allocation) but carry a stable ``uid`` so dependence graphs built over
one program revision remain meaningful while it is being transformed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import IsaError
from repro.isa.opcodes import InstrCategory, Opcode, opcode_info
from repro.isa.operands import (
    Operand,
    Predicate,
    QueueRef,
    Register,
)

_uid_counter = itertools.count()


@dataclass(eq=False)
class Instruction:
    """A single instruction.

    Attributes:
        opcode: The operation.
        dst: Destination operand (``Register``, ``Predicate``, ``QueueRef``
            or ``None`` for stores, branches and barriers).
        srcs: Source operands, in operand order.
        guard: Optional guard predicate; the instruction executes only in
            lanes where the predicate holds (branches require a uniform
            predicate).
        guard_negated: If true the guard sense is inverted (``@!P0``).
        target: Branch target label for ``BRA``.
        barrier_id: Barrier name for ``BAR.*`` instructions.
        attrs: Free-form attributes (TMA configuration, compiler notes).
        category: Dynamic-instruction category; defaults to the opcode's
            static category and is refined by the compiler's PDG analysis
            (address generation vs. compute) for the Figure 19 breakdown.
    """

    opcode: Opcode
    dst: Operand | None = None
    srcs: list[Operand] = field(default_factory=list)
    guard: Predicate | None = None
    guard_negated: bool = False
    target: str | None = None
    barrier_id: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    category: InstrCategory | None = None
    uid: int = field(default_factory=lambda: next(_uid_counter))

    def __post_init__(self) -> None:
        info = opcode_info(self.opcode)
        if info.is_branch and self.opcode is Opcode.BRA and not self.target:
            raise IsaError("BRA requires a target label")
        if info.is_barrier and not self.barrier_id:
            raise IsaError(f"{self.opcode.value} requires a barrier_id")
        if self.category is None:
            self.category = info.category

    # -- structural queries -------------------------------------------------

    @property
    def info(self):
        """Static :class:`~repro.isa.opcodes.OpcodeInfo` for this opcode."""
        return opcode_info(self.opcode)

    def defined_registers(self) -> list[Register]:
        """Registers written by this instruction."""
        if isinstance(self.dst, Register):
            return [self.dst]
        return []

    def defined_predicates(self) -> list[Predicate]:
        """Predicates written by this instruction."""
        if isinstance(self.dst, Predicate):
            return [self.dst]
        return []

    def used_registers(self) -> list[Register]:
        """Registers read by this instruction (sources only)."""
        return [op for op in self.srcs if isinstance(op, Register)]

    def used_predicates(self) -> list[Predicate]:
        """Predicates read (guard plus any predicate sources)."""
        preds = [op for op in self.srcs if isinstance(op, Predicate)]
        if self.guard is not None:
            preds.append(self.guard)
        return preds

    def queue_pushes(self) -> list[QueueRef]:
        """Queues this instruction pushes into (queue destinations)."""
        if isinstance(self.dst, QueueRef):
            return [self.dst]
        return []

    def queue_pops(self) -> list[QueueRef]:
        """Queues this instruction pops from (queue sources)."""
        return [op for op in self.srcs if isinstance(op, QueueRef)]

    def replace_src(self, old: Operand, new: Operand) -> None:
        """Replace every occurrence of ``old`` in the source list."""
        self.srcs = [new if op == old else op for op in self.srcs]

    def clone(self) -> "Instruction":
        """Deep-enough copy with a fresh uid (operands are immutable)."""
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=list(self.srcs),
            guard=self.guard,
            guard_negated=self.guard_negated,
            target=self.target,
            barrier_id=self.barrier_id,
            attrs=dict(self.attrs),
            category=self.category,
        )

    # -- rendering ----------------------------------------------------------

    def __repr__(self) -> str:
        parts = []
        if self.guard is not None:
            sense = "!" if self.guard_negated else ""
            parts.append(f"@{sense}{self.guard}")
        parts.append(self.opcode.value)
        operands = []
        if self.dst is not None:
            operands.append(repr(self.dst))
        operands.extend(repr(s) for s in self.srcs)
        if self.target:
            operands.append(self.target)
        if self.barrier_id:
            operands.append(f"bar[{self.barrier_id}]")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
