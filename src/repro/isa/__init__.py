"""SASS-like instruction set architecture for the WASP reproduction.

This package defines the static program representation the WASP compiler
operates on: a small SASS-flavoured ISA (LDG/STG/LDS/STS/LDGSTS, integer
and floating-point ALU ops, TensorCore HMMA, barriers, branches, queue
operands, and TMA configuration instructions), basic blocks, and programs
with an explicit control-flow graph.

The representation intentionally mirrors the structures the paper's
binary recompiler sees in NVIDIA SASS (Section IV): virtual registers,
predicate-guarded branches, named barriers, and shared-memory addressing.
"""

from repro.isa.opcodes import (
    FuncUnit,
    InstrCategory,
    Opcode,
    OpcodeInfo,
    opcode_info,
)
from repro.isa.operands import (
    Immediate,
    Operand,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.instruction import Instruction
from repro.isa.program import BasicBlock, Program
from repro.isa.builder import ProgramBuilder

__all__ = [
    "BasicBlock",
    "FuncUnit",
    "Immediate",
    "InstrCategory",
    "Instruction",
    "Opcode",
    "OpcodeInfo",
    "Operand",
    "Predicate",
    "Program",
    "ProgramBuilder",
    "QueueRef",
    "Register",
    "SpecialReg",
    "SpecialRegister",
    "opcode_info",
]
