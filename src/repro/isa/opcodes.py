"""Opcode definitions and static metadata.

Each opcode carries the metadata the rest of the system needs:

* which functional unit executes it (for issue modelling),
* its default dynamic-instruction category (for the Figure 19 breakdown),
* whether it reads or writes memory, and at which level,
* whether it is a control-flow or synchronization instruction.

Latency and throughput numbers live in :mod:`repro.sim.config` because
they are properties of a GPU configuration, not of the ISA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FuncUnit(enum.Enum):
    """Functional unit class an instruction issues to."""

    INT = "int"          # integer ALU / address arithmetic
    FP = "fp"            # FP32 pipeline
    TENSOR = "tensor"    # TensorCore (HMMA)
    LSU_GLOBAL = "lsu_global"  # global memory load/store
    LSU_SHARED = "lsu_shared"  # shared memory load/store
    SYNC = "sync"        # barriers
    BRANCH = "branch"    # control flow
    TMA = "tma"          # offload engine configuration
    NOP = "nop"


class InstrCategory(enum.Enum):
    """Dynamic-instruction categories used by the Figure 19 breakdown."""

    MEMORY = "memory"
    ADDRGEN = "addrgen"
    CONTROL = "control"
    COMPUTE = "compute"
    SYNC = "sync"
    TMA = "tma"
    QUEUE = "queue"


class Opcode(enum.Enum):
    """SASS-flavoured opcodes supported by the reproduction."""

    # Integer / address arithmetic
    IADD = "IADD"
    IMUL = "IMUL"
    IDIV = "IDIV"      # integer (floor) division
    IMAD = "IMAD"      # d = a * b + c
    SHL = "SHL"
    SHR = "SHR"
    AND = "AND"
    OR = "OR"
    MIN = "MIN"
    MAX = "MAX"
    MOV = "MOV"
    ISETP = "ISETP"    # predicate set from integer compare
    SEL = "SEL"        # d = p ? a : b

    # Floating point
    FADD = "FADD"
    FMUL = "FMUL"
    FFMA = "FFMA"      # d = a * b + c
    FRCP = "FRCP"      # reciprocal (models special-function unit work)

    # TensorCore: warp-collective matrix multiply-accumulate
    HMMA = "HMMA"
    # Warp-collective reduction (butterfly shuffle sum broadcast)
    REDUX = "REDUX"

    # Memory
    LDG = "LDG"        # load global
    STG = "STG"        # store global
    LDS = "LDS"        # load shared
    STS = "STS"        # store shared
    LDGSTS = "LDGSTS"  # fused global->shared copy (Ampere cp.async)

    # Control flow
    BRA = "BRA"        # (predicated) branch to label
    EXIT = "EXIT"
    NOP = "NOP"

    # Synchronization
    BAR_SYNC = "BAR.SYNC"      # thread-block barrier
    BAR_ARRIVE = "BAR.ARRIVE"  # split arrive/wait barrier: arrive side
    BAR_WAIT = "BAR.WAIT"      # split arrive/wait barrier: wait side

    # TMA / WASP-TMA offload configuration (Section III-E)
    TMA_TILE = "TMA.TILE"        # coarse global->SMEM tile transfer
    TMA_STREAM = "TMA.STREAM"    # fine-grained global->RFQ stream
    TMA_GATHER = "TMA.GATHER"    # two-phase gather -> SMEM or RFQ


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of an opcode."""

    opcode: Opcode
    unit: FuncUnit
    category: InstrCategory
    reads_global: bool = False
    writes_global: bool = False
    reads_shared: bool = False
    writes_shared: bool = False
    is_branch: bool = False
    is_barrier: bool = False
    num_srcs: int | None = None  # None means variable


_INT = FuncUnit.INT
_FP = FuncUnit.FP

_OPCODE_TABLE: dict[Opcode, OpcodeInfo] = {
    Opcode.IADD: OpcodeInfo(Opcode.IADD, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.IMUL: OpcodeInfo(Opcode.IMUL, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.IDIV: OpcodeInfo(Opcode.IDIV, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.IMAD: OpcodeInfo(Opcode.IMAD, _INT, InstrCategory.COMPUTE, num_srcs=3),
    Opcode.SHL: OpcodeInfo(Opcode.SHL, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.SHR: OpcodeInfo(Opcode.SHR, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.AND: OpcodeInfo(Opcode.AND, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.OR: OpcodeInfo(Opcode.OR, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.MIN: OpcodeInfo(Opcode.MIN, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.MAX: OpcodeInfo(Opcode.MAX, _INT, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.MOV: OpcodeInfo(Opcode.MOV, _INT, InstrCategory.COMPUTE, num_srcs=1),
    Opcode.ISETP: OpcodeInfo(Opcode.ISETP, _INT, InstrCategory.CONTROL, num_srcs=2),
    Opcode.SEL: OpcodeInfo(Opcode.SEL, _INT, InstrCategory.COMPUTE, num_srcs=3),
    Opcode.FADD: OpcodeInfo(Opcode.FADD, _FP, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.FMUL: OpcodeInfo(Opcode.FMUL, _FP, InstrCategory.COMPUTE, num_srcs=2),
    Opcode.FFMA: OpcodeInfo(Opcode.FFMA, _FP, InstrCategory.COMPUTE, num_srcs=3),
    Opcode.FRCP: OpcodeInfo(Opcode.FRCP, _FP, InstrCategory.COMPUTE, num_srcs=1),
    Opcode.HMMA: OpcodeInfo(
        Opcode.HMMA, FuncUnit.TENSOR, InstrCategory.COMPUTE, num_srcs=3
    ),
    Opcode.REDUX: OpcodeInfo(
        Opcode.REDUX, _FP, InstrCategory.COMPUTE, num_srcs=1
    ),
    Opcode.LDG: OpcodeInfo(
        Opcode.LDG, FuncUnit.LSU_GLOBAL, InstrCategory.MEMORY,
        reads_global=True, num_srcs=1,
    ),
    Opcode.STG: OpcodeInfo(
        Opcode.STG, FuncUnit.LSU_GLOBAL, InstrCategory.MEMORY,
        writes_global=True, num_srcs=2,
    ),
    Opcode.LDS: OpcodeInfo(
        Opcode.LDS, FuncUnit.LSU_SHARED, InstrCategory.MEMORY,
        reads_shared=True, num_srcs=1,
    ),
    Opcode.STS: OpcodeInfo(
        Opcode.STS, FuncUnit.LSU_SHARED, InstrCategory.MEMORY,
        writes_shared=True, num_srcs=2,
    ),
    Opcode.LDGSTS: OpcodeInfo(
        Opcode.LDGSTS, FuncUnit.LSU_GLOBAL, InstrCategory.MEMORY,
        reads_global=True, writes_shared=True, num_srcs=2,
    ),
    Opcode.BRA: OpcodeInfo(
        Opcode.BRA, FuncUnit.BRANCH, InstrCategory.CONTROL, is_branch=True,
        num_srcs=0,
    ),
    Opcode.EXIT: OpcodeInfo(
        Opcode.EXIT, FuncUnit.BRANCH, InstrCategory.CONTROL, is_branch=True,
        num_srcs=0,
    ),
    Opcode.NOP: OpcodeInfo(Opcode.NOP, FuncUnit.NOP, InstrCategory.COMPUTE, num_srcs=0),
    Opcode.BAR_SYNC: OpcodeInfo(
        Opcode.BAR_SYNC, FuncUnit.SYNC, InstrCategory.SYNC, is_barrier=True,
        num_srcs=0,
    ),
    Opcode.BAR_ARRIVE: OpcodeInfo(
        Opcode.BAR_ARRIVE, FuncUnit.SYNC, InstrCategory.SYNC, is_barrier=True,
        num_srcs=0,
    ),
    Opcode.BAR_WAIT: OpcodeInfo(
        Opcode.BAR_WAIT, FuncUnit.SYNC, InstrCategory.SYNC, is_barrier=True,
        num_srcs=0,
    ),
    Opcode.TMA_TILE: OpcodeInfo(
        Opcode.TMA_TILE, FuncUnit.TMA, InstrCategory.TMA,
        reads_global=True, writes_shared=True,
    ),
    Opcode.TMA_STREAM: OpcodeInfo(
        Opcode.TMA_STREAM, FuncUnit.TMA, InstrCategory.TMA, reads_global=True,
    ),
    Opcode.TMA_GATHER: OpcodeInfo(
        Opcode.TMA_GATHER, FuncUnit.TMA, InstrCategory.TMA, reads_global=True,
    ),
}

_GLOBAL_LOADS = frozenset({Opcode.LDG, Opcode.LDGSTS})


def opcode_info(opcode: Opcode) -> OpcodeInfo:
    """Return the static :class:`OpcodeInfo` for ``opcode``."""
    return _OPCODE_TABLE[opcode]


def is_global_load(opcode: Opcode) -> bool:
    """True for instructions that read global memory via the LSU."""
    return opcode in _GLOBAL_LOADS
