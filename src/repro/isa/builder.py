"""A small DSL for writing kernels in the SASS-like IR.

The builder keeps a current block, allocates virtual registers and
predicates, and offers one method per opcode.  Workload models use it to
express their kernels compactly::

    b = ProgramBuilder("vector_copy", smem_words=0)
    i = b.reg()           # loop counter
    ...
    b.label("loop")
    addr = b.iadd(base, offset)
    val = b.ldg(addr)
    b.stg(out_addr, val)
    ...
    b.exit()
    program = b.finish()
"""

from __future__ import annotations

from typing import Any

from repro.errors import IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import (
    Immediate,
    Operand,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.program import BasicBlock, Program


def _as_operand(value: Operand | int | float) -> Operand:
    if isinstance(value, Operand):
        return value
    return Immediate(value)


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str, smem_words: int = 0) -> None:
        self._program = Program(name, smem_words=smem_words)
        self._current: BasicBlock | None = None
        self._next_reg = 0
        self._next_pred = 0
        self._finished = False

    def alloc_smem(self, name: str, words: int) -> int:
        """Reserve a named shared-memory buffer; returns its base word.

        The buffer name can be passed to :meth:`lds`/:meth:`sts`/
        :meth:`ldgsts` so the compiler's double-buffering transformation
        knows which accesses target which allocation (the analogue of
        nvdisasm SMEM allocation info).
        """
        if name in self._program.smem_buffers:
            raise IsaError(f"smem buffer {name!r} already allocated")
        base = self._program.smem_words
        self._program.smem_buffers[name] = (base, words)
        self._program.smem_words = base + words
        return base

    # -- resource allocation --------------------------------------------

    def reg(self) -> Register:
        """Allocate a fresh virtual register."""
        reg = Register(self._next_reg)
        self._next_reg += 1
        return reg

    def pred(self) -> Predicate:
        """Allocate a fresh predicate register."""
        pred = Predicate(self._next_pred)
        self._next_pred += 1
        return pred

    def special(self, which: SpecialReg) -> SpecialRegister:
        return SpecialRegister(which)

    # -- block management -------------------------------------------------

    def label(self, name: str) -> BasicBlock:
        """Start a new basic block named ``name``."""
        self._current = self._program.block(name)
        return self._current

    def _emit(self, instr: Instruction) -> Instruction:
        if self._finished:
            raise IsaError("builder already finished")
        if self._current is None:
            self._current = self._program.block("entry")
        self._current.append(instr)
        return instr

    # -- generic emission ---------------------------------------------------

    def emit(
        self,
        opcode: Opcode,
        dst: Operand | None = None,
        srcs: list[Operand | int | float] | None = None,
        **kwargs: Any,
    ) -> Instruction:
        operands = [_as_operand(s) for s in (srcs or [])]
        return self._emit(Instruction(opcode, dst=dst, srcs=operands, **kwargs))

    def _binop(self, opcode: Opcode, a, b, dst: Register | None = None) -> Register:
        dst = dst or self.reg()
        self.emit(opcode, dst=dst, srcs=[a, b])
        return dst

    # -- integer ops ----------------------------------------------------

    def iadd(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.IADD, a, b, dst)

    def imul(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.IMUL, a, b, dst)

    def idiv(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.IDIV, a, b, dst)

    def imad(self, a, b, c, dst: Register | None = None) -> Register:
        dst = dst or self.reg()
        self.emit(Opcode.IMAD, dst=dst, srcs=[a, b, c])
        return dst

    def shl(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.SHL, a, b, dst)

    def shr(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.SHR, a, b, dst)

    def and_(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.AND, a, b, dst)

    def min_(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.MIN, a, b, dst)

    def max_(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.MAX, a, b, dst)

    def mov(self, src, dst: Register | None = None) -> Register:
        dst = dst or self.reg()
        self.emit(Opcode.MOV, dst=dst, srcs=[src])
        return dst

    def sel(self, pred: Predicate, a, b, dst: Register | None = None) -> Register:
        dst = dst or self.reg()
        self.emit(Opcode.SEL, dst=dst, srcs=[pred, a, b])
        return dst

    def isetp(self, op: str, a, b, dst: Predicate | None = None) -> Predicate:
        """Set predicate from integer comparison; ``op`` in {lt,le,gt,ge,eq,ne}."""
        if op not in {"lt", "le", "gt", "ge", "eq", "ne"}:
            raise IsaError(f"bad comparison {op!r}")
        dst = dst or self.pred()
        self.emit(Opcode.ISETP, dst=dst, srcs=[a, b], attrs={"cmp": op})
        return dst

    # -- floating point ---------------------------------------------------

    def fadd(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.FADD, a, b, dst)

    def fmul(self, a, b, dst: Register | None = None) -> Register:
        return self._binop(Opcode.FMUL, a, b, dst)

    def ffma(self, a, b, c, dst: Register | None = None) -> Register:
        dst = dst or self.reg()
        self.emit(Opcode.FFMA, dst=dst, srcs=[a, b, c])
        return dst

    def frcp(self, a, dst: Register | None = None) -> Register:
        dst = dst or self.reg()
        self.emit(Opcode.FRCP, dst=dst, srcs=[a])
        return dst

    def warp_sum(self, a, dst: Register | None = None) -> Register:
        """Warp-collective sum of ``a`` across lanes, broadcast to all."""
        dst = dst or self.reg()
        self.emit(Opcode.REDUX, dst=dst, srcs=[a])
        return dst

    def hmma(self, a, b, c, dst: Register | None = None) -> Register:
        """Warp-collective MMA: d = a*b + c over register fragments."""
        dst = dst or self.reg()
        self.emit(Opcode.HMMA, dst=dst, srcs=[a, b, c])
        return dst

    # -- memory -----------------------------------------------------------

    def ldg(self, addr, dst: Register | QueueRef | None = None) -> Operand:
        """Load global; ``dst`` may be a queue for decoupled loads."""
        dst = dst if dst is not None else self.reg()
        self.emit(Opcode.LDG, dst=dst, srcs=[addr])
        return dst

    def stg(self, addr, value) -> Instruction:
        return self.emit(Opcode.STG, srcs=[addr, value])

    def lds(
        self, addr, dst: Register | None = None, buffer: str | None = None
    ) -> Register:
        dst = dst or self.reg()
        attrs = {"smem_buffer": buffer} if buffer else {}
        self.emit(Opcode.LDS, dst=dst, srcs=[addr], attrs=attrs)
        return dst

    def sts(self, addr, value, buffer: str | None = None) -> Instruction:
        attrs = {"smem_buffer": buffer} if buffer else {}
        return self.emit(Opcode.STS, srcs=[addr, value], attrs=attrs)

    def ldgsts(self, gaddr, saddr, buffer: str | None = None) -> Instruction:
        """Fused global->shared copy (operands: global addr, shared addr)."""
        attrs = {"smem_buffer": buffer} if buffer else {}
        return self.emit(Opcode.LDGSTS, srcs=[gaddr, saddr], attrs=attrs)

    # -- control flow -------------------------------------------------------

    def bra(
        self,
        target: str,
        guard: Predicate | None = None,
        negated: bool = False,
    ) -> Instruction:
        return self._emit(
            Instruction(
                Opcode.BRA, target=target, guard=guard, guard_negated=negated
            )
        )

    def exit(self) -> Instruction:
        return self._emit(Instruction(Opcode.EXIT))

    # -- synchronization ------------------------------------------------

    def bar_sync(self, barrier_id: str = "tb") -> Instruction:
        return self._emit(Instruction(Opcode.BAR_SYNC, barrier_id=barrier_id))

    def bar_arrive(self, barrier_id: str) -> Instruction:
        return self._emit(Instruction(Opcode.BAR_ARRIVE, barrier_id=barrier_id))

    def bar_wait(self, barrier_id: str) -> Instruction:
        return self._emit(Instruction(Opcode.BAR_WAIT, barrier_id=barrier_id))

    # -- finish -----------------------------------------------------------

    @property
    def program(self) -> Program:
        return self._program

    def finish(self, validate: bool = True) -> Program:
        """Finalize and (optionally) validate the built program."""
        self._finished = True
        if validate:
            self._program.validate()
        return self._program
