"""Programs and basic blocks with an explicit control-flow graph.

A :class:`Program` is an ordered sequence of :class:`BasicBlock` objects.
Control transfers are explicit: a block ends either with a terminator
(``BRA``/``EXIT``) or falls through to the next block in order.  A
predicated ``BRA`` has two successors (target and fall-through).

Programs also carry the kernel-level metadata the simulator needs to
launch them: register usage, shared-memory footprint, and — for
warp-specialized programs — the WASP thread-block specification.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import ValidationError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Operand, Predicate, Register


@dataclass
class BasicBlock:
    """A labelled straight-line sequence of instructions."""

    label: str
    instructions: list[Instruction] = field(default_factory=list)

    def append(self, instr: Instruction) -> Instruction:
        self.instructions.append(instr)
        return instr

    @property
    def terminator(self) -> Instruction | None:
        """The trailing BRA/EXIT if present."""
        if self.instructions and self.instructions[-1].info.is_branch:
            return self.instructions[-1]
        return None

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.instructions)} instrs)"


@dataclass
class Program:
    """A kernel program: an ordered list of basic blocks forming a CFG.

    Attributes:
        name: Kernel name (used in reports).
        blocks: Blocks in layout order; the first block is the entry.
        smem_words: Statically allocated shared memory, in 4-byte words.
        num_registers: Architectural registers per thread.  ``None`` means
            "derive from the program" (max register index + 1).
        tb_spec: WASP thread-block specification, attached by the
            compiler.  ``None`` for ordinary (non-specialized) kernels.
        smem_buffers: Named shared-memory allocations ``name -> (base,
            words)``.  This mirrors the SMEM allocation information the
            paper's compiler reads from nvdisasm and is what the double
            buffering transformation uses to resize a tile buffer.
    """

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    smem_words: int = 0
    num_registers: int | None = None
    tb_spec: object | None = None
    smem_buffers: dict[str, tuple[int, int]] = field(default_factory=dict)

    # -- construction -------------------------------------------------------

    def block(self, label: str) -> BasicBlock:
        """Append and return a new empty block labelled ``label``."""
        if any(b.label == label for b in self.blocks):
            raise ValidationError(f"duplicate block label {label!r}")
        blk = BasicBlock(label)
        self.blocks.append(blk)
        return blk

    # -- queries ------------------------------------------------------------

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValidationError(f"program {self.name!r} has no blocks")
        return self.blocks[0]

    def block_map(self) -> dict[str, BasicBlock]:
        return {b.label: b for b in self.blocks}

    def find_block(self, label: str) -> BasicBlock:
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise ValidationError(f"no block labelled {label!r}")

    def instructions(self) -> Iterator[Instruction]:
        """Iterate all instructions in layout order."""
        for blk in self.blocks:
            yield from blk.instructions

    def successors(self, block: BasicBlock) -> list[str]:
        """Successor labels of ``block`` in the CFG."""
        succs: list[str] = []
        term = block.terminator
        idx = self.blocks.index(block)
        if term is None:
            if idx + 1 < len(self.blocks):
                succs.append(self.blocks[idx + 1].label)
        elif term.opcode is Opcode.BRA:
            succs.append(term.target)  # type: ignore[arg-type]
            if term.guard is not None and idx + 1 < len(self.blocks):
                succs.append(self.blocks[idx + 1].label)
        # EXIT: no successors
        return succs

    def predecessors(self) -> dict[str, list[str]]:
        """Map from block label to the labels of its CFG predecessors."""
        preds: dict[str, list[str]] = {b.label: [] for b in self.blocks}
        for blk in self.blocks:
            for succ in self.successors(blk):
                preds[succ].append(blk.label)
        return preds

    def containing_block(self, instr: Instruction) -> BasicBlock:
        """The basic block holding ``instr`` (matched by uid)."""
        for blk in self.blocks:
            for candidate in blk.instructions:
                if candidate.uid == instr.uid:
                    return blk
        raise ValidationError(f"instruction {instr!r} not found in program")

    def max_register_index(self) -> int:
        """Highest register index referenced, or -1 if none."""
        top = -1
        for instr in self.instructions():
            for reg in instr.used_registers() + instr.defined_registers():
                top = max(top, reg.index)
        return top

    def register_count(self) -> int:
        """Architectural registers per thread for occupancy accounting."""
        if self.num_registers is not None:
            return self.num_registers
        return self.max_register_index() + 1

    def max_predicate_index(self) -> int:
        top = -1
        for instr in self.instructions():
            preds = instr.used_predicates() + instr.defined_predicates()
            for pred in preds:
                top = max(top, pred.index)
        return top

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Structural checks; raises :class:`ValidationError` on failure.

        Checks: non-empty, unique labels, branch targets resolve, every
        path ends in EXIT, barriers have ids, terminators only at block
        ends.  The raised error carries the full structural
        :class:`~repro.analysis.Diagnostic` list (same rule ids the
        static verifier reports).
        """
        diags = self.structural_diagnostics()
        if diags:
            raise ValidationError(
                f"program {self.name!r} failed structural validation: "
                + "; ".join(d.message for d in diags),
                diagnostics=diags,
            )

    def structural_diagnostics(self) -> list:
        """CFG-structure findings as ``WASP-C*`` diagnostics.

        Returns an empty list for a well-formed program.  Rule ids:
        C001 empty, C002 duplicate labels, C003 branch mid-block,
        C004 unresolved branch target, C005 falls off the end / dangling
        successor.  One spec-shape rule rides along: R007, a
        circular-buffer ring whose initial empty-barrier credit admits
        more generations than the ring has slots.
        """
        from repro.analysis.diagnostics import Diagnostic

        diags: list[Diagnostic] = []
        if not self.blocks:
            return [Diagnostic(
                rule="WASP-C001",
                message="program has no basic blocks",
                kernel=self.name,
            )]
        labels = [b.label for b in self.blocks]
        seen: set[str] = set()
        for label in labels:
            if label in seen:
                diags.append(Diagnostic(
                    rule="WASP-C002",
                    message=f"duplicate block label {label!r}",
                    kernel=self.name,
                    block=label,
                ))
            seen.add(label)
        label_set = set(labels)
        for blk in self.blocks:
            for pos, instr in enumerate(blk.instructions):
                if instr.info.is_branch and pos != len(blk.instructions) - 1:
                    diags.append(Diagnostic(
                        rule="WASP-C003",
                        message=f"branch mid-block in {blk.label!r}",
                        kernel=self.name,
                        block=blk.label,
                        instruction=repr(instr),
                    ))
                if (instr.opcode is Opcode.BRA
                        and instr.target not in label_set):
                    diags.append(Diagnostic(
                        rule="WASP-C004",
                        message=f"unresolved branch target "
                                f"{instr.target!r} in {blk.label!r}",
                        kernel=self.name,
                        block=blk.label,
                        instruction=repr(instr),
                    ))
        if not any(d.rule in ("WASP-C002", "WASP-C004") for d in diags):
            diags.extend(self._exit_diagnostics())
        diags.extend(self._ring_credit_diagnostics())
        return diags

    #: Ring slot phase letters, mirroring the compiler's
    #: ``PHASE_SUFFIXES`` (kept literal here: the ISA layer must not
    #: import the compiler).
    _RING_PHASE_LETTERS = "ABCDEFGH"

    def _ring_credit_diagnostics(self) -> list:
        """WASP-R007: a ring credited deeper than its slot count.

        The N-slot circular-buffer protocol grants at most N−1
        generations of explicit initial empty credit (the N-th comes
        from the consumer's first spurious arrival), so any spec whose
        per-ring credit generations *exceed* the slot count admits more
        buffers in flight than exist — the producer would overwrite a
        slot no consumer has released.
        """
        from repro.analysis.diagnostics import Diagnostic

        expected = getattr(self.tb_spec, "barrier_expected", None)
        initial = getattr(self.tb_spec, "barrier_initial", None)
        if not expected or not initial:
            return []
        rings: dict[str, set[str]] = {}
        for name in expected:
            if not name.endswith("_empty"):
                continue
            key = name[: -len("_empty")]
            if (len(key) >= 3 and key[-2] == "_"
                    and key[-1] in self._RING_PHASE_LETTERS):
                rings.setdefault(key[:-2], set()).add(name)
        diags: list[Diagnostic] = []
        for base in sorted(rings):
            slots = rings[base]
            generations = 0
            for name in slots:
                arrivals = expected.get(name, 0)
                if arrivals > 0:
                    generations += initial.get(name, 0) // arrivals
            if generations > len(slots):
                diags.append(Diagnostic(
                    rule="WASP-R007",
                    message=(
                        f"ring {base!r} grants {generations} initial "
                        f"empty-credit generations across "
                        f"{len(slots)} slots"
                    ),
                    kernel=self.name,
                    hint="initial credit must not exceed the slot "
                         "count the buffering pass allocated",
                ))
        return diags

    def _exit_diagnostics(self) -> list:
        from repro.analysis.diagnostics import Diagnostic

        diags: list[Diagnostic] = []
        block_by_label = self.block_map()
        for blk in self.blocks:
            succs = self.successors(blk)
            term = blk.terminator
            if not succs and (term is None or term.opcode is not Opcode.EXIT):
                diags.append(Diagnostic(
                    rule="WASP-C005",
                    message=f"block {blk.label!r} falls off the end of "
                            "the program without EXIT",
                    kernel=self.name,
                    block=blk.label,
                    hint="append EXIT or an unconditional branch",
                ))
            for succ in succs:
                if succ not in block_by_label:
                    diags.append(Diagnostic(
                        rule="WASP-C005",
                        message=f"dangling successor {succ!r} of block "
                                f"{blk.label!r}",
                        kernel=self.name,
                        block=blk.label,
                    ))
        return diags

    # -- rendering ----------------------------------------------------------

    def to_text(self) -> str:
        """A nvdisasm-style listing of the program."""
        lines = [f"// kernel {self.name}  "
                 f"(regs={self.register_count()}, smem_words={self.smem_words})"]
        for blk in self.blocks:
            lines.append(f"{blk.label}:")
            for instr in blk.instructions:
                lines.append(f"    {instr!r}")
        return "\n".join(lines)

    # -- canonical hashing --------------------------------------------------

    def canonical_encoding(self) -> str:
        """A stable structural encoding of the program.

        Two programs that execute identically produce identical
        encodings regardless of object identity or creation order: the
        kernel *name* and instruction ``uid``\\ s are excluded, while
        every behaviour-bearing field (opcodes, operands, guards,
        branch targets, barrier ids, attrs, categories, SMEM layout,
        register counts) is included.  This is the basis of the
        content-addressed trace cache.
        """
        parts = [
            f"smem={self.smem_words}",
            f"regs={self.register_count()}",
            "buffers=" + _canon_value(sorted(self.smem_buffers.items())),
        ]
        for blk in self.blocks:
            parts.append(f"block {blk.label}:")
            for instr in blk.instructions:
                parts.append(_canon_instruction(instr))
        return "\n".join(parts)

    def canonical_digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_encoding`."""
        data = self.canonical_encoding().encode("utf-8")
        return hashlib.sha256(data).hexdigest()

    def clone(self) -> "Program":
        """Deep copy with fresh instruction uids preserved per-instruction.

        Note: clones share no mutable state with the original, but
        instruction uids are regenerated, so dependence graphs built on
        the original do not apply to the clone.
        """
        copy = Program(
            name=self.name,
            smem_words=self.smem_words,
            num_registers=self.num_registers,
            tb_spec=self.tb_spec,
            smem_buffers=dict(self.smem_buffers),
        )
        for blk in self.blocks:
            new_blk = copy.block(blk.label)
            for instr in blk.instructions:
                new_blk.append(instr.clone())
        return copy


def _canon_instruction(instr: Instruction) -> str:
    fields = [
        instr.opcode.value,
        _canon_operand(instr.dst),
        "[" + ",".join(_canon_operand(s) for s in instr.srcs) + "]",
        _canon_operand(instr.guard),
        "neg" if instr.guard_negated else "pos",
        instr.target or "-",
        instr.barrier_id or "-",
        instr.category.value if instr.category is not None else "-",
        _canon_value(sorted(instr.attrs.items())),
    ]
    return "|".join(fields)


def _canon_operand(op: Operand | None) -> str:
    if op is None:
        return "-"
    # Operand reprs are unambiguous across kinds (R0 / P0 / #v / Q0 / SR_*)
    # and distinguish int from float immediates.
    return repr(op)


def _canon_value(value: object) -> str:
    """Deterministic encoding of attr values (dicts sorted, type-tagged)."""
    if isinstance(value, dict):
        items = ",".join(
            f"{_canon_value(k)}:{_canon_value(v)}"
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canon_value(v) for v in value) + "]"
    if isinstance(value, Operand):
        return _canon_operand(value)
    return f"{type(value).__name__}:{value!r}"


def used_registers(instrs: Iterable[Instruction]) -> set[Register]:
    """All registers read or written by ``instrs``."""
    regs: set[Register] = set()
    for instr in instrs:
        regs.update(instr.used_registers())
        regs.update(instr.defined_registers())
    return regs


def used_predicates(instrs: Iterable[Instruction]) -> set[Predicate]:
    """All predicates read or written by ``instrs``."""
    preds: set[Predicate] = set()
    for instr in instrs:
        preds.update(instr.used_predicates())
        preds.update(instr.defined_predicates())
    return preds
