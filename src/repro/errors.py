"""Exception hierarchy for the WASP reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without also catching Python built-ins.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IsaError(ReproError):
    """Malformed instruction, operand, or program."""


class ValidationError(IsaError):
    """A program failed structural validation (CFG, operands, barriers).

    Carries the structural :class:`repro.analysis.Diagnostic` records
    that produced it (empty for legacy call sites raising on a single
    condition).
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class CompilerError(ReproError):
    """The WASP compiler could not transform a kernel."""


class VerificationError(CompilerError):
    """Static pipeline verification found error-severity diagnostics.

    Raised by the compiler's opt-out verification post-pass and by
    structural checks during finalization.  ``diagnostics`` holds the
    full :class:`repro.analysis.Diagnostic` list (errors and warnings)
    so callers and the ``repro lint`` CLI can render or serialize the
    findings.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class IneligibleKernelError(CompilerError):
    """The kernel violates the assumptions of warp specialization.

    Mirrors the paper's eligibility rules (Section IV-A): an LDG whose
    backslice contains SMEM loads, or an LDG with a dependence cycle on
    itself, cannot be extracted into a pipeline stage.
    """


class ExecutionError(ReproError):
    """The functional executor hit an illegal state (bad address, ...)."""


class DeadlockError(ExecutionError):
    """Cooperative execution or timing simulation made no progress.

    Raised instead of hanging when every warp is blocked on a queue or
    barrier that can never be satisfied.
    """


class SimulationError(ReproError):
    """The timing simulator was configured or driven inconsistently."""


class ResourceError(SimulationError):
    """A kernel does not fit on the SM (registers, SMEM, warp slots)."""
