"""WASP hardware area/storage overhead model (Section V-J, Table IV).

The paper's cost is dominated by metadata storage; this module computes
the same per-SM and per-GPU storage budgets from first principles so the
Table IV bench can regenerate the numbers and sensitivity tests can vary
the structural parameters.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaParameters:
    """Structural parameters of the WASP additions."""

    num_sms: int = 108
    ctas_per_sm: int = 32
    warps_per_sm: int = 64
    max_stages: int = 16
    max_registers_per_stage: int = 256

    # Warp mapper: per-CTA thread-block specification storage.
    # 4 bits for the stage count plus 16 bytes of per-stage register
    # sizes (16 stages x 8 bits) plus stage/queue bookkeeping.
    warp_mapper_bits_per_cta: int = 132

    # Warp scheduler: per-warp stage id (4b) + is_empty + is_full + valid.
    scheduler_bits_per_warp: int = 7

    # RFQ metadata: per warp, four 9-bit indices into a 512-entry
    # register file (head, tail, alloc start, alloc end).
    rfq_entries_per_warp: int = 4
    rfq_bits_per_entry: int = 9

    # WASP-TMA: two 128-byte ping-pong buffer entries for gather indices.
    tma_buffers: int = 2
    tma_buffer_bytes: int = 128


@dataclass(frozen=True)
class AreaBreakdown:
    """Storage requirement of each WASP component (Table IV rows)."""

    warp_mapper_bytes_per_sm: float
    warp_scheduler_bytes_per_sm: float
    rfq_metadata_bytes_per_sm: float
    wasp_tma_bytes_per_sm: float
    num_sms: int

    @property
    def total_bytes_per_sm(self) -> float:
        return (
            self.warp_mapper_bytes_per_sm
            + self.warp_scheduler_bytes_per_sm
            + self.rfq_metadata_bytes_per_sm
            + self.wasp_tma_bytes_per_sm
        )

    def per_gpu_kb(self, component: str) -> float:
        per_sm = {
            "warp_mapper": self.warp_mapper_bytes_per_sm,
            "warp_scheduler": self.warp_scheduler_bytes_per_sm,
            "rfq_metadata": self.rfq_metadata_bytes_per_sm,
            "wasp_tma": self.wasp_tma_bytes_per_sm,
            "total": self.total_bytes_per_sm,
        }[component]
        return per_sm * self.num_sms / 1024.0

    def rows(self) -> list[tuple[str, float, float]]:
        """(component, bytes per SM, KB per GPU) rows in Table IV order."""
        return [
            (name, per_sm, per_sm * self.num_sms / 1024.0)
            for name, per_sm in (
                ("Warp Mapper", self.warp_mapper_bytes_per_sm),
                ("Warp Scheduler", self.warp_scheduler_bytes_per_sm),
                ("RFQ Metadata", self.rfq_metadata_bytes_per_sm),
                ("WASP-TMA", self.wasp_tma_bytes_per_sm),
                ("Total", self.total_bytes_per_sm),
            )
        ]


def compute_area(params: AreaParameters | None = None) -> AreaBreakdown:
    """Storage overhead per SM and per GPU for the WASP additions."""
    p = params or AreaParameters()
    mapper = p.ctas_per_sm * p.warp_mapper_bits_per_cta / 8.0
    scheduler = p.warps_per_sm * p.scheduler_bits_per_warp / 8.0
    rfq = (
        p.warps_per_sm
        * p.rfq_entries_per_warp
        * p.rfq_bits_per_entry
        / 8.0
    )
    tma = p.tma_buffers * p.tma_buffer_bytes
    return AreaBreakdown(
        warp_mapper_bytes_per_sm=mapper,
        warp_scheduler_bytes_per_sm=scheduler,
        rfq_metadata_bytes_per_sm=rfq,
        wasp_tma_bytes_per_sm=tma,
        num_sms=p.num_sms,
    )
