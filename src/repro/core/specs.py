"""The WASP thread-block specification (paper Table I).

The specification is the contract between the WASP compiler and the WASP
hardware: it names each warp's pipeline stage, gives per-stage register
requirements, declares the named queues connecting stages, and carries
arrive/wait barrier metadata for SMEM double buffering.

The baseline GPU ignores everything except thread dimensions; the WASP
SM uses the full specification for mapping, register allocation and
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError


@dataclass(frozen=True)
class NamedQueueSpec:
    """A named queue connecting two pipeline stages.

    Matches the paper's ``{src_id, dst_id, size}`` triple; ``size`` is
    entries per warp-channel (32 by default, swept in Figure 18).
    """

    queue_id: int
    src_stage: int
    dst_stage: int
    size: int = 32

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValidationError("queue size must be positive")
        if self.src_stage == self.dst_stage:
            raise ValidationError(
                f"queue {self.queue_id} connects stage "
                f"{self.src_stage} to itself"
            )


@dataclass
class ThreadBlockSpec:
    """Extended thread-block specification.

    Attributes:
        num_stages: Pipeline depth (the new launch dimension of III-A).
        warps_per_stage: Warps assigned to each stage, in stage order.
            Stage ids are implicit (index into this list).
        stage_registers: Per-thread register count for each stage.
        queues: Named queues between stages.
        smem_words: Shared memory including any compiler-added buffering.
        barrier_expected: Arrivals per generation for each arrive/wait
            barrier (producer warp count).
        barrier_initial: Initial arrival credit (empty buffers start
            "arrived", per Section IV-B).
    """

    num_stages: int
    warps_per_stage: list[list[int]]
    stage_registers: list[int]
    queues: list[NamedQueueSpec] = field(default_factory=list)
    smem_words: int = 0
    barrier_expected: dict[str, int] = field(default_factory=dict)
    barrier_initial: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_stages <= 0:
            raise ValidationError("num_stages must be positive")
        if len(self.warps_per_stage) != self.num_stages:
            raise ValidationError(
                f"warps_per_stage has {len(self.warps_per_stage)} entries "
                f"for {self.num_stages} stages"
            )
        if len(self.stage_registers) != self.num_stages:
            raise ValidationError(
                f"stage_registers has {len(self.stage_registers)} entries "
                f"for {self.num_stages} stages"
            )
        seen: set[int] = set()
        for stage_warps in self.warps_per_stage:
            if not stage_warps:
                raise ValidationError("every stage needs at least one warp")
            overlap = seen.intersection(stage_warps)
            if overlap:
                raise ValidationError(
                    f"warps {sorted(overlap)} assigned to multiple stages"
                )
            seen.update(stage_warps)
        for queue in self.queues:
            for stage in (queue.src_stage, queue.dst_stage):
                if not 0 <= stage < self.num_stages:
                    raise ValidationError(
                        f"queue {queue.queue_id} references stage {stage} "
                        f"outside 0..{self.num_stages - 1}"
                    )

    # -- queries ------------------------------------------------------------

    @property
    def num_warps(self) -> int:
        return sum(len(ws) for ws in self.warps_per_stage)

    def stage_of_warp(self, warp_id: int) -> int:
        for stage, warps in enumerate(self.warps_per_stage):
            if warp_id in warps:
                return stage
        raise ValidationError(f"warp {warp_id} not assigned to any stage")

    def warps_in_stage(self, stage: int) -> list[int]:
        return self.warps_per_stage[stage]

    def queue_by_id(self, queue_id: int) -> NamedQueueSpec:
        for queue in self.queues:
            if queue.queue_id == queue_id:
                return queue
        raise ValidationError(f"no queue with id {queue_id}")

    def pipeline_slices(self) -> list[list[int]]:
        """Warps grouped into pipeline slices (III-B warp mapping).

        Slice *k* holds the *k*-th warp of each stage, i.e. one complete
        producer→consumer chain; ``group_pipeline`` mapping co-locates a
        slice on one processing block.  Stages with fewer warps than the
        widest stage contribute to the earliest slices only.
        """
        depth = max(len(ws) for ws in self.warps_per_stage)
        slices: list[list[int]] = [[] for _ in range(depth)]
        for warps in self.warps_per_stage:
            for k, warp_id in enumerate(warps):
                slices[k].append(warp_id)
        return [s for s in slices if s]

    # -- register accounting (Figure 16) ----------------------------------

    def uniform_register_footprint(self, threads_per_warp: int = 32) -> int:
        """Thread-block register footprint under uniform allocation.

        Current GPUs allocate every warp the *maximum* per-stage register
        count (Section III-B).
        """
        peak = max(self.stage_registers)
        return peak * threads_per_warp * self.num_warps

    def per_stage_register_footprint(self, threads_per_warp: int = 32) -> int:
        """Thread-block register footprint under WASP per-stage allocation."""
        total = 0
        for stage, warps in enumerate(self.warps_per_stage):
            total += self.stage_registers[stage] * threads_per_warp * len(warps)
        return total


def contiguous_stage_assignment(
    num_stages: int, warps_per_stage_count: list[int]
) -> list[list[int]]:
    """Assign warp ids 0..N-1 contiguously to stages, in stage order."""
    if len(warps_per_stage_count) != num_stages:
        raise ValidationError("stage count mismatch")
    assignment: list[list[int]] = []
    next_warp = 0
    for count in warps_per_stage_count:
        assignment.append(list(range(next_warp, next_warp + count)))
        next_warp += count
    return assignment
