"""Pipeline-aware warp mapping and register allocation (Section III-B).

Two warp-to-processing-block mapping algorithms:

* ``round_robin`` — the baseline GPU's mapper: warps are dealt one at a
  time across processing blocks, which lands similar pipeline stages on
  the same block (Figure 5, left).
* ``group_pipeline`` — WASP's mapper: all warps of one pipeline *slice*
  (the k-th warp of every stage, a complete producer→consumer chain) are
  co-located on one processing block, balancing heterogeneous resource
  use (Figure 5, right).

Register allocation helpers compute the thread-block footprint under
uniform allocation (baseline: every warp gets the maximum stage's count)
and WASP's per-stage allocation (Figure 7 / Figure 16).
"""

from __future__ import annotations

from repro.core.specs import ThreadBlockSpec
from repro.errors import SimulationError


def round_robin_mapping(
    num_warps: int, num_processing_blocks: int
) -> dict[int, int]:
    """Baseline mapping: warp w -> processing block (w mod P)."""
    if num_processing_blocks <= 0:
        raise SimulationError("need at least one processing block")
    return {w: w % num_processing_blocks for w in range(num_warps)}


def group_pipeline_mapping(
    spec: ThreadBlockSpec, num_processing_blocks: int
) -> dict[int, int]:
    """WASP mapping: pipeline slices dealt across processing blocks."""
    if num_processing_blocks <= 0:
        raise SimulationError("need at least one processing block")
    mapping: dict[int, int] = {}
    for slice_idx, slice_warps in enumerate(spec.pipeline_slices()):
        block = slice_idx % num_processing_blocks
        for warp_id in slice_warps:
            mapping[warp_id] = block
    return mapping


def map_warps(
    spec: ThreadBlockSpec | None,
    num_warps: int,
    num_processing_blocks: int,
    use_group_pipeline: bool,
) -> dict[int, int]:
    """Choose the mapper based on hardware support and the spec.

    Without explicit naming (no spec) or without the WASP mapper, the
    baseline round-robin assignment is used.
    """
    if use_group_pipeline and spec is not None:
        return group_pipeline_mapping(spec, num_processing_blocks)
    return round_robin_mapping(num_warps, num_processing_blocks)


def rotate_mapping(
    mapping: dict[int, int], offset: int, num_processing_blocks: int
) -> dict[int, int]:
    """Shift every assignment by ``offset`` blocks (mod P).

    Both mappers deal each thread block's warps starting from
    processing block 0, so a block whose warp count is not a multiple
    of P systematically under-fills the high-numbered blocks — with
    3-warp blocks on 4 processing blocks, block 3 never receives a
    warp from *any* resident thread block and its issue slot idles for
    the whole kernel.  Rotating each admitted block's mapping to start
    at the currently least-loaded processing block keeps the intra-
    block structure (round-robin adjacency, slice co-location) while
    restoring work conservation at the placement level.
    """
    if num_processing_blocks <= 0:
        raise SimulationError("need at least one processing block")
    if offset % num_processing_blocks == 0:
        return dict(mapping)
    return {
        warp: (pb + offset) % num_processing_blocks
        for warp, pb in mapping.items()
    }


def register_footprint(
    spec: ThreadBlockSpec | None,
    num_warps: int,
    program_registers: int,
    threads_per_warp: int,
    per_stage: bool,
) -> int:
    """Thread-block register footprint in physical registers.

    For unspecialized kernels (no spec) this is simply
    ``regs * threads * warps``.  For specialized kernels, uniform
    allocation charges every warp the maximum stage requirement; WASP's
    per-stage allocation charges each stage its own requirement.
    """
    if spec is None:
        return max(1, program_registers) * threads_per_warp * num_warps
    if per_stage:
        return spec.per_stage_register_footprint(threads_per_warp)
    return spec.uniform_register_footprint(threads_per_warp)


def rfq_register_words(
    spec: ThreadBlockSpec | None, rfq_size: int, threads_per_warp: int
) -> int:
    """Register-file storage consumed by RFQ channels for one block.

    Each queue has one channel per pipeline slice; each entry is a
    warp-wide register (``threads_per_warp`` words).
    """
    if spec is None or not spec.queues:
        return 0
    slices = len(spec.pipeline_slices())
    return len(spec.queues) * slices * rfq_size * threads_per_warp
