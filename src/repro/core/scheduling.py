"""Pipeline-aware warp scheduling policies (Section III-D).

The scheduler sees, for every issuable warp, a :class:`WarpSchedState`
with its pipeline stage id and the RFQ scoreboard bits (incoming queue
has ready data / outgoing queue is full).  A policy converts the state
into a priority key — **lower sorts first** — and the processing block
issues the best ready warp each cycle.

Policies evaluated in Figure 17:

* ``producer_first`` — earlier pipeline stages first (more MLP).
* ``consumer_first`` — later stages first (drain the pipeline).
* ``full_ready_producer`` — warps whose outgoing queue is full, then
  warps with ready incoming data, then earlier stages (the paper's best
  combination, used by the full WASP configuration).
* ``full_ready_consumer`` — same queue terms, later stages first.
* baseline ``gto`` (greedy-then-oldest) and ``lrr`` round-robin.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SchedulingPolicy(enum.Enum):
    """Warp scheduling policies (baseline GTO + Section III-D)."""

    GTO = "gto"                      # greedy-then-oldest (baseline)
    LRR = "lrr"                      # loose round-robin
    PRODUCER_FIRST = "producer_first"        # earlier pipeline stages first
    CONSUMER_FIRST = "consumer_first"        # later pipeline stages first
    FULL_READY_PRODUCER = "full_ready_producer"  # queue status, then producer
    FULL_READY_CONSUMER = "full_ready_consumer"  # queue status, then consumer


@dataclass
class WarpSchedState:
    """Scheduler-visible state of one issuable warp.

    The queue bits describe the warp's *incoming* queues, matching the
    paper's scoreboard: ``incoming_full`` flags a consumer whose queue
    is full (drain it urgently — the producer is blocked on it) and
    ``incoming_ready`` flags a consumer with data waiting.
    """

    warp_key: int            # unique per (tb, warp)
    pipe_stage_id: int
    incoming_ready: bool     # some incoming queue has data ready
    incoming_full: bool      # some incoming queue is full (producer blocked)
    last_issued: float       # last cycle this warp issued (for GTO)
    age: int                 # launch order (oldest = smallest)


def priority_key(
    policy: SchedulingPolicy, state: WarpSchedState, greedy_key: int | None
):
    """Sort key (ascending) for a ready warp under ``policy``.

    ``greedy_key`` is the warp that issued last on this processing block
    (GTO keeps issuing from it while it stays ready).
    """
    greedy = 0 if state.warp_key == greedy_key else 1
    if policy is SchedulingPolicy.GTO:
        return (greedy, state.age)
    if policy is SchedulingPolicy.LRR:
        return (state.last_issued, state.age)
    if policy is SchedulingPolicy.PRODUCER_FIRST:
        return (state.pipe_stage_id, greedy, state.age)
    if policy is SchedulingPolicy.CONSUMER_FIRST:
        return (-state.pipe_stage_id, greedy, state.age)
    if policy is SchedulingPolicy.FULL_READY_PRODUCER:
        return (
            0 if state.incoming_full else 1,
            0 if state.incoming_ready else 1,
            state.pipe_stage_id,
            greedy,
            state.age,
        )
    if policy is SchedulingPolicy.FULL_READY_CONSUMER:
        return (
            0 if state.incoming_full else 1,
            0 if state.incoming_ready else 1,
            -state.pipe_stage_id,
            greedy,
            state.age,
        )
    raise ValueError(f"unknown policy {policy}")


def needs_queue_bits(policy: SchedulingPolicy) -> bool:
    """Does ``policy`` consult the incoming-queue scoreboard bits?

    Only the ``full_ready_*`` policies do; for the others the simulator
    can skip the per-warp channel scan entirely.
    """
    return policy in (
        SchedulingPolicy.FULL_READY_PRODUCER,
        SchedulingPolicy.FULL_READY_CONSUMER,
    )


def compiled_priority(policy: SchedulingPolicy):
    """Allocation-free form of :func:`priority_key`.

    Returns ``fn(warp_key, stage, ready, full, last_issued, age,
    greedy_key) -> key`` producing exactly the tuple
    :func:`priority_key` would for the equivalent
    :class:`WarpSchedState` — the simulator's per-eligible-warp hot
    path, where building the dataclass dominates the comparison
    (``tests/test_core_mapping_scheduling.py`` pins the agreement).
    """
    if policy is SchedulingPolicy.GTO:
        return lambda key, stage, ready, full, last, age, greedy: (
            0 if key == greedy else 1, age,
        )
    if policy is SchedulingPolicy.LRR:
        return lambda key, stage, ready, full, last, age, greedy: (
            last, age,
        )
    if policy is SchedulingPolicy.PRODUCER_FIRST:
        return lambda key, stage, ready, full, last, age, greedy: (
            stage, 0 if key == greedy else 1, age,
        )
    if policy is SchedulingPolicy.CONSUMER_FIRST:
        return lambda key, stage, ready, full, last, age, greedy: (
            -stage, 0 if key == greedy else 1, age,
        )
    if policy is SchedulingPolicy.FULL_READY_PRODUCER:
        return lambda key, stage, ready, full, last, age, greedy: (
            0 if full else 1, 0 if ready else 1, stage,
            0 if key == greedy else 1, age,
        )
    if policy is SchedulingPolicy.FULL_READY_CONSUMER:
        return lambda key, stage, ready, full, last, age, greedy: (
            0 if full else 1, 0 if ready else 1, -stage,
            0 if key == greedy else 1, age,
        )
    raise ValueError(f"unknown policy {policy}")
