"""The WASP automatic warp-specialization compiler (paper Section IV).

The compiler is a binary-recompilation analogue: it consumes a program in
the SASS-like IR, builds a program dependence graph, extracts pipeline
stages at global-load/use boundaries, and emits a warp-specialized
program plus the thread-block specification that the WASP hardware
consumes.

Pipeline (``WaspCompiler.compile``):

1. :mod:`repro.core.compiler.pdg` — reaching-definition data dependences
   over the CFG.
2. :mod:`repro.core.compiler.backslice` — backward slices, terminated at
   upstream global loads.
3. :mod:`repro.core.compiler.eligibility` — the paper's eligibility
   rules (no LDS in the backslice, no self-dependence cycle, plus the
   reproduction's single-consumer-stage rule).
4. :mod:`repro.core.compiler.extraction` — two-phase stage extraction
   and indirection-depth analysis (Section IV-A, Figure 9).
5. :mod:`repro.core.compiler.merging` — merge stages with equal memory
   indirection to fit the SM's stage limit (Section IV-B).
6. :mod:`repro.core.compiler.stagesplit` — per-stage program
   construction with queue rewiring and the replicated control skeleton.
7. :mod:`repro.core.compiler.buffering` — LDGSTS fusion and
   single/double-buffered arrive/wait barrier insertion (Figure 10).
8. :mod:`repro.core.compiler.tma_offload` — affine-loop detection and
   WASP-TMA configuration-instruction substitution (Section III-E).
9. :mod:`repro.core.compiler.regalloc` — per-stage register compaction.
10. :mod:`repro.core.compiler.finalize` — jump table, combined program,
    thread-block specification (Table I).
"""

from repro.core.compiler.pipeline import (
    CompileResult,
    WaspCompiler,
    WaspCompilerOptions,
)

__all__ = ["CompileResult", "WaspCompiler", "WaspCompilerOptions"]
