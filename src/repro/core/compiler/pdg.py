"""Program dependence graph construction.

Data dependences are computed with a classic reaching-definitions
dataflow analysis over the CFG, so loop-carried dependences (e.g. an
induction variable feeding its own update) are captured.  Nodes are
instruction ``uid`` values; an edge ``d -> u`` means a definition at
``d`` may reach a use at ``u``.

Control structure is exposed through block-level helpers (parents,
branch-of-block) because the paper's second extraction phase walks basic
blocks rather than a formal control-dependence graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, is_global_load
from repro.isa.program import Program

_DefKey = tuple[str, int]  # ('r', idx) or ('p', idx)


def _def_keys(instr: Instruction) -> list[_DefKey]:
    keys: list[_DefKey] = [("r", r.index) for r in instr.defined_registers()]
    keys.extend(("p", p.index) for p in instr.defined_predicates())
    return keys


def _use_keys(instr: Instruction) -> list[_DefKey]:
    keys: list[_DefKey] = [("r", r.index) for r in instr.used_registers()]
    keys.extend(("p", p.index) for p in instr.used_predicates())
    return keys


@dataclass
class PDG:
    """Data-dependence graph plus CFG lookup tables for one program."""

    program: Program
    instr_by_uid: dict[int, Instruction] = field(default_factory=dict)
    block_of: dict[int, str] = field(default_factory=dict)
    data_preds: dict[int, set[int]] = field(default_factory=dict)
    data_succs: dict[int, set[int]] = field(default_factory=dict)

    def predecessors_of(self, instr: Instruction) -> set[Instruction]:
        """Instructions whose definitions may reach ``instr``'s uses."""
        return {
            self.instr_by_uid[uid] for uid in self.data_preds.get(instr.uid, ())
        }

    def successors_of(self, instr: Instruction) -> set[Instruction]:
        return {
            self.instr_by_uid[uid] for uid in self.data_succs.get(instr.uid, ())
        }

    def consumers_of_load(self, load: Instruction) -> set[Instruction]:
        """Instructions consuming the value produced by a global load."""
        return self.successors_of(load)

    def global_loads(self) -> list[Instruction]:
        """All LDG/LDGSTS instructions in layout order."""
        return [
            instr
            for instr in self.program.instructions()
            if is_global_load(instr.opcode)
        ]

    def branches(self) -> list[Instruction]:
        return [
            instr
            for instr in self.program.instructions()
            if instr.opcode is Opcode.BRA
        ]


def build_pdg(program: Program) -> PDG:
    """Build the PDG for ``program`` (reaching-definitions dataflow)."""
    pdg = PDG(program=program)
    for block in program.blocks:
        for instr in block.instructions:
            pdg.instr_by_uid[instr.uid] = instr
            pdg.block_of[instr.uid] = block.label
            pdg.data_preds[instr.uid] = set()
            pdg.data_succs[instr.uid] = set()

    # Block-level GEN (last def per key) and KILL (keys defined).
    gen: dict[str, dict[_DefKey, int]] = {}
    kill: dict[str, set[_DefKey]] = {}
    for block in program.blocks:
        block_gen: dict[_DefKey, int] = {}
        for instr in block.instructions:
            for key in _def_keys(instr):
                block_gen[key] = instr.uid
        gen[block.label] = block_gen
        kill[block.label] = set(block_gen)

    preds = program.predecessors()
    # IN/OUT sets: key -> set of def uids.
    in_sets: dict[str, dict[_DefKey, set[int]]] = {
        b.label: {} for b in program.blocks
    }
    out_sets: dict[str, dict[_DefKey, set[int]]] = {
        b.label: {} for b in program.blocks
    }

    changed = True
    while changed:
        changed = False
        for block in program.blocks:
            label = block.label
            new_in: dict[_DefKey, set[int]] = {}
            for pred_label in preds[label]:
                for key, uids in out_sets[pred_label].items():
                    new_in.setdefault(key, set()).update(uids)
            new_out: dict[_DefKey, set[int]] = {
                key: set(uids)
                for key, uids in new_in.items()
                if key not in kill[label]
            }
            for key, uid in gen[label].items():
                new_out[key] = {uid}
            if new_in != in_sets[label] or new_out != out_sets[label]:
                in_sets[label] = new_in
                out_sets[label] = new_out
                changed = True

    # Per-instruction def-use edges, walking each block with a live map.
    for block in program.blocks:
        live: dict[_DefKey, set[int]] = {
            key: set(uids) for key, uids in in_sets[block.label].items()
        }
        for instr in block.instructions:
            for key in _use_keys(instr):
                for def_uid in live.get(key, ()):
                    pdg.data_preds[instr.uid].add(def_uid)
                    pdg.data_succs[def_uid].add(instr.uid)
            for key in _def_keys(instr):
                live[key] = {instr.uid}
    return pdg
