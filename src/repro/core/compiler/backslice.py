"""Backward slices over the PDG.

The extraction scheme (Section IV-A) uses two flavours of slice:

* the **address backslice** of a global load — every instruction the
  load's address transitively depends on, with the depth-first search
  *terminating at upstream global loads* (those become stage
  boundaries delivered through queues), and
* the **full backslice** used for eligibility analysis, which traverses
  through everything so LDS instructions and self-cycles are visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.pdg import PDG
from repro.isa.instruction import Instruction
from repro.isa.opcodes import is_global_load


@dataclass
class AddressBackslice:
    """Result of an address backslice from one global load.

    Attributes:
        instructions: Slice members (excluding the load itself and
            excluding boundary loads), in no particular order.
        boundary_loads: Upstream global loads the slice terminated at;
            their values must be delivered to this load's stage.
    """

    instructions: set[Instruction]
    boundary_loads: set[Instruction]


def address_backslice(pdg: PDG, load: Instruction) -> AddressBackslice:
    """Backslice of ``load``'s address, stopping at upstream loads."""
    members: set[int] = set()
    boundaries: set[int] = set()
    stack = [uid for uid in pdg.data_preds.get(load.uid, ())]
    while stack:
        uid = stack.pop()
        if uid in members or uid in boundaries or uid == load.uid:
            continue
        instr = pdg.instr_by_uid[uid]
        if is_global_load(instr.opcode):
            boundaries.add(uid)
            continue
        members.add(uid)
        stack.extend(pdg.data_preds.get(uid, ()))
    return AddressBackslice(
        instructions={pdg.instr_by_uid[u] for u in members},
        boundary_loads={pdg.instr_by_uid[u] for u in boundaries},
    )


def full_backslice(pdg: PDG, instr: Instruction) -> set[Instruction]:
    """Transitive closure of data predecessors (no termination).

    Includes ``instr`` itself if it participates in a dependence cycle,
    which is exactly what the self-cycle eligibility check looks for.
    """
    visited: set[int] = set()
    stack = list(pdg.data_preds.get(instr.uid, ()))
    while stack:
        uid = stack.pop()
        if uid in visited:
            continue
        visited.add(uid)
        stack.extend(pdg.data_preds.get(uid, ()))
    return {pdg.instr_by_uid[u] for u in visited}
