"""Top-level WASP compiler driver (Section IV).

``WaspCompiler.compile`` chains the passes: LDGSTS fusion, sync-pair
tagging, double buffering, PDG construction, stage extraction planning,
stage splitting, WASP-TMA offloading, empty-stage dropping, and
finalization.  The result carries the warp-specialized program (with the
thread-block specification attached), the untouched original, and a
report used by the evaluation harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.compiler.buffering import (
    MAX_PIPELINE_DEPTH,
    apply_circular_buffering,
    fuse_ldgsts,
    tag_tile_sync_pairs,
)
from repro.core.compiler.extraction import ExtractionPlan, plan_extraction
from repro.core.compiler.finalize import finalize_pipeline
from repro.core.compiler.pdg import build_pdg
from repro.core.compiler.stagesplit import (
    StageProgram,
    build_stage_programs,
    tag_keys,
)
from repro.core.compiler.tma_offload import OffloadReport, offload_pipeline
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuncUnit, Opcode
from repro.isa.program import Program
from repro.telemetry.spans import span

# A100: 192 KB combined L1/SMEM per SM; up to ~164 KB usable as SMEM.
DEFAULT_SMEM_CAPACITY_WORDS = (164 * 1024) // 4


@dataclass(frozen=True)
class WaspCompilerOptions:
    """Knobs matching the paper's compiler configurations.

    ``WASP_COMPILER_TILE`` is ``enable_streaming=False``;
    ``WASP_COMPILER_ALL`` enables everything targeting baseline hardware
    (the simulator then models queue traffic through SMEM); the full
    WASP GPU additionally executes the queues in the register file and
    honours ``enable_tma_offload``.
    """

    enable_streaming: bool = True
    enable_tile: bool = True
    enable_tma_offload: bool = True
    double_buffering: bool = True
    #: Circular-buffer ring depth: how many generations of each tile
    #: buffer live in SMEM at once.  2 is classic double buffering; up
    #: to 8 slots hide full DRAM latency on attention-class pipelines.
    #: Only meaningful when ``double_buffering`` is on.
    pipeline_depth: int = 2
    max_stages: int = 16
    queue_size: int = 32
    smem_capacity_words: int = DEFAULT_SMEM_CAPACITY_WORDS
    #: Run the static pipeline verifier as a post-pass and raise
    #: :class:`repro.errors.VerificationError` on error-severity
    #: findings.  Opt-out: ``repro lint`` disables it to report findings
    #: instead of raising.
    verify: bool = True
    #: Run translation validation after compiling: raise on a
    #: ``not-equivalent`` verdict (WASP-T errors).  Abstention never
    #: raises — it is a coverage statement, surfaced on the result.
    #: Opt-out like ``verify``.
    validate: bool = True

    def __post_init__(self) -> None:
        if not 2 <= self.pipeline_depth <= MAX_PIPELINE_DEPTH:
            raise ValueError(
                f"pipeline_depth must be in [2, {MAX_PIPELINE_DEPTH}], "
                f"got {self.pipeline_depth}"
            )

    def to_json(self) -> dict[str, object]:
        """Plain-data form (the ``repro advise`` report embeds these)."""
        return {
            "enable_streaming": self.enable_streaming,
            "enable_tile": self.enable_tile,
            "enable_tma_offload": self.enable_tma_offload,
            "double_buffering": self.double_buffering,
            "pipeline_depth": self.pipeline_depth,
            "max_stages": self.max_stages,
            "queue_size": self.queue_size,
            "smem_capacity_words": self.smem_capacity_words,
            "verify": self.verify,
            "validate": self.validate,
        }

    @staticmethod
    def from_json(data: dict[str, object]) -> "WaspCompilerOptions":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        fields_ = WaspCompilerOptions().to_json().keys()
        unknown = set(data) - set(fields_)
        if unknown:
            raise ValueError(
                f"unknown compiler option(s): {sorted(unknown)}"
            )
        return WaspCompilerOptions(**data)  # type: ignore[arg-type]


def options_delta(
    base: WaspCompilerOptions, other: WaspCompilerOptions
) -> dict[str, object]:
    """The fields where ``other`` differs from ``base``.

    This is what an advisor suggestion is: apply the delta to your
    current options.  Empty dict means "keep what you have".
    """
    left = base.to_json()
    right = other.to_json()
    return {k: right[k] for k in right if right[k] != left[k]}


@dataclass
class CompileResult:
    """Outcome of compiling one kernel."""

    original: Program
    program: Program
    specialized: bool
    plan: ExtractionPlan | None = None
    num_stages: int = 1
    stage_registers: list[int] = field(default_factory=list)
    original_registers: int = 0
    fused_ldgsts: int = 0
    double_buffered: list[str] = field(default_factory=list)
    offload: OffloadReport | None = None
    dropped_stages: int = 0
    reason: str = ""
    #: Static-verifier findings over the compiled program (empty when
    #: verification is disabled or found nothing).
    diagnostics: list = field(default_factory=list)
    #: Translation-validation report (None when validation is disabled
    #: or the compile was not specialized).
    transval: object | None = None

    @property
    def uniform_registers(self) -> int:
        """Per-thread allocation under uniform (non-WASP) allocation."""
        if not self.stage_registers:
            return self.original_registers
        return max(self.stage_registers)


class WaspCompiler:
    """Automatic warp specialization for SASS-like kernels.

    ``on_compile`` is the advisory hook: a callable invoked with every
    :class:`CompileResult` this compiler produces (specialized or not).
    The performance-model advisor uses it to observe the pipeline shape
    each candidate option set yields without re-walking compiler
    internals; profiling and CI smoke jobs can attach loggers the same
    way.  Hook exceptions propagate — a broken observer should fail
    loudly, not silently skew advice.
    """

    def __init__(
        self,
        options: WaspCompilerOptions | None = None,
        on_compile: "Callable[[CompileResult], None] | None" = None,
    ) -> None:
        self.options = options or WaspCompilerOptions()
        self.on_compile = on_compile

    def _emit(self, result: CompileResult) -> CompileResult:
        if self.on_compile is not None:
            self.on_compile(result)
        return result

    def compile(self, program: Program, num_warps: int) -> CompileResult:
        """Warp-specialize ``program`` for a ``num_warps``-warp block.

        Returns an unspecialized result (original program) when no
        pipeline stage can be extracted — callers fall back to the
        baseline kernel, matching the paper's per-kernel opt-in.
        """
        with span("compiler", "compile"):
            return self._compile(program, num_warps)

    def _compile(self, program: Program, num_warps: int) -> CompileResult:
        program.validate()
        opts = self.options
        original_registers = program.register_count()
        work = program.clone()
        work.name = program.name

        fused = 0
        double_buffered: list[str] = []
        if opts.enable_tile:
            fused = fuse_ldgsts(work)
            tag_tile_sync_pairs(work)
            if opts.double_buffering:
                double_buffered = apply_circular_buffering(
                    work,
                    opts.smem_capacity_words,
                    depth=opts.pipeline_depth,
                )

        with span("compiler", "build_pdg"):
            pdg = build_pdg(work)
        with span("compiler", "plan_extraction"):
            plan = plan_extraction(
                pdg,
                max_stages=opts.max_stages,
                enable_streaming=opts.enable_streaming,
                enable_tile=opts.enable_tile,
            )
        if plan.num_stages <= 1 or not plan.loads:
            return self._emit(CompileResult(
                original=program,
                program=program,
                specialized=False,
                plan=plan,
                original_registers=original_registers,
                reason="no extractable pipeline stages",
            ))

        tag_keys(work)
        with span("compiler", "stage_split"):
            stages = build_stage_programs(work, plan)
        offload = None
        if opts.enable_tma_offload:
            offload = offload_pipeline(stages)
        kept, dropped = drop_empty_stages(stages)
        if len(kept) <= 1:
            return self._emit(CompileResult(
                original=program,
                program=program,
                specialized=False,
                plan=plan,
                original_registers=original_registers,
                reason="pipeline collapsed to a single stage",
            ))

        with span("compiler", "finalize"):
            combined = finalize_pipeline(
                name=program.name,
                stages=kept,
                num_warps=num_warps,
                queue_size=opts.queue_size,
                smem_words=work.smem_words,
                smem_buffers=work.smem_buffers,
            )
        diagnostics: list = []
        if opts.verify:
            # Imported lazily: the analysis package partitions the
            # *output* of this compiler and is otherwise independent.
            from repro.analysis.verifier import verify_or_raise

            diagnostics = list(verify_or_raise(combined))
        transval = None
        if opts.validate:
            from repro.analysis.transval import validate_or_raise

            transval = validate_or_raise(
                program, combined, assume_verified=opts.verify
            )
        return self._emit(CompileResult(
            original=program,
            program=combined,
            specialized=True,
            plan=plan,
            num_stages=len(kept),
            stage_registers=list(combined.tb_spec.stage_registers),
            original_registers=original_registers,
            fused_ldgsts=fused,
            double_buffered=double_buffered,
            offload=offload,
            dropped_stages=dropped,
            diagnostics=diagnostics,
            transval=transval,
        ))


def drop_empty_stages(
    stages: list[StageProgram],
) -> tuple[list[StageProgram], int]:
    """Remove stages left without work (e.g. after gather fusion).

    A stage is droppable when it contains only control flow and pure
    arithmetic — no memory operations, queue traffic, barriers or TMA
    configurations.  Kept stages are renumbered contiguously.
    """
    kept = [
        sp for sp in stages if sp.is_compute or not _is_workless(sp.program)
    ]
    dropped = len(stages) - len(kept)
    for new_index, stage_prog in enumerate(kept):
        stage_prog.stage = new_index
        stage_prog.is_compute = new_index == len(kept) - 1
    return kept, dropped


_PURE_UNITS = (FuncUnit.INT, FuncUnit.FP, FuncUnit.TENSOR, FuncUnit.NOP)


def _is_workless(program: Program) -> bool:
    for instr in _instructions(program):
        if instr.opcode in (Opcode.BRA, Opcode.EXIT, Opcode.NOP):
            continue
        if instr.queue_pushes() or instr.queue_pops():
            return False
        info = instr.info
        if info.is_barrier:
            return False
        if info.reads_global or info.writes_global:
            return False
        if info.reads_shared or info.writes_shared:
            return False
        if info.unit not in _PURE_UNITS:
            return False
    return True


def _instructions(program: Program) -> list[Instruction]:
    return list(program.instructions())
