"""Eligibility analysis for pipeline stage extraction (Section IV-A).

A global load is eligible for extraction when:

* its backslice contains no shared-memory load (an LDS would mean an
  untrackable memory dependence on STS instructions),
* it does not depend on itself through a dependence cycle (pointer
  chasing within a single load), and
* — reproduction-specific conservatism — it is not part of the control
  skeleton (a load feeding a branch must execute in every stage), and
  its loaded value is not needed by more than one downstream stage,
  since a register-file queue entry can be popped exactly once.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.compiler.backslice import full_backslice
from repro.core.compiler.pdg import PDG
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class Ineligibility(enum.Enum):
    """Why a global load cannot be extracted into its own stage."""

    LDS_IN_BACKSLICE = "backslice contains a shared-memory load"
    SELF_CYCLE = "load participates in a dependence cycle with itself"
    FEEDS_CONTROL = "loaded value feeds program control flow"
    GUARD_DIVERGES = "load is guarded by a non-skeleton predicate"


@dataclass
class EligibilityReport:
    """Per-load eligibility verdicts for one program."""

    eligible: list[Instruction]
    ineligible: dict[int, Ineligibility]

    def reason_for(self, load: Instruction) -> Ineligibility | None:
        return self.ineligible.get(load.uid)


def classify_loads(
    pdg: PDG, skeleton_uids: set[int]
) -> EligibilityReport:
    """Split the program's global loads into eligible / ineligible.

    ``skeleton_uids`` is the control skeleton (branches plus their
    transitive backslices); loads inside it are replicated into every
    stage rather than extracted.
    """
    eligible: list[Instruction] = []
    ineligible: dict[int, Ineligibility] = {}
    for load in pdg.global_loads():
        verdict = _classify_one(pdg, load, skeleton_uids)
        if verdict is None:
            eligible.append(load)
        else:
            ineligible[load.uid] = verdict
    return EligibilityReport(eligible=eligible, ineligible=ineligible)


def _classify_one(
    pdg: PDG, load: Instruction, skeleton_uids: set[int]
) -> Ineligibility | None:
    if load.uid in skeleton_uids:
        return Ineligibility.FEEDS_CONTROL
    backslice = full_backslice(pdg, load)
    if any(i.opcode is Opcode.LDS for i in backslice):
        return Ineligibility.LDS_IN_BACKSLICE
    if any(i.uid == load.uid for i in backslice):
        return Ineligibility.SELF_CYCLE
    return None
