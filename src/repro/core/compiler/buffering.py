"""LDGSTS fusion and N-stage circular buffering (Sections IV-A/IV-B).

Three transformations, applied to the working program *before* stage
splitting:

1. :func:`fuse_ldgsts` — a global load whose value is only stored to
   shared memory is fused with its STS partner into one ``LDGSTS``
   instruction (Ampere ``cp.async``).
2. :func:`tag_tile_sync_pairs` — for each LDGSTS, the enclosing pair of
   ``BAR.SYNC`` instructions is identified and tagged; stage splitting
   later rewrites each tagged sync positionally into arrive/wait
   barriers (producer: wait-empty/arrive-filled; consumers:
   arrive-empty/wait-filled), which is the paper's single-buffering
   transformation.
3. :func:`apply_circular_buffering` — the innermost loop around a
   tile's sync pair is unrolled ``depth`` times (the paper "replicates
   the subprogram"), copy *k* targeting the *k*-th ring slot of each
   replicated SMEM buffer with its own barrier set (Figure 10;
   ``depth=2`` is classic double buffering, deeper rings follow the
   8-slot circular schedule of production TMA/MMA kernels).  All tile
   keys living in the same loop are transformed together so their
   barrier generations stay aligned.  After stage splitting the
   producer and consumer sections advance through the ring
   independently — they are no longer lockstep clones — the producer
   running up to ``depth`` generations ahead, bounded only by the
   per-slot empty/filled barrier credits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.pdg import build_pdg
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, Register
from repro.isa.program import BasicBlock, Program


def fuse_ldgsts(program: Program) -> int:
    """Fuse eligible LDG+STS pairs in place; returns fusions performed.

    An LDG is fused when its value's only consumer is a single STS in
    the same basic block using the value as its store operand and with
    the same guard.  The LDGSTS takes the LDG's global address and the
    STS's shared address, and inherits the STS's buffer tag.
    """
    pdg = build_pdg(program)
    fused = 0
    for load in list(pdg.global_loads()):
        if load.opcode is not Opcode.LDG or not isinstance(load.dst, Register):
            continue
        succs = [pdg.instr_by_uid[u] for u in pdg.data_succs.get(load.uid, ())]
        if len(succs) != 1:
            continue
        sts = succs[0]
        if sts.opcode is not Opcode.STS:
            continue
        if sts.srcs[1] != load.dst:
            continue  # value must be the stored operand, not the address
        if (sts.guard, sts.guard_negated) != (load.guard, load.guard_negated):
            continue
        block = pdg.block_of[load.uid]
        if pdg.block_of[sts.uid] != block:
            continue
        blk = program.find_block(block)
        fused_instr = Instruction(
            Opcode.LDGSTS,
            srcs=[load.srcs[0], sts.srcs[0]],
            guard=load.guard,
            guard_negated=load.guard_negated,
            attrs=dict(sts.attrs),
        )
        sts_pos = next(
            i for i, x in enumerate(blk.instructions) if x.uid == sts.uid
        )
        blk.instructions[sts_pos] = fused_instr
        blk.instructions = [x for x in blk.instructions if x.uid != load.uid]
        fused += 1
    return fused


def tag_tile_sync_pairs(program: Program) -> list[str]:
    """Tag BAR.SYNC pairs enclosing each LDGSTS; returns the tile keys.

    Tags are attached via ``attrs['tile_roles']`` (a list of
    ``(role, key)`` pairs, since one sync can close one buffer and open
    another) and ``attrs['tile_key']`` on the LDGSTS itself.  An LDGSTS
    without an enclosing sync pair is left untagged and keeps full
    thread-block synchronization semantics.
    """
    layout: list[Instruction] = list(program.instructions())
    position = {instr.uid: i for i, instr in enumerate(layout)}
    pair_keys: dict[tuple[int, int], str] = {}
    keys: list[str] = []
    for instr in layout:
        if instr.opcode is not Opcode.LDGSTS:
            continue
        pos = position[instr.uid]
        pre = _nearest_sync(layout, pos, step=-1)
        post = _nearest_sync(layout, pos, step=1)
        if pre is None or post is None:
            continue
        pair = (pre.uid, post.uid)
        if pair not in pair_keys:
            key = f"tile{len(pair_keys)}"
            pair_keys[pair] = key
            keys.append(key)
            pre.attrs.setdefault("tile_roles", []).append(("pre", key))
            post.attrs.setdefault("tile_roles", []).append(("post", key))
        instr.attrs["tile_key"] = pair_keys[pair]
    return keys


def _nearest_sync(
    layout: list[Instruction], start: int, step: int
) -> Instruction | None:
    pos = start + step
    while 0 <= pos < len(layout):
        instr = layout[pos]
        if instr.opcode is Opcode.BAR_SYNC:
            return instr
        if instr.opcode in (Opcode.BAR_ARRIVE, Opcode.BAR_WAIT):
            return None
        pos += step
    return None


@dataclass
class Loop:
    """A natural loop identified from a layout backedge."""

    head_idx: int
    tail_idx: int

    def contains_block(self, idx: int) -> bool:
        return self.head_idx <= idx <= self.tail_idx


def find_loops(program: Program) -> list[Loop]:
    """Loops from backedges (branch to an earlier block in layout)."""
    label_idx = {b.label: i for i, b in enumerate(program.blocks)}
    loops = []
    for idx, block in enumerate(program.blocks):
        term = block.terminator
        if term is not None and term.opcode is Opcode.BRA:
            target_idx = label_idx[term.target]
            if target_idx <= idx:
                loops.append(Loop(head_idx=target_idx, tail_idx=idx))
    return loops


def innermost_loop(program: Program, block_idx: int) -> Loop | None:
    """Smallest loop whose body contains block ``block_idx``."""
    best: Loop | None = None
    for loop in find_loops(program):
        if loop.contains_block(block_idx):
            if best is None or (
                loop.tail_idx - loop.head_idx < best.tail_idx - best.head_idx
            ):
                best = loop
    return best


#: Ring-slot key suffixes: phase k of tile key ``tileN`` becomes
#: ``tileN_<letter>``.  Eight letters bound the ring depth at 8, the
#: deepest circular schedule observed in production kernels.
PHASE_SUFFIXES = "ABCDEFGH"

MAX_PIPELINE_DEPTH = len(PHASE_SUFFIXES)


def phase_suffix(phase: int) -> str:
    """Tile-key suffix for ring slot ``phase`` (``_A`` .. ``_H``)."""
    return f"_{PHASE_SUFFIXES[phase]}"


def copy_suffix(phase: int) -> str:
    """Label/buffer suffix for ring slot ``phase``.

    Slot 0 is the original (no suffix); slot 1 keeps the historical
    ``__db`` double-buffer suffix; deeper slots are ``__db2``.. so the
    strip rule everywhere stays ``__db\\d*``.
    """
    if phase <= 0:
        return ""
    if phase == 1:
        return "__db"
    return f"__db{phase}"


def apply_double_buffering(
    program: Program, smem_capacity_words: int
) -> list[str]:
    """Classic double buffering: :func:`apply_circular_buffering` at 2."""
    return apply_circular_buffering(program, smem_capacity_words, depth=2)


def apply_circular_buffering(
    program: Program, smem_capacity_words: int, depth: int = 2
) -> list[str]:
    """Ring-buffer every transformable tile loop; returns new keys.

    For each loop containing tagged tile sync pairs: verify every tile's
    LDGSTS names a known SMEM buffer, the replicated buffers fit in
    ``smem_capacity_words``, and the loop's backedge is guarded with a
    fall-through exit.  The loop is unrolled ``depth`` times; copy 0
    keeps tags re-keyed to ``<key>_A`` and copy ``k`` gets the *k*-th
    phase letter plus SMEM addresses shifted into its ring slot.  Loops
    failing the checks keep single buffering.
    """
    if not 2 <= depth <= MAX_PIPELINE_DEPTH:
        raise ValueError(
            f"pipeline depth must be in [2, {MAX_PIPELINE_DEPTH}], "
            f"got {depth}"
        )
    block_of_uid = {
        instr.uid: idx
        for idx, blk in enumerate(program.blocks)
        for instr in blk.instructions
    }
    loops_to_keys: dict[tuple[int, int], list[str]] = {}
    key_buffers: dict[str, set[str]] = {}
    for instr in program.instructions():
        key = instr.attrs.get("tile_key")
        if instr.opcode is not Opcode.LDGSTS or key is None:
            continue
        loop = innermost_loop(program, block_of_uid[instr.uid])
        if loop is None:
            continue
        loops_to_keys.setdefault((loop.head_idx, loop.tail_idx), []).append(key)
        key_buffers.setdefault(key, set()).add(
            instr.attrs.get("smem_buffer") or ""
        )

    transformed: list[str] = []
    # Process innermost-last so indices stay valid: transform from the
    # bottom of the layout upward.
    for (head_idx, tail_idx), keys in sorted(
        loops_to_keys.items(), reverse=True
    ):
        keys = sorted(set(keys))
        buffers: set[str] = set()
        for key in keys:
            names = key_buffers[key]
            if "" in names:
                buffers = set()
                break
            buffers.update(names)
        if not buffers or any(
            name not in program.smem_buffers for name in buffers
        ):
            continue
        extra = sum(program.smem_buffers[name][1] for name in buffers)
        if program.smem_words + extra * (depth - 1) > smem_capacity_words:
            continue
        loop = Loop(head_idx=head_idx, tail_idx=tail_idx)
        if _unroll_circular(program, loop, keys, sorted(buffers), depth):
            transformed.extend(keys)
    return transformed


def _unroll_circular(
    program: Program,
    loop: Loop,
    keys: list[str],
    buffers: list[str],
    depth: int,
) -> bool:
    tail = program.blocks[loop.tail_idx]
    backedge = tail.terminator
    if backedge is None or backedge.opcode is not Opcode.BRA:
        return False
    if backedge.guard is None:
        return False  # loop never exits by fall-through; unsupported
    if loop.tail_idx + 1 >= len(program.blocks):
        return False  # no fall-through exit block

    body = program.blocks[loop.head_idx : loop.tail_idx + 1]
    exit_label = program.blocks[loop.tail_idx + 1].label
    body_labels = {b.label for b in body}
    key_set = set(keys)

    buffer_set = set(buffers)
    for blk in body:
        for instr in blk.instructions:
            _suffix_tile_keys(instr, key_set, phase_suffix(0))
            _tag_phase(instr, buffer_set, 0)

    # Pre-assign every replica's buffer location at the end of SMEM so
    # address shifts are exact even when other allocations follow the
    # buffer.  Layout: all of slot 1's buffers, then slot 2's, ...
    shifts: dict[int, dict[str, int]] = {}
    copy_base = program.smem_words
    for phase in range(1, depth):
        per_phase: dict[str, int] = {}
        for name in buffers:
            orig_base, words = program.smem_buffers[name]
            per_phase[name] = copy_base - orig_base
            copy_base += words
        shifts[phase] = per_phase
    next_reg = [program.max_register_index() + 1]
    copy_blocks: list[BasicBlock] = []
    phase_backedges: list[Instruction] = []
    keys_a = {f"{k}{phase_suffix(0)}" for k in keys}
    for phase in range(1, depth):
        suffix = copy_suffix(phase)
        for blk in body:
            new_blk = BasicBlock(f"{blk.label}{suffix}")
            for instr in blk.instructions:
                clone = instr.clone()
                _rekey_phase(clone, keys_a, phase)
                _tag_phase(clone, buffer_set, phase)
                if clone.opcode is Opcode.BRA and clone.target in body_labels:
                    clone.target = f"{clone.target}{suffix}"
                _apply_buffer_offset(new_blk, clone, shifts[phase], next_reg)
                new_blk.instructions.append(clone)
            copy_blocks.append(new_blk)
        terminator = copy_blocks[-1].terminator
        assert terminator is not None
        phase_backedges.append(terminator)

    # Rewire: every copy except the last exits the ring when the trip
    # count is done and otherwise falls through into the next slot's
    # copy; the final copy's backedge returns to slot 0.
    head_label = program.blocks[loop.head_idx].label
    backedge.guard_negated = not backedge.guard_negated
    backedge.target = exit_label
    for terminator in phase_backedges[:-1]:
        terminator.guard_negated = not terminator.guard_negated
        terminator.target = exit_label
    phase_backedges[-1].target = head_label

    insert_at = loop.tail_idx + 1
    program.blocks[insert_at:insert_at] = copy_blocks
    for phase in range(1, depth):
        for name in buffers:
            base = program.smem_words
            words = program.smem_buffers[name][1]
            program.smem_buffers[f"{name}{copy_suffix(phase)}"] = (base, words)
            program.smem_words = base + words
    return True


def _suffix_tile_keys(
    instr: Instruction, keys: set[str], suffix: str
) -> None:
    if instr.attrs.get("tile_key") in keys:
        instr.attrs["tile_key"] = instr.attrs["tile_key"] + suffix
    roles = instr.attrs.get("tile_roles")
    if roles:
        instr.attrs["tile_roles"] = [
            (role, key + suffix if key in keys else key)
            for role, key in roles
        ]


def _tag_phase(
    instr: Instruction, buffers: set[str], phase: int
) -> None:
    """Record which circular-buffer phase (ring slot) an access targets.

    The happens-before race engine reads ``attrs['smem_phase']`` to
    prove accesses to different ring slots phase-disjoint even when the
    address is computed in a register.
    """
    if instr.attrs.get("smem_buffer") in buffers:
        instr.attrs["smem_phase"] = phase


def _rekey_phase(
    instr: Instruction, keys_a: set[str], phase: int
) -> None:
    """Re-key a cloned slot-0 (``_A``) tile key to ring slot ``phase``."""

    def swap(key: str) -> str:
        return key[:-2] + phase_suffix(phase) if key in keys_a else key

    if instr.attrs.get("tile_key") in keys_a:
        instr.attrs["tile_key"] = swap(instr.attrs["tile_key"])
    roles = instr.attrs.get("tile_roles")
    if roles:
        instr.attrs["tile_roles"] = [
            (role, swap(key)) for role, key in roles
        ]


_SMEM_ADDR_POS = {Opcode.LDS: 0, Opcode.STS: 0, Opcode.LDGSTS: 1}


def _apply_buffer_offset(
    block: BasicBlock,
    instr: Instruction,
    shifts: dict[str, int],
    next_reg: list[int],
) -> None:
    """Shift a copy-B instruction's SMEM address into its doubled copy."""
    buffer_name = instr.attrs.get("smem_buffer")
    if buffer_name not in shifts:
        return
    pos = _SMEM_ADDR_POS.get(instr.opcode)
    if pos is None:
        return
    shift = shifts[buffer_name]
    addr = instr.srcs[pos]
    if isinstance(addr, Immediate):
        instr.srcs[pos] = Immediate(addr.value + shift)
        return
    shifted = Register(next_reg[0])
    next_reg[0] += 1
    block.instructions.append(
        Instruction(
            Opcode.IADD,
            dst=shifted,
            srcs=[addr, Immediate(shift)],
            guard=instr.guard,
            guard_negated=instr.guard_negated,
        )
    )
    instr.srcs[pos] = shifted
