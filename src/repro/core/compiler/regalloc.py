"""Per-stage register re-allocation (Section IV-B).

After stage splitting each stage uses a sparse subset of the original
register space.  The compiler "performs a simple re-allocation by
compacting the registers into contiguous space"; the resulting per-stage
counts populate the thread-block specification and drive WASP's
per-stage register allocation (Figure 16).
"""

from __future__ import annotations

from repro.isa.operands import Predicate, Register
from repro.isa.program import Program


def compact_registers(program: Program) -> int:
    """Rename registers and predicates to a dense 0..N-1 space in place.

    Returns the per-thread register count after compaction.  Renaming is
    by first appearance in layout order, which keeps listings readable.
    """
    reg_map: dict[int, int] = {}
    pred_map: dict[int, int] = {}

    def map_reg(reg: Register) -> Register:
        if reg.index not in reg_map:
            reg_map[reg.index] = len(reg_map)
        return Register(reg_map[reg.index])

    def map_pred(pred: Predicate) -> Predicate:
        if pred.index not in pred_map:
            pred_map[pred.index] = len(pred_map)
        return Predicate(pred_map[pred.index])

    def map_operand(op):
        if isinstance(op, Register):
            return map_reg(op)
        if isinstance(op, Predicate):
            return map_pred(op)
        return op

    for instr in program.instructions():
        if isinstance(instr.dst, (Register, Predicate)):
            instr.dst = map_operand(instr.dst)
        instr.srcs = [map_operand(s) for s in instr.srcs]
        if instr.guard is not None:
            instr.guard = map_pred(instr.guard)

    count = len(reg_map)
    program.num_registers = count
    return count
