"""Pipeline stage extraction and planning (Section IV-A, Figure 9).

The planner decides, for every global load in the kernel:

* whether it is extracted into a memory-access pipeline stage
  (:class:`LoadPlan`), and if so at which indirection depth,
* which queue delivers its value, and to which consumer stage, and
* which instructions form the stage's closure (address backslice plus
  duplicated ineligible boundary loads) — the paper's "collection".

Planning is a fixpoint: extracting a load is only legal if its value is
consumed by exactly one downstream stage (a register-file queue entry
can be popped once), and demoting one load can change the consumer sets
of others, so the loop iterates until stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler.backslice import address_backslice
from repro.core.compiler.eligibility import (
    EligibilityReport,
    classify_loads,
)
from repro.core.compiler.merging import group_by_depth
from repro.core.compiler.pdg import PDG
from repro.core.compiler.skeleton import compute_skeleton
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, opcode_info

COMPUTE_STAGE = -1  # sentinel: resolved to the last stage id at the end


@dataclass
class LoadPlan:
    """Extraction decision for one global load."""

    load: Instruction
    stage: int
    depth: int
    is_tile: bool
    queue_id: int | None = None
    consumer_stage: int | None = None


@dataclass
class ExtractionPlan:
    """Complete stage plan for one kernel.

    ``num_stages`` includes the final compute stage; memory stages are
    ``0 .. num_stages - 2`` in increasing indirection depth.
    """

    skeleton: set[int]
    eligibility: EligibilityReport
    num_stages: int
    loads: list[LoadPlan] = field(default_factory=list)
    stage_closures: list[set[int]] = field(default_factory=list)
    demoted: list[Instruction] = field(default_factory=list)

    @property
    def compute_stage(self) -> int:
        return self.num_stages - 1

    def plan_for(self, uid: int) -> LoadPlan | None:
        for plan in self.loads:
            if plan.load.uid == uid:
                return plan
        return None


def _compute_depths(pdg: PDG) -> dict[int, int]:
    """Memory-indirection depth for every global load.

    depth = 1 + max depth of loads feeding the address (0 if none).
    Loop-carried back-references are cut (treated as depth 0); such
    loads are self-cycle ineligible anyway.
    """
    depths: dict[int, int] = {}
    visiting: set[int] = set()

    def depth_of(load: Instruction) -> int:
        if load.uid in depths:
            return depths[load.uid]
        if load.uid in visiting:
            return 0
        visiting.add(load.uid)
        backslice = address_backslice(pdg, load)
        best = 0
        for boundary in backslice.boundary_loads:
            best = max(best, depth_of(boundary))
        visiting.discard(load.uid)
        depths[load.uid] = 1 + best
        return depths[load.uid]

    for load in pdg.global_loads():
        depth_of(load)
    return depths


def _stage_closure(
    pdg: PDG, load: Instruction, eligible_uids: set[int]
) -> set[int]:
    """The paper's phase-1 "collection" for one extracted load.

    Address-backslice instructions, plus ineligible boundary loads
    duplicated into the stage together with their own backslices
    (eligible boundaries are delivered via queues instead).
    """
    closure: set[int] = set()
    work = [load]
    seen: set[int] = {load.uid}
    while work:
        current = work.pop()
        backslice = address_backslice(pdg, current)
        closure.update(i.uid for i in backslice.instructions)
        for boundary in backslice.boundary_loads:
            if boundary.uid in eligible_uids or boundary.uid in seen:
                continue
            seen.add(boundary.uid)
            closure.add(boundary.uid)
            work.append(boundary)
    return closure


def _compute_live_uids(pdg: PDG, extracted_uids: set[int]) -> set[int]:
    """Instructions live in the compute stage's view of the program.

    Backward reachability from compute-stage roots (side effects,
    control flow) through data edges, with edges out of extracted loads
    cut (their definitions are not produced in the compute stage — the
    queue pop re-defines the register instead, so reaching the extracted
    load itself means the compute stage *consumes* its value).
    """
    roots = []
    for instr in pdg.program.instructions():
        info = opcode_info(instr.opcode)
        side_effect = (
            info.writes_global
            or info.writes_shared
            or info.is_branch
            or info.is_barrier
        )
        if side_effect and instr.uid not in extracted_uids:
            roots.append(instr.uid)
    live: set[int] = set()
    stack = list(roots)
    while stack:
        uid = stack.pop()
        if uid in live:
            continue
        live.add(uid)
        if uid in extracted_uids:
            continue  # do not traverse through an extracted load
        stack.extend(pdg.data_preds.get(uid, ()))
    return live


def plan_extraction(
    pdg: PDG,
    max_stages: int = 16,
    enable_streaming: bool = True,
    enable_tile: bool = True,
) -> ExtractionPlan:
    """Plan pipeline stages for ``pdg.program``.

    ``enable_streaming`` gates fine-grained LDG->queue extraction;
    ``enable_tile`` gates LDGSTS (tile) stage extraction.  With both
    disabled the plan degenerates to a single compute stage.
    """
    skeleton = compute_skeleton(pdg)
    eligibility = classify_loads(pdg, skeleton)
    depths = _compute_depths(pdg)

    candidates: list[Instruction] = []
    for load in eligibility.eligible:
        is_tile = load.opcode is Opcode.LDGSTS
        if is_tile and not enable_tile:
            continue
        if not is_tile and not enable_streaming:
            continue
        if not is_tile and not pdg.data_succs.get(load.uid):
            continue  # dead value: leave to dead-code elimination
        candidates.append(load)

    demoted: list[Instruction] = []
    while True:
        groups, over_budget = group_by_depth(
            depths, candidates, max_stages=max_stages
        )
        if over_budget:
            demoted.extend(over_budget)
            candidates = [c for c in candidates if c not in over_budget]
            continue
        num_stages = len(groups) + 1
        if not groups:
            return ExtractionPlan(
                skeleton=skeleton,
                eligibility=eligibility,
                num_stages=1,
                demoted=demoted,
            )
        result = _try_assign(
            pdg, groups, num_stages, skeleton, depths, eligibility
        )
        if isinstance(result, ExtractionPlan):
            result.demoted = demoted
            return result
        # result is the load to demote; retry without it.
        demoted.append(result)
        candidates = [c for c in candidates if c.uid != result.uid]


def _try_assign(
    pdg: PDG,
    groups: list[list[Instruction]],
    num_stages: int,
    skeleton: set[int],
    depths: dict[int, int],
    eligibility: EligibilityReport,
) -> ExtractionPlan | Instruction:
    """Attempt a full assignment; returns a load to demote on conflict."""
    stage_of_load: dict[int, int] = {}
    for stage, loads in enumerate(groups):
        for load in loads:
            stage_of_load[load.uid] = stage
    eligible_uids = set(stage_of_load)

    closures = [set() for _ in groups]
    closure_stage_of: dict[int, set[int]] = {}
    for stage, loads in enumerate(groups):
        for load in loads:
            closure = _stage_closure(pdg, load, eligible_uids)
            closures[stage].update(closure)
            for uid in closure:
                closure_stage_of.setdefault(uid, set()).add(stage)

    compute_live = _compute_live_uids(pdg, eligible_uids)
    compute_stage = num_stages - 1

    plans: list[LoadPlan] = []
    next_queue = 0
    for stage, loads in enumerate(groups):
        for load in loads:
            if load.opcode is Opcode.LDGSTS:
                plans.append(
                    LoadPlan(
                        load=load,
                        stage=stage,
                        depth=depths[load.uid],
                        is_tile=True,
                    )
                )
                continue
            consumer_stages: set[int] = set()
            for succ_uid in pdg.data_succs.get(load.uid, ()):
                if succ_uid in skeleton:
                    return load  # feeds control: every stage needs it
                for consumer_stage in closure_stage_of.get(succ_uid, ()):
                    consumer_stages.add(consumer_stage)
                if succ_uid in compute_live:
                    consumer_stages.add(compute_stage)
                succ_info = opcode_info(pdg.instr_by_uid[succ_uid].opcode)
                if succ_info.writes_global or succ_info.writes_shared:
                    consumer_stages.add(compute_stage)
            if stage in consumer_stages:
                return load  # value consumed within its own stage: demote
            if len(consumer_stages) != 1:
                return load  # zero or multiple consumer stages: demote
            consumer = consumer_stages.pop()
            if consumer <= stage:
                return load
            plans.append(
                LoadPlan(
                    load=load,
                    stage=stage,
                    depth=depths[load.uid],
                    is_tile=False,
                    queue_id=next_queue,
                    consumer_stage=consumer,
                )
            )
            next_queue += 1
    return ExtractionPlan(
        skeleton=skeleton,
        eligibility=eligibility,
        num_stages=num_stages,
        loads=plans,
        stage_closures=closures,
    )
