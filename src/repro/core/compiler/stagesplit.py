"""Per-stage program construction (pipeline finalization, Section IV-B).

Each pipeline stage receives a copy of the working program rewritten for
its role:

* extracted streaming loads become queue pushes in their producer stage,
  queue pops (``MOV rd, Q``) in their single consumer stage, and vanish
  elsewhere;
* LDGSTS tile transfers stay only in their producer stage;
* all other side-effecting instructions (global/shared stores) stay only
  in the compute stage;
* tagged ``BAR.SYNC`` instructions are rewritten positionally into
  arrive/wait barriers.  With circular buffering the consumer arrives
  the *previous* ring slot's empty barrier at each section start
  (signalling it finished that slot's data), and every slot except the
  last receives an initial empty credit — this is the generation
  protocol that lets the producer fill up to ``depth`` slots ahead of
  the consumer's compute;
* dead code is eliminated (everything not reaching a side effect,
  branch, barrier or queue operation), which realizes the paper's
  "minimum instructions" phase-2 result;
* ``WARP_ID``/``NUM_WARPS`` special registers are rewritten to their
  per-stage equivalents so each stage's warps cover the original work
  distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.compiler.buffering import PHASE_SUFFIXES, phase_suffix
from repro.core.compiler.extraction import ExtractionPlan, LoadPlan
from repro.core.compiler.pdg import build_pdg
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode, opcode_info
from repro.isa.operands import (
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.program import Program

KEY_ATTR = "key"  # original-uid tag surviving Program.clone()


def tag_keys(program: Program) -> None:
    """Stamp every instruction with its uid so clones stay traceable."""
    for instr in program.instructions():
        instr.attrs[KEY_ATTR] = instr.uid


@dataclass
class StageProgram:
    """One pipeline stage's program plus bookkeeping."""

    stage: int
    program: Program
    is_compute: bool
    tile_keys: set[str] = field(default_factory=set)  # produced tiles
    queue_pushes: set[int] = field(default_factory=set)
    queue_pops: set[int] = field(default_factory=set)


def tile_ring(key: str) -> tuple[str, int] | None:
    """``(base, phase)`` of a ring-suffixed tile key, else ``None``.

    Ring keys are ``<base>_<letter>`` with the letter drawn from
    :data:`~repro.core.compiler.buffering.PHASE_SUFFIXES`; anything
    else is a single-buffered key with no ring identity.
    """
    if len(key) >= 3 and key[-2] == "_" and key[-1] in PHASE_SUFFIXES:
        return key[:-2], PHASE_SUFFIXES.index(key[-1])
    return None


def phase_key(base: str, phase: int) -> str:
    """Tile key of ring slot ``phase`` in ring ``base``."""
    return f"{base}{phase_suffix(phase)}"


def ring_depth(key: str, keys: "Iterable[str]") -> int:
    """Ring size of ``key``'s buffer family within ``keys``.

    Counts the phase-suffixed siblings sharing ``key``'s base; a
    single-buffered key (no ring suffix) has depth 1.
    """
    ring = tile_ring(key)
    if ring is None:
        return 1
    base = ring[0]
    depth = 0
    for other in keys:
        other_ring = tile_ring(other)
        if other_ring is not None and other_ring[0] == base:
            depth += 1
    return max(1, depth)


def partner_tile_key(key: str, depth: int = 2) -> str:
    """The *previous* ring slot's tile key (modulo the ring depth).

    This is the slot a consumer vacated right before entering ``key``'s
    section, so the consumer's section-entry arrival credits it.  For
    ``depth=2`` this is the classic A<->B double-buffer swap.
    """
    ring = tile_ring(key)
    if ring is None:
        return key
    base, phase = ring
    return phase_key(base, (phase - 1) % max(1, depth))


def build_stage_programs(
    work: Program, plan: ExtractionPlan
) -> list[StageProgram]:
    """Split the tagged working program into per-stage programs."""
    load_plans: dict[int, LoadPlan] = {p.load.uid: p for p in plan.loads}
    tile_producers = _tile_producer_stages(plan)
    stages: list[StageProgram] = []
    for stage in range(plan.num_stages):
        stages.append(
            _build_one_stage(work, plan, load_plans, tile_producers, stage)
        )
    return stages


def _tile_producer_stages(plan: ExtractionPlan) -> dict[str, set[int]]:
    producers: dict[str, set[int]] = {}
    for load_plan in plan.loads:
        if not load_plan.is_tile:
            continue
        key = load_plan.load.attrs.get("tile_key")
        if key is not None:
            producers.setdefault(key, set()).add(load_plan.stage)
    return producers


def _build_one_stage(
    work: Program,
    plan: ExtractionPlan,
    load_plans: dict[int, LoadPlan],
    tile_producers: dict[str, set[int]],
    stage: int,
) -> StageProgram:
    is_compute = stage == plan.compute_stage
    program = work.clone()
    program.name = f"{work.name}/s{stage}"
    result = StageProgram(stage=stage, program=program, is_compute=is_compute)

    for block in program.blocks:
        new_instrs: list[Instruction] = []
        for instr in block.instructions:
            rewritten = _rewrite_instr(
                instr, stage, is_compute, load_plans, tile_producers, result
            )
            new_instrs.extend(rewritten)
        block.instructions = new_instrs

    _rewrite_special_regs(program)
    _eliminate_dead_code(program)
    _annotate_categories(program, plan, is_compute)
    return result


def _rewrite_instr(
    instr: Instruction,
    stage: int,
    is_compute: bool,
    load_plans: dict[int, LoadPlan],
    tile_producers: dict[str, set[int]],
    result: StageProgram,
) -> list[Instruction]:
    key = instr.attrs.get(KEY_ATTR)
    load_plan = load_plans.get(key)

    if load_plan is not None and load_plan.is_tile:
        if load_plan.stage != stage:
            return []
        tile_key = instr.attrs.get("tile_key")
        if tile_key is not None:
            result.tile_keys.add(tile_key)
        return [instr]

    if load_plan is not None:
        if load_plan.stage == stage:
            # Producer: decoupled load pushing into the named queue.
            instr.dst = QueueRef(load_plan.queue_id)
            result.queue_pushes.add(load_plan.queue_id)
            return [instr]
        if load_plan.consumer_stage == stage:
            pop = Instruction(
                Opcode.MOV,
                dst=instr.dst,
                srcs=[QueueRef(load_plan.queue_id)],
                guard=instr.guard,
                guard_negated=instr.guard_negated,
                category=InstrCategory.QUEUE,
                attrs={KEY_ATTR: key},
            )
            result.queue_pops.add(load_plan.queue_id)
            return [pop]
        return []

    if instr.opcode is Opcode.BAR_SYNC and instr.attrs.get("tile_roles"):
        return _rewrite_tile_sync(instr, stage, tile_producers)

    info = opcode_info(instr.opcode)
    if (info.writes_global or info.writes_shared) and not is_compute:
        # Unextracted stores belong to the final (compute) stage only.
        return []
    return [instr]


def _rewrite_tile_sync(
    instr: Instruction, stage: int, tile_producers: dict[str, set[int]]
) -> list[Instruction]:
    arrives: list[Instruction] = []
    waits: list[Instruction] = []
    untransformed = False
    for role, key in instr.attrs["tile_roles"]:
        producers = tile_producers.get(key, set())
        if not producers:
            untransformed = True
            continue
        is_producer = stage in producers
        if role == "pre":
            if is_producer:
                waits.append(_barrier(Opcode.BAR_WAIT, f"{key}_empty", instr))
            else:
                depth = ring_depth(key, tile_producers)
                arrives.append(
                    _barrier(
                        Opcode.BAR_ARRIVE,
                        f"{partner_tile_key(key, depth)}_empty",
                        instr,
                    )
                )
        else:  # post
            if is_producer:
                arrives.append(
                    _barrier(Opcode.BAR_ARRIVE, f"{key}_filled", instr)
                )
            else:
                waits.append(_barrier(Opcode.BAR_WAIT, f"{key}_filled", instr))
    if untransformed and not arrives and not waits:
        return [instr]
    # Arrivals first so cross-stage waits cannot deadlock.
    return arrives + waits


def _barrier(opcode: Opcode, barrier_id: str, origin: Instruction) -> Instruction:
    return Instruction(
        opcode,
        barrier_id=barrier_id,
        category=InstrCategory.SYNC,
        attrs={KEY_ATTR: origin.attrs.get(KEY_ATTR)},
    )


_SPECIAL_REWRITES = {
    SpecialReg.WARP_ID: SpecialReg.STAGE_WARP_ID,
    SpecialReg.NUM_WARPS: SpecialReg.NUM_STAGE_WARPS,
}


def _rewrite_special_regs(program: Program) -> None:
    for instr in program.instructions():
        for pos, src in enumerate(instr.srcs):
            if isinstance(src, SpecialRegister):
                target = _SPECIAL_REWRITES.get(src.which)
                if target is not None:
                    instr.srcs[pos] = SpecialRegister(target)


def _eliminate_dead_code(program: Program) -> None:
    """Drop instructions whose results cannot reach a root.

    Roots: stores, queue operations, branches, barriers, TMA configs,
    EXIT.  Pure instructions (including loads) whose values are dead in
    this stage disappear — this is what leaves each memory stage with
    just its address chains plus the control skeleton.
    """
    pdg = build_pdg(program)
    live: set[int] = set()
    stack: list[int] = []
    for instr in program.instructions():
        info = opcode_info(instr.opcode)
        is_root = (
            info.writes_global
            or info.writes_shared
            or info.is_branch
            or info.is_barrier
            or instr.opcode is Opcode.EXIT
            or instr.opcode in (Opcode.TMA_TILE, Opcode.TMA_STREAM,
                                Opcode.TMA_GATHER)
            or instr.queue_pushes()
            or instr.queue_pops()
        )
        if is_root:
            live.add(instr.uid)
            stack.append(instr.uid)
    while stack:
        uid = stack.pop()
        for pred in pdg.data_preds.get(uid, ()):
            if pred not in live:
                live.add(pred)
                stack.append(pred)
    for block in program.blocks:
        block.instructions = [
            i for i in block.instructions if i.uid in live
        ]


_ADDR_OPERAND_POS = {
    Opcode.LDG: (0,),
    Opcode.STG: (0,),
    Opcode.LDS: (0,),
    Opcode.STS: (0,),
    Opcode.LDGSTS: (0, 1),
}


def _annotate_categories(
    program: Program, plan: ExtractionPlan, is_compute: bool
) -> None:
    """Tag address-generation instructions for the Figure 19 breakdown.

    Integer-pipe instructions in the data backslice of any memory
    address operand are ADDRGEN; control-skeleton arithmetic keeps the
    CONTROL tag.
    """
    pdg = build_pdg(program)
    addr_roots: set[int] = set()
    for instr in program.instructions():
        positions = _ADDR_OPERAND_POS.get(instr.opcode)
        if positions is None:
            continue
        for pos in positions:
            operand = instr.srcs[pos]
            if isinstance(operand, Register):
                for pred in pdg.data_preds.get(instr.uid, ()):
                    pred_instr = pdg.instr_by_uid[pred]
                    if operand in pred_instr.defined_registers():
                        addr_roots.add(pred)
    addr_slice: set[int] = set()
    stack = list(addr_roots)
    while stack:
        uid = stack.pop()
        if uid in addr_slice:
            continue
        addr_slice.add(uid)
        stack.extend(pdg.data_preds.get(uid, ()))
    skeleton_keys = plan.skeleton
    for instr in program.instructions():
        if instr.attrs.get(KEY_ATTR) in skeleton_keys:
            if instr.opcode not in (Opcode.BAR_SYNC,):
                if instr.info.unit in (FuncUnit.INT, FuncUnit.FP):
                    instr.category = InstrCategory.CONTROL
            continue
        if (
            instr.uid in addr_slice
            and instr.info.unit is FuncUnit.INT
            and instr.category is InstrCategory.COMPUTE
        ):
            instr.category = InstrCategory.ADDRGEN
