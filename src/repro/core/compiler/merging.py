"""Stage merging by memory-indirection depth (Section IV-B).

Optimized kernels can contain tens to hundreds of static global loads;
one stage per load would never fit on an SM.  Following the paper (and
OUTRIDER), loads with the same level of memory indirection are merged
into a single memory-access stage: depth-1 loads (addresses computed
from arithmetic only) form the first stage, depth-2 loads (addresses
derived from one loaded value) the second, and so on.  The final
pipeline is ``[depth-1 stage, depth-2 stage, ..., compute stage]``.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction


def group_by_depth(
    depths: dict[int, int], loads: list[Instruction], max_stages: int
) -> tuple[list[list[Instruction]], list[Instruction]]:
    """Group eligible loads into memory stages by indirection depth.

    Returns ``(stage_groups, demoted)`` where ``stage_groups[k]`` holds
    the loads of the *k*-th memory stage (ascending depth) and
    ``demoted`` holds loads whose depth exceeds the stage budget
    (``max_stages`` minus one slot reserved for the compute stage); those
    stay in the compute stage un-specialized.
    """
    if max_stages < 2:
        return [], list(loads)
    max_memory_stages = max_stages - 1
    by_depth: dict[int, list[Instruction]] = {}
    for load in loads:
        by_depth.setdefault(depths[load.uid], []).append(load)
    stage_groups: list[list[Instruction]] = []
    demoted: list[Instruction] = []
    for depth in sorted(by_depth):
        if len(stage_groups) < max_memory_stages:
            stage_groups.append(by_depth[depth])
        else:
            demoted.extend(by_depth[depth])
    return stage_groups, demoted
