"""Pipeline finalization: jump table, combined program, thread-block spec.

The stage programs are concatenated into one SASS program with a *jump
table* at the top that dispatches each warp to its stage's code section
using the ``PIPE_STAGE_ID`` special register (Section IV-B).  The
thread-block specification (Table I) is populated with the stage count,
per-stage register allocations, named queues, SMEM usage, and the
arrive/wait barrier metadata derived from the buffering transformation.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.verifier import structural_error
from repro.core.compiler.regalloc import compact_registers
from repro.core.compiler.stagesplit import (
    StageProgram,
    ring_depth,
    tile_ring,
)
from repro.core.specs import (
    NamedQueueSpec,
    ThreadBlockSpec,
    contiguous_stage_assignment,
)
from repro.errors import CompilerError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrCategory, Opcode
from repro.isa.operands import (
    Immediate,
    Predicate,
    QueueRef,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.program import Program


def finalize_pipeline(
    name: str,
    stages: list[StageProgram],
    num_warps: int,
    queue_size: int,
    smem_words: int,
    smem_buffers: dict[str, tuple[int, int]],
) -> Program:
    """Build the combined warp-specialized program with its spec attached.

    ``num_warps`` is the original thread block's warp count; every stage
    receives that many warps (the paper splits each original warp into
    one warp per stage, forming pipeline slices).
    """
    if not stages:
        raise CompilerError("cannot finalize an empty pipeline")
    num_stages = len(stages)

    stage_registers = []
    for stage_prog in stages:
        stage_registers.append(max(1, compact_registers(stage_prog.program)))

    combined = Program(
        name=f"{name}@wasp",
        smem_words=smem_words,
        smem_buffers=dict(smem_buffers),
    )
    # One dispatch block per non-zero stage (a block may hold only one
    # branch); stage 0 is reached by falling through the whole table.
    jt_pred = Predicate(_max_pred_index(stages) + 1)
    for stage_prog in stages[1:]:
        stage = stage_prog.stage
        jump = combined.block(f"jump_table_{stage}")
        jump.append(
            Instruction(
                Opcode.ISETP,
                dst=jt_pred,
                srcs=[
                    SpecialRegister(SpecialReg.PIPE_STAGE_ID),
                    Immediate(stage),
                ],
                attrs={"cmp": "eq"},
                category=InstrCategory.CONTROL,
            )
        )
        entry = stage_prog.program.entry.label
        jump.append(
            Instruction(
                Opcode.BRA,
                target=f"s{stage}_{entry}",
                guard=jt_pred,
                category=InstrCategory.CONTROL,
            )
        )

    for stage_prog in stages:
        prefix = f"s{stage_prog.stage}_"
        for block in stage_prog.program.blocks:
            new_block = combined.block(prefix + block.label)
            for instr in block.instructions:
                if instr.opcode is Opcode.BRA and instr.target is not None:
                    instr.target = prefix + instr.target
                new_block.instructions.append(instr)
        _ensure_stage_exits(combined, prefix, stage_prog)

    spec = build_spec(
        stages,
        num_warps=num_warps,
        queue_size=queue_size,
        stage_registers=stage_registers,
        smem_words=smem_words,
    )
    combined.tb_spec = spec
    combined.num_registers = max(stage_registers)
    combined.validate()
    return combined


def _ensure_stage_exits(
    combined: Program, prefix: str, stage_prog: StageProgram
) -> None:
    """Guarantee each stage section cannot fall into the next section."""
    last_label = prefix + stage_prog.program.blocks[-1].label
    last_block = combined.find_block(last_label)
    term = last_block.terminator
    if term is None or term.opcode is not Opcode.EXIT:
        if term is None:
            last_block.append(Instruction(Opcode.EXIT))
        elif term.guard is not None:
            last_block.append(Instruction(Opcode.EXIT))
        # An unconditional BRA/EXIT terminator cannot fall through.


def _max_pred_index(stages: list[StageProgram]) -> int:
    top = -1
    for stage_prog in stages:
        top = max(top, stage_prog.program.max_predicate_index())
    return top


def build_spec(
    stages: list[StageProgram],
    num_warps: int,
    queue_size: int,
    stage_registers: list[int],
    smem_words: int,
) -> ThreadBlockSpec:
    """Populate the Table-I thread-block specification."""
    num_stages = len(stages)
    queues = _collect_queues(stages, queue_size)
    expected, initial = _barrier_metadata(stages, num_warps)
    return ThreadBlockSpec(
        num_stages=num_stages,
        warps_per_stage=contiguous_stage_assignment(
            num_stages, [num_warps] * num_stages
        ),
        stage_registers=stage_registers,
        queues=queues,
        smem_words=smem_words,
        barrier_expected=expected,
        barrier_initial=initial,
    )


def _collect_queues(
    stages: list[StageProgram], queue_size: int
) -> list[NamedQueueSpec]:
    push_stage: dict[int, int] = {}
    pop_stage: dict[int, int] = {}
    for stage_prog in stages:
        for instr in stage_prog.program.instructions():
            if isinstance(instr.dst, QueueRef):
                push_stage[instr.dst.queue_id] = stage_prog.stage
            for pop in instr.queue_pops():
                pop_stage[pop.queue_id] = stage_prog.stage
    queues = []
    for queue_id in sorted(push_stage):
        if queue_id not in pop_stage:
            raise structural_error(Diagnostic(
                rule="WASP-Q003",
                message=f"queue {queue_id} is pushed (stage "
                        f"{push_stage[queue_id]}) but never popped",
                stage=push_stage[queue_id],
                hint="every queue needs exactly one consumer stage",
            ))
        queues.append(
            NamedQueueSpec(
                queue_id=queue_id,
                src_stage=push_stage[queue_id],
                dst_stage=pop_stage[queue_id],
                size=queue_size,
            )
        )
    orphan_pops = set(pop_stage) - set(push_stage)
    if orphan_pops:
        first = min(orphan_pops)
        raise structural_error(Diagnostic(
            rule="WASP-Q003",
            message=f"queues {sorted(orphan_pops)} are popped but never "
                    "pushed",
            stage=pop_stage[first],
            hint="every queue needs exactly one producer stage",
        ))
    return queues


def _barrier_metadata(
    stages: list[StageProgram], num_warps: int
) -> tuple[dict[str, int], dict[str, int]]:
    """Arrive/wait barrier expected counts and initial credits.

    For a tile key K produced by stage set P:
      * ``K_filled`` is arrived by producers: expected = |P| * num_warps.
      * ``K_empty`` is arrived by consumers (every non-producer stage):
        expected = (num_stages - |P|) * num_warps.
      * Circular buffering at ring depth N: slots 0..N-2 start with a
        full generation of empty credit (the producer may fill them
        immediately); slot N-1's first credit comes from the consumers'
        spurious first-section arrival, which credits the *previous*
        slot of the one being entered.  Total initial credit is thus N
        generations — the whole ring may be filled before the first
        consume, after which each drained slot releases exactly one
        refill.  Depth 2 is the classic double-buffer protocol (copy A
        credited, copy B spuriously arrived).
    """
    producer_stages: dict[str, set[int]] = {}
    for stage_prog in stages:
        for key in stage_prog.tile_keys:
            producer_stages.setdefault(key, set()).add(stage_prog.stage)
    num_stages = len(stages)
    expected: dict[str, int] = {}
    initial: dict[str, int] = {}
    for key, producers in producer_stages.items():
        consumers = num_stages - len(producers)
        expected[f"{key}_filled"] = len(producers) * num_warps
        expected[f"{key}_empty"] = max(1, consumers * num_warps)
        ring = tile_ring(key)
        if ring is not None:
            depth = ring_depth(key, producer_stages)
            if depth >= 2 and ring[1] < depth - 1:
                initial[f"{key}_empty"] = expected[f"{key}_empty"]
    return expected, initial
