"""Control-skeleton computation.

Every pipeline stage must reproduce the original program's control flow
so producers and consumers execute their queue operations the same
number of times (the paper: "control flow instructions ... are
replicated across both warps, to maintain coherent execution").  The
*control skeleton* is the set of instructions every stage therefore
carries: branches, EXITs, thread-block barriers, and the transitive data
backslices of branch conditions.

If a global load sits inside the skeleton (a data-dependent trip count,
e.g. CSR row pointers), the load itself is replicated into every stage —
each stage issues its own copy — which is why such loads are ineligible
for extraction (:mod:`repro.core.compiler.eligibility`).
"""

from __future__ import annotations

from repro.core.compiler.pdg import PDG
from repro.isa.opcodes import Opcode

_SKELETON_OPCODES = (Opcode.BRA, Opcode.EXIT, Opcode.BAR_SYNC)


def compute_skeleton(pdg: PDG) -> set[int]:
    """Uids of the control-skeleton instructions of ``pdg.program``."""
    skeleton: set[int] = set()
    stack: list[int] = []
    for instr in pdg.program.instructions():
        if instr.opcode in _SKELETON_OPCODES:
            skeleton.add(instr.uid)
            stack.append(instr.uid)
    while stack:
        uid = stack.pop()
        for pred_uid in pdg.data_preds.get(uid, ()):
            if pred_uid not in skeleton:
                skeleton.add(pred_uid)
                stack.append(pred_uid)
    return skeleton
