"""WASP-TMA loop offloading (Sections III-E and IV-A).

After stage splitting, memory-access stages often consist of a single
self-loop issuing one decoupled load per iteration with affine address
arithmetic.  This pass recognizes those loops and replaces them with one
WASP-TMA configuration instruction, eliminating the per-iteration
address-generation and control instructions (the dynamic-instruction
reduction of Figure 19):

* **stream**: ``for i: LDG Q, [base + c*i]`` becomes
  ``TMA.STREAM Q, [addr0, count, stride]``;
* **gather**: a stream stage feeding a stage of shape
  ``for i: t = pop(Qa); LDG Qb, [t + data_base]`` is fused into a single
  ``TMA.GATHER Qb, [idx0, data_base, count, stride]`` in the earlier
  stage, emptying the middle stage (Figure 8c).

Detection is conservative: any instruction the linear model cannot
prove affine, any guarded load, or any loop value live after the loop
aborts the offload and the stage keeps its software loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.compiler.pdg import build_pdg
from repro.core.compiler.stagesplit import KEY_ATTR, StageProgram
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode
from repro.isa.operands import (
    Immediate,
    Operand,
    QueueRef,
    Register,
    SpecialRegister,
)
from repro.isa.program import BasicBlock, Program

# A linear expression: {'const': c, 'ind': coeff, ('inv', key): coeff}.
_Lin = dict[object, float]


def _lin_const(value: float) -> _Lin:
    return {"const": float(value)}


def _lin_add(a: _Lin, b: _Lin) -> _Lin:
    out = dict(a)
    for key, coeff in b.items():
        out[key] = out.get(key, 0.0) + coeff
    return {k: v for k, v in out.items() if v != 0.0 or k == "const"}


def _lin_scale(a: _Lin, factor: float) -> _Lin:
    return {k: v * factor for k, v in a.items()}


def _is_const(a: _Lin) -> bool:
    return all(k == "const" for k in a)


def _const_of(a: _Lin) -> float:
    return a.get("const", 0.0)


@dataclass
class _LoopShape:
    """A recognized affine self-loop."""

    block: BasicBlock
    block_idx: int
    load: Instruction
    induction: Register
    step_operand: Operand  # Immediate or loop-invariant Register
    step_update: Instruction
    cmp: Instruction  # the ISETP guarding the backedge
    bound_operand: Operand
    cmp_kind: str  # 'lt' or 'le'
    addr_coeff: int  # coefficient of the induction var in the address
    addr_chain: list[Instruction]  # in-block backslice of the address
    pop: Instruction | None = None  # gather middle stage: the queue pop
    pop_coeff: int = 0  # coefficient of the popped value in the address


@dataclass
class OffloadReport:
    """What the offload pass did to one pipeline."""

    streams: int = 0
    gathers: int = 0
    dropped_stages: list[int] = None

    def __post_init__(self) -> None:
        if self.dropped_stages is None:
            self.dropped_stages = []


def offload_pipeline(stages: list[StageProgram]) -> OffloadReport:
    """Apply WASP-TMA offloading to every memory stage of a pipeline.

    Mutates the stage programs in place.  Stage dropping (after gather
    fusion empties a middle stage) is the caller's responsibility — this
    function only rewrites programs; use
    :func:`repro.core.compiler.pipeline.drop_empty_stages`.
    """
    report = OffloadReport()
    shapes: dict[int, list[_LoopShape]] = {}
    for stage_prog in stages:
        if stage_prog.is_compute:
            continue
        shapes[stage_prog.stage] = _find_affine_loops(stage_prog.program)

    # Gather fusion first: a middle-stage indexed loop plus its feeding
    # stream loop collapse into one TMA.GATHER in the feeding stage.
    for stage_prog in stages:
        for shape in list(shapes.get(stage_prog.stage, ())):
            if shape.pop is None:
                continue
            feeder = _find_feeder(stages, shapes, shape)
            if feeder is None:
                continue
            feeder_prog, feeder_shape = feeder
            if _fuse_gather(feeder_prog, feeder_shape, stage_prog, shape):
                shapes[feeder_prog.stage].remove(feeder_shape)
                shapes[stage_prog.stage].remove(shape)
                report.gathers += 1

    # Remaining plain stream loops.
    for stage_prog in stages:
        for shape in shapes.get(stage_prog.stage, ()):
            if shape.pop is not None:
                continue
            if _offload_stream(stage_prog.program, shape):
                report.streams += 1
    return report


# -- loop recognition -----------------------------------------------------


def _find_affine_loops(program: Program) -> list[_LoopShape]:
    shapes = []
    for idx, block in enumerate(program.blocks):
        shape = _match_loop(program, block, idx)
        if shape is not None:
            shapes.append(shape)
    return shapes


def _match_loop(
    program: Program, block: BasicBlock, block_idx: int
) -> _LoopShape | None:
    term = block.terminator
    if (
        term is None
        or term.opcode is not Opcode.BRA
        or term.target != block.label
        or term.guard is None
        or term.guard_negated
    ):
        return None
    loads = []
    pops = []
    cmp = None
    for instr in block.instructions:
        if instr.opcode is Opcode.LDG and isinstance(instr.dst, QueueRef):
            loads.append(instr)
        elif instr.queue_pops():
            pops.append(instr)
        elif instr.opcode is Opcode.ISETP:
            if instr.dst == term.guard:
                cmp = instr
        elif instr.opcode is Opcode.BRA:
            pass
        elif instr.info.unit is not FuncUnit.INT or instr.guard is not None:
            return None  # only pure, unguarded integer arithmetic allowed
        elif instr.opcode is Opcode.ISETP:
            return None
    if len(loads) != 1 or len(pops) > 1 or cmp is None:
        return None
    load = loads[0]
    if load.guard is not None:
        return None
    if cmp.attrs.get("cmp") not in ("lt", "le"):
        return None
    pop = pops[0] if pops else None
    if pop is not None and (
        pop.opcode is not Opcode.MOV or not isinstance(pop.dst, Register)
    ):
        return None

    induction = _find_induction(block)
    if induction is None:
        return None
    ind_reg, step_operand, step_update = induction

    values = _linear_eval(block, ind_reg, pop)
    addr = _operand_lin(load.srcs[0], values, block)
    if addr is None:
        return None
    addr_coeff = addr.get("ind", 0.0)
    pop_coeff = addr.get("pop", 0.0)
    if addr_coeff != int(addr_coeff) or pop_coeff != int(pop_coeff):
        return None
    if pop is None and (addr_coeff == 0 or pop_coeff != 0):
        return None
    if pop is not None and (pop_coeff != 1 or addr_coeff != 0):
        return None  # gather address must be exactly pop + invariants
    bound = _match_bound(cmp, ind_reg, values, block)
    if bound is None:
        return None
    if _defs_live_outside(program, block):
        return None
    stop_uids = {step_update.uid}
    if pop is not None:
        stop_uids.add(pop.uid)
    addr_chain = _in_block_backslice(block, load.srcs[0], stop_uids)
    if addr_chain is None:
        return None
    return _LoopShape(
        block=block,
        block_idx=block_idx,
        load=load,
        induction=ind_reg,
        step_operand=step_operand,
        step_update=step_update,
        cmp=cmp,
        bound_operand=bound,
        cmp_kind=cmp.attrs["cmp"],
        addr_coeff=int(addr_coeff),
        addr_chain=addr_chain,
        pop=pop,
        pop_coeff=int(pop_coeff),
    )


def _find_induction(
    block: BasicBlock,
) -> tuple[Register, Operand, Instruction] | None:
    """The single ``i = IADD i, step`` self-update in the block."""
    candidates = []
    defs: dict[Register, int] = {}
    for instr in block.instructions:
        for reg in instr.defined_registers():
            defs[reg] = defs.get(reg, 0) + 1
    for instr in block.instructions:
        if instr.opcode is not Opcode.IADD:
            continue
        dst = instr.dst
        if not isinstance(dst, Register) or defs.get(dst, 0) != 1:
            continue
        a, b = instr.srcs
        if a == dst and _is_invariant_operand(b, block, exclude=instr):
            candidates.append((dst, b, instr))
        elif b == dst and _is_invariant_operand(a, block, exclude=instr):
            candidates.append((dst, a, instr))
    if len(candidates) != 1:
        return None
    return candidates[0]


def _is_invariant_operand(
    op: Operand, block: BasicBlock, exclude: Instruction
) -> bool:
    if isinstance(op, (Immediate, SpecialRegister)):
        return True
    if not isinstance(op, Register):
        return False
    for instr in block.instructions:
        if instr is exclude:
            continue
        if op in instr.defined_registers():
            return False
    return True


def _linear_eval(
    block: BasicBlock, induction: Register, pop: Instruction | None
) -> dict[Register, _Lin]:
    """Linear model of every register defined in the block.

    The model is relative to the *entry* value of the induction variable
    ('ind') and, for gather loops, the popped queue value ('pop').
    Non-linear definitions are simply absent from the map.
    """
    values: dict[Register, _Lin] = {induction: {"ind": 1.0}}
    if pop is not None:
        values[pop.dst] = {"pop": 1.0}

    def operand_lin(op: Operand) -> _Lin | None:
        if isinstance(op, Immediate):
            return _lin_const(op.value)
        if isinstance(op, SpecialRegister):
            return {("inv", repr(op)): 1.0}
        if isinstance(op, Register):
            if op in values:
                return values[op]
            if _defined_in_block(op, block):
                return None  # defined later or non-linear
            return {("inv", repr(op)): 1.0}
        return None

    for instr in block.instructions:
        dst = instr.dst
        if not isinstance(dst, Register) or instr is pop:
            continue
        if dst == induction:
            continue
        lin = None
        ops = [operand_lin(s) for s in instr.srcs]
        if instr.opcode in (Opcode.IADD,) and None not in ops:
            lin = _lin_add(ops[0], ops[1])
        elif instr.opcode is Opcode.IMUL and None not in ops:
            if _is_const(ops[0]):
                lin = _lin_scale(ops[1], _const_of(ops[0]))
            elif _is_const(ops[1]):
                lin = _lin_scale(ops[0], _const_of(ops[1]))
        elif instr.opcode is Opcode.IMAD and None not in ops:
            if _is_const(ops[0]):
                lin = _lin_add(_lin_scale(ops[1], _const_of(ops[0])), ops[2])
            elif _is_const(ops[1]):
                lin = _lin_add(_lin_scale(ops[0], _const_of(ops[1])), ops[2])
        elif instr.opcode is Opcode.SHL and None not in ops:
            if _is_const(ops[1]):
                lin = _lin_scale(ops[0], 2.0 ** _const_of(ops[1]))
        elif instr.opcode is Opcode.MOV and ops[0] is not None:
            lin = ops[0]
        if lin is not None:
            values[dst] = lin
    return values


def _defined_in_block(reg: Register, block: BasicBlock) -> bool:
    return any(reg in i.defined_registers() for i in block.instructions)


def _operand_lin(
    op: Operand, values: dict[Register, _Lin], block: BasicBlock
) -> _Lin | None:
    if isinstance(op, Immediate):
        return _lin_const(op.value)
    if isinstance(op, SpecialRegister):
        return {("inv", repr(op)): 1.0}
    if isinstance(op, Register):
        if op in values:
            return values[op]
        if _defined_in_block(op, block):
            return None
        return {("inv", repr(op)): 1.0}
    return None


def _match_bound(
    cmp: Instruction,
    induction: Register,
    values: dict[Register, _Lin],
    block: BasicBlock,
) -> Operand | None:
    """The loop bound operand for ``@(i cmp N) BRA loop`` shapes.

    The comparison's left side must be exactly the (updated) induction
    variable; the right side must be loop-invariant.
    """
    a, b = cmp.srcs
    if a != induction:
        return None
    lin = _operand_lin(b, values, block)
    if lin is None or "ind" in lin or "pop" in lin:
        return None
    if isinstance(b, Register) and _defined_in_block(b, block):
        return None
    return b


def _defs_live_outside(program: Program, block: BasicBlock) -> bool:
    pdg = build_pdg(program)
    block_uids = {i.uid for i in block.instructions}
    for instr in block.instructions:
        for succ in pdg.data_succs.get(instr.uid, ()):
            if succ not in block_uids:
                return True
    return False


def _in_block_backslice(
    block: BasicBlock, addr: Operand, stop_uids: set[int]
) -> list[Instruction] | None:
    """In-block instructions computing ``addr``, in program order.

    Returns ``None`` if the chain touches the induction update or any
    non-arithmetic instruction (those cannot be hoisted to a preheader).
    """
    if not isinstance(addr, Register):
        return []
    needed: set[int] = set()
    defs: dict[Register, Instruction] = {}
    for instr in block.instructions:
        for reg in instr.defined_registers():
            defs[reg] = instr  # last def wins; loop bodies define once
    work = [addr]
    seen_regs: set[Register] = set()
    while work:
        reg = work.pop()
        if reg in seen_regs:
            continue
        seen_regs.add(reg)
        instr = defs.get(reg)
        if instr is None:
            continue  # loop-invariant: defined in the preheader
        if instr.uid in stop_uids:
            continue  # the induction variable itself; read entry value
        if instr.info.unit is not FuncUnit.INT or instr.queue_pops():
            return None
        needed.add(instr.uid)
        work.extend(instr.used_registers())
    return [i for i in block.instructions if i.uid in needed]


# -- code generation ------------------------------------------------------


def _emit_count(
    out: list[Instruction],
    shape: _LoopShape,
    fresh: "_RegAllocator",
) -> Register:
    """Emit preheader code computing the loop trip count.

    trips = max(1, ceil((N - i0 [+1 for le]) / step)), reading the
    induction variable's entry value ``i0`` directly (the preheader runs
    before the loop would have).
    """
    diff = fresh.reg()
    out.append(
        Instruction(
            Opcode.IMAD,
            dst=diff,
            srcs=[shape.induction, Immediate(-1), shape.bound_operand],
        )
    )
    if shape.cmp_kind == "le":
        bumped = fresh.reg()
        out.append(
            Instruction(Opcode.IADD, dst=bumped, srcs=[diff, Immediate(1)])
        )
        diff = bumped
    if isinstance(shape.step_operand, Immediate):
        rounded = fresh.reg()
        out.append(
            Instruction(
                Opcode.IADD,
                dst=rounded,
                srcs=[diff, Immediate(shape.step_operand.value - 1)],
            )
        )
    else:
        plus_step = fresh.reg()
        out.append(
            Instruction(
                Opcode.IADD, dst=plus_step, srcs=[diff, shape.step_operand]
            )
        )
        rounded = fresh.reg()
        out.append(
            Instruction(
                Opcode.IADD, dst=rounded, srcs=[plus_step, Immediate(-1)]
            )
        )
    quotient = fresh.reg()
    out.append(
        Instruction(
            Opcode.IDIV, dst=quotient, srcs=[rounded, shape.step_operand]
        )
    )
    count = fresh.reg()
    out.append(
        Instruction(Opcode.MAX, dst=count, srcs=[quotient, Immediate(1)])
    )
    return count


class _RegAllocator:
    """Fresh registers beyond a program's current maximum."""

    def __init__(self, program: Program) -> None:
        self._next = program.max_register_index() + 1

    def reg(self) -> Register:
        reg = Register(self._next)
        self._next += 1
        return reg


def _emit_stride(
    out: list[Instruction], shape: _LoopShape, coeff: int, fresh: _RegAllocator
) -> Operand:
    if isinstance(shape.step_operand, Immediate):
        return Immediate(int(shape.step_operand.value) * coeff)
    if coeff == 1:
        return shape.step_operand
    stride = fresh.reg()
    out.append(
        Instruction(
            Opcode.IMUL,
            dst=stride,
            srcs=[shape.step_operand, Immediate(coeff)],
        )
    )
    return stride


def _hoist_addr_chain(
    out: list[Instruction], shape: _LoopShape, fresh: _RegAllocator
) -> Operand:
    """Copy the address chain to the preheader; returns the base operand.

    The copies read the entry values of the induction variable and loop
    invariants, computing the first iteration's address vector.
    """
    rename: dict[Register, Register] = {}
    for instr in shape.addr_chain:
        clone = instr.clone()
        clone.srcs = [rename.get(s, s) if isinstance(s, Register) else s
                      for s in clone.srcs]
        assert isinstance(clone.dst, Register)
        new_dst = fresh.reg()
        rename[clone.dst] = new_dst
        clone.dst = new_dst
        clone.category = InstrCategory.TMA
        out.append(clone)
    addr = shape.load.srcs[0]
    if isinstance(addr, Register):
        return rename.get(addr, addr)
    return addr


def _offload_stream(program: Program, shape: _LoopShape) -> bool:
    """Replace a stream loop with a TMA.STREAM configuration."""
    fresh = _RegAllocator(program)
    preheader: list[Instruction] = []
    base = _hoist_addr_chain(preheader, shape, fresh)
    count = _emit_count(preheader, shape, fresh)
    stride = _emit_stride(preheader, shape, shape.addr_coeff, fresh)
    preheader.append(
        Instruction(
            Opcode.TMA_STREAM,
            dst=shape.load.dst,
            srcs=[base, count, stride],
            category=InstrCategory.TMA,
            attrs={KEY_ATTR: shape.load.attrs.get(KEY_ATTR)},
        )
    )
    shape.block.instructions = preheader
    return True


def _find_feeder(
    stages: list[StageProgram],
    shapes: dict[int, list[_LoopShape]],
    gather: _LoopShape,
) -> tuple[StageProgram, _LoopShape] | None:
    """The stream loop pushing the queue the gather loop pops."""
    assert gather.pop is not None
    queue_id = gather.pop.queue_pops()[0].queue_id
    for stage_prog in stages:
        for shape in shapes.get(stage_prog.stage, ()):
            if shape.pop is not None:
                continue
            dst = shape.load.dst
            if isinstance(dst, QueueRef) and dst.queue_id == queue_id:
                return stage_prog, shape
    return None


def _invariant_chain(
    program: Program, operand: Operand
) -> list[Instruction] | None:
    """Pure integer chain defining a loop-invariant operand, or None.

    Used to re-materialize the gather's ``data_base`` in the feeding
    stage; only immediates, special registers and integer arithmetic are
    copyable across stages.
    """
    if isinstance(operand, (Immediate, SpecialRegister)):
        return []
    if not isinstance(operand, Register):
        return None
    pdg = build_pdg(program)
    defs: dict[int, Instruction] = {}
    for instr in program.instructions():
        if operand in instr.defined_registers():
            defs[instr.uid] = instr
    if len(defs) != 1:
        return None
    chain: list[Instruction] = []
    seen: set[int] = set()

    def visit(instr: Instruction) -> bool:
        if instr.uid in seen:
            return True
        seen.add(instr.uid)
        if instr.info.unit is not FuncUnit.INT or instr.queue_pops():
            return False
        if instr.guard is not None:
            return False
        for pred_uid in pdg.data_preds.get(instr.uid, ()):
            if not visit(pdg.instr_by_uid[pred_uid]):
                return False
        chain.append(instr)
        return True

    if not visit(next(iter(defs.values()))):
        return None
    return chain


def _fuse_gather(
    feeder_prog: StageProgram,
    feeder_shape: _LoopShape,
    middle_prog: StageProgram,
    gather_shape: _LoopShape,
) -> bool:
    """Fuse a stream stage and an indexed-load stage into TMA.GATHER."""
    assert gather_shape.pop is not None
    # data_base = gather address minus the popped index: re-materialize
    # its defining chain in the feeder stage.
    data_base_op = _gather_data_base(gather_shape)
    if data_base_op is None:
        return False
    chain = _invariant_chain(middle_prog.program, data_base_op)
    if chain is None:
        return False

    fresh = _RegAllocator(feeder_prog.program)
    preheader: list[Instruction] = []
    base = _hoist_addr_chain(preheader, feeder_shape, fresh)
    count = _emit_count(preheader, feeder_shape, fresh)
    stride = _emit_stride(
        preheader, feeder_shape, feeder_shape.addr_coeff, fresh
    )
    rename: dict[Register, Register] = {}
    for instr in chain:
        clone = instr.clone()
        clone.srcs = [rename.get(s, s) if isinstance(s, Register) else s
                      for s in clone.srcs]
        assert isinstance(clone.dst, Register)
        new_dst = fresh.reg()
        rename[clone.dst] = new_dst
        clone.dst = new_dst
        clone.category = InstrCategory.TMA
        preheader.append(clone)
    if isinstance(data_base_op, Register):
        data_base_op = rename.get(data_base_op, data_base_op)

    preheader.append(
        Instruction(
            Opcode.TMA_GATHER,
            dst=gather_shape.load.dst,
            srcs=[base, data_base_op, count, stride],
            category=InstrCategory.TMA,
            attrs={
                KEY_ATTR: gather_shape.load.attrs.get(KEY_ATTR),
                "dest": "rfq",
            },
        )
    )
    feeder_shape.block.instructions = preheader
    if isinstance(feeder_shape.load.dst, QueueRef):
        feeder_prog.queue_pushes.discard(feeder_shape.load.dst.queue_id)
    gather_queue = gather_shape.load.dst
    if isinstance(gather_queue, QueueRef):
        feeder_prog.queue_pushes.add(gather_queue.queue_id)
        middle_prog.queue_pushes.discard(gather_queue.queue_id)
    pop_queue = gather_shape.pop.queue_pops()[0].queue_id
    middle_prog.queue_pops.discard(pop_queue)
    # Empty the middle stage's loop: keep nothing (the loop and its
    # contents move into the feeder's TMA).
    gather_shape.block.instructions = []
    return True


def _gather_data_base(shape: _LoopShape) -> Operand | None:
    """The invariant term of ``addr = pop + data_base``.

    The loop matcher guaranteed coefficient 1 on the popped value; here
    we additionally require the address to be a single IADD of the
    popped register and one invariant operand, so the operand can be
    re-materialized cheaply.
    """
    assert shape.pop is not None
    addr = shape.load.srcs[0]
    if not isinstance(addr, Register):
        return None
    addr_def = None
    for instr in shape.block.instructions:
        if addr in instr.defined_registers():
            addr_def = instr
    if addr_def is None or addr_def.opcode is not Opcode.IADD:
        return None
    a, b = addr_def.srcs
    pop_dst = shape.pop.dst
    if a == pop_dst:
        return b
    if b == pop_dst:
        return a
    return None
