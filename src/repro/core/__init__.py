"""WASP: the paper's primary contribution.

This package implements everything Sections III and IV of the paper add
on top of a baseline GPU:

* :mod:`repro.core.specs` — the extended thread-block specification
  (Table I) with explicit warp-to-pipeline-stage naming (III-A).
* :mod:`repro.core.mapping` — pipeline-aware warp mapping
  (``group_pipeline``) and per-stage register allocation (III-B).
* :mod:`repro.core.rfq` — register-file queues and their scoreboard
  (III-C).
* :mod:`repro.core.scheduling` — pipeline-aware warp scheduling policies
  (III-D).
* :mod:`repro.core.wasp_tma` — WASP-TMA fine-grained address generation
  (III-E).
* :mod:`repro.core.compiler` — the automatic warp-specialization
  compiler (Section IV).
* :mod:`repro.core.area` — the hardware storage-overhead model
  (Table IV).
"""

from repro.core.specs import NamedQueueSpec, ThreadBlockSpec
from repro.core.compiler import WaspCompiler, WaspCompilerOptions

__all__ = [
    "NamedQueueSpec",
    "ThreadBlockSpec",
    "WaspCompiler",
    "WaspCompilerOptions",
]
