"""Figure 20: sensitivity to memory bandwidth (½x / 1x / 2x).

L2 and DRAM bandwidth are scaled together on both the baseline A100 and
the WASP GPU; all six configurations are normalized to the 1x baseline.
The paper's headline observations: WASP at ½ bandwidth reaches the
baseline at 1x for bandwidth-sensitive applications, and WASP extracts
more of the extra bandwidth at 2x.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table, geomean
from repro.workloads import all_benchmarks

FACTORS = (0.5, 1.0, 2.0)


@dataclass
class Fig20Result:
    labels: list[str]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)

    def geomeans(self) -> list[float]:
        return [
            geomean(row[1][idx] for row in self.rows)
            for idx in range(len(self.labels))
        ]

    def value(self, benchmark: str, label: str) -> float:
        idx = self.labels.index(label)
        for name, values in self.rows:
            if name == benchmark:
                return values[idx]
        raise KeyError(benchmark)

    def to_text(self) -> str:
        table_rows = [
            [name] + [f"{v:.2f}" for v in values]
            for name, values in self.rows
        ]
        table_rows.append(["GEOMEAN"] + [f"{v:.2f}" for v in self.geomeans()])
        return format_table(
            ["Benchmark"] + self.labels,
            table_rows,
            title="Figure 20: speedup vs A100 1x under scaled "
                  "L2+DRAM bandwidth",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig20Result:
    """Regenerate Figure 20."""
    names = list(benchmarks or all_benchmarks())
    configs = []
    labels = []
    for base_cfg, tag in (
        (baseline_config(), "A100"), (wasp_gpu_config(), "WASP")
    ):
        for factor in FACTORS:
            configs.append(
                replace(
                    base_cfg,
                    name=f"{tag} {factor:g}x",
                    gpu=base_cfg.gpu.scale_bandwidth(factor),
                )
            )
            labels.append(f"{tag} {factor:g}x")
    sweep = run_sweep(names, scale, configs, jobs=jobs)
    result = Fig20Result(labels=labels)
    reference_idx = labels.index("A100 1x")
    for name in names:
        totals = [
            sweep.total_cycles(name, idx) for idx in range(len(configs))
        ]
        reference = totals[reference_idx]
        result.rows.append((name, [reference / t for t in totals]))
    return result
