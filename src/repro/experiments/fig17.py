"""Figure 17: pipeline-aware warp scheduling policies vs GTO.

All configurations run the full WASP hardware and compiler; only the
scheduling policy differs.  The reference is the baseline
greedy-then-oldest scheduler on the same hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.configs import (
    gto_wasp_hw_config,
    scheduling_policy_configs,
)
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table, geomean
from repro.workloads import all_benchmarks


@dataclass
class Fig17Result:
    policy_names: list[str]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)

    def geomeans(self) -> list[float]:
        return [
            geomean(row[1][idx] for row in self.rows)
            for idx in range(len(self.policy_names))
        ]

    def best_policy(self) -> str:
        means = self.geomeans()
        return self.policy_names[means.index(max(means))]

    def to_text(self) -> str:
        table_rows = [
            [name] + [f"{v:.2f}" for v in values]
            for name, values in self.rows
        ]
        table_rows.append(["GEOMEAN"] + [f"{v:.2f}" for v in self.geomeans()])
        return format_table(
            ["Benchmark"] + self.policy_names,
            table_rows,
            title="Figure 17: scheduling policy speedup over GTO "
                  "(full WASP hardware)",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig17Result:
    """Regenerate Figure 17."""
    names = list(benchmarks or all_benchmarks())
    policies = scheduling_policy_configs()
    configs = [gto_wasp_hw_config()] + policies
    sweep = run_sweep(names, scale, configs, jobs=jobs)
    result = Fig17Result(policy_names=[c.name for c in policies])
    for name in names:
        gto_cycles = sweep.total_cycles(name, 0)
        speedups = [
            gto_cycles / sweep.total_cycles(name, idx)
            for idx in range(1, len(configs))
        ]
        result.rows.append((name, speedups))
    return result
