"""Table II: per-benchmark median / maximum kernel speedup with WASP."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table
from repro.workloads import all_benchmarks, get_benchmark


@dataclass
class Table2Row:
    name: str
    category: str
    num_kernels: int
    median_speedup: float
    max_speedup: float
    description: str


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def to_text(self) -> str:
        return format_table(
            ["Name", "Category", "#Kernels", "Median", "Max", "Description"],
            [
                (
                    r.name, r.category, r.num_kernels,
                    f"{r.median_speedup:.2f}x", f"{r.max_speedup:.2f}x",
                    r.description,
                )
                for r in self.rows
            ],
            title="Table II: kernel speedups with WASP "
                  "(WASP_GPU vs BASELINE, per kernel)",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Table2Result:
    """Regenerate Table II's speedup columns."""
    names = list(benchmarks or all_benchmarks())
    sweep = run_sweep(
        names, scale, [baseline_config(), wasp_gpu_config()], jobs=jobs
    )
    result = Table2Result()
    for name in names:
        benchmark = get_benchmark(name, scale)
        speedups = []
        for kernel in benchmark.kernels:
            base = sweep.kernel_result(name, kernel.name, 0)
            wasp = sweep.kernel_result(name, kernel.name, 1)
            speedups.append(base.cycles / wasp.cycles)
        result.rows.append(
            Table2Row(
                name=benchmark.name,
                category=benchmark.category,
                num_kernels=len(benchmark.kernels),
                median_speedup=statistics.median(speedups),
                max_speedup=max(speedups),
                description=benchmark.description,
            )
        )
    return result
