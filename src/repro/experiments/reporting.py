"""Text rendering and small statistics helpers for experiment results."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width text table (the harness's figure/table renderer)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_cache_report(report) -> str:
    """Render a ``SweepReport`` as a short cache/timing summary.

    Takes the report duck-typed (rather than importing SweepReport) so
    this module stays import-light for the table/figure renderers.
    """
    stats = report.stats
    lines = [
        f"jobs={report.jobs}  tasks={report.num_tasks}  "
        f"wall={report.wall_seconds:.1f}s  "
        f"worker={report.worker_seconds:.1f}s",
        f"trace cache: {stats.memory_hits} memory hits, "
        f"{stats.disk_hits} disk hits, "
        f"{stats.generations} generations, "
        f"{stats.disk_writes} disk writes",
    ]
    slowest = report.slowest_tasks(3)
    if slowest:
        parts = ", ".join(
            f"{t.benchmark}/{t.kernel}[{t.config_name}] {t.seconds:.1f}s"
            for t in slowest
        )
        lines.append(f"slowest: {parts}")
    return "\n".join(lines)
