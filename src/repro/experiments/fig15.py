"""Figure 15: runtime improvement as WASP hardware features are added.

The baseline of this figure is the WASP *compiler alone* on baseline
hardware; each configuration adds one hardware feature cumulatively
(per-stage register allocation, WASP-TMA, register-file queues,
pipeline-aware scheduling + mapping), ending at the full WASP GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.configs import progressive_feature_configs
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table, geomean
from repro.workloads import all_benchmarks


@dataclass
class Fig15Result:
    config_names: list[str]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)

    def geomeans(self) -> list[float]:
        return [
            geomean(row[1][idx] for row in self.rows)
            for idx in range(len(self.config_names))
        ]

    def incremental_geomeans(self) -> list[float]:
        """Speedup each step adds over the previous one."""
        cumulative = self.geomeans()
        increments = [cumulative[0]]
        for prev, curr in zip(cumulative, cumulative[1:]):
            increments.append(curr / prev)
        return increments

    def to_text(self) -> str:
        table_rows = [
            [name] + [f"{v:.2f}" for v in values]
            for name, values in self.rows
        ]
        table_rows.append(["GEOMEAN"] + [f"{v:.2f}" for v in self.geomeans()])
        table_rows.append(
            ["(step gain)"] +
            [f"{v:.2f}" for v in self.incremental_geomeans()]
        )
        return format_table(
            ["Benchmark"] + self.config_names,
            table_rows,
            title="Figure 15: speedup over WASP compiler alone "
                  "(features added progressively)",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig15Result:
    """Regenerate Figure 15."""
    names = list(benchmarks or all_benchmarks())
    configs = progressive_feature_configs()
    sweep = run_sweep(names, scale, configs, jobs=jobs)
    result = Fig15Result(config_names=[c.name for c in configs[1:]])
    for name in names:
        totals = [
            sweep.total_cycles(name, idx) for idx in range(len(configs))
        ]
        reference = totals[0]  # WASP compiler, software-only
        result.rows.append(
            (name, [reference / t for t in totals[1:]])
        )
    return result
