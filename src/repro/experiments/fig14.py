"""Figure 14: overall speedup of the four configurations over BASELINE."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.configs import standard_configs
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table, geomean
from repro.workloads import all_benchmarks


@dataclass
class Fig14Result:
    config_names: list[str]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)

    def geomeans(self) -> list[float]:
        return [
            geomean(row[1][idx] for row in self.rows)
            for idx in range(len(self.config_names))
        ]

    def speedup(self, benchmark: str, config: str) -> float:
        idx = self.config_names.index(config)
        for name, values in self.rows:
            if name == benchmark:
                return values[idx]
        raise KeyError(benchmark)

    def to_text(self) -> str:
        table_rows = [
            [name] + [f"{v:.2f}" for v in values]
            for name, values in self.rows
        ]
        table_rows.append(
            ["GEOMEAN"] + [f"{v:.2f}" for v in self.geomeans()]
        )
        return format_table(
            ["Benchmark"] + self.config_names,
            table_rows,
            title="Figure 14: speedup over BASELINE",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig14Result:
    """Regenerate Figure 14."""
    names = list(benchmarks or all_benchmarks())
    configs = standard_configs()
    sweep = run_sweep(names, scale, configs, jobs=jobs)
    result = Fig14Result(config_names=[c.name for c in configs])
    for name in names:
        totals = [
            sweep.total_cycles(name, idx) for idx in range(len(configs))
        ]
        baseline = totals[0]
        result.rows.append((name, [baseline / t for t in totals]))
    return result
