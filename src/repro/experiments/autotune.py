"""Per-kernel RFQ size auto-tuning (paper Section V-F extension).

Figure 18 notes "the queue size can be individually set per kernel";
the paper evaluates a single global size (32).  This module implements
the per-kernel variant: sweep candidate sizes for each kernel and keep
the fastest, reporting how much headroom per-kernel tuning adds over
the best global size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.runner import GLOBAL_CACHE, run_kernel
from repro.experiments.reporting import format_table, geomean
from repro.workloads import all_benchmarks, get_benchmark

DEFAULT_SIZES = (8, 16, 32, 64)


@dataclass
class AutotuneRow:
    benchmark: str
    kernel: str
    best_size: int
    fixed_speedup: float   # best single global size (32) vs baseline
    tuned_speedup: float   # per-kernel best size vs baseline


@dataclass
class AutotuneResult:
    fixed_size: int
    rows: list[AutotuneRow] = field(default_factory=list)

    def mean_gain(self) -> float:
        """Geomean of tuned/fixed across kernels."""
        return geomean(
            r.tuned_speedup / r.fixed_speedup
            for r in self.rows
            if r.fixed_speedup > 0
        )

    def to_text(self) -> str:
        table_rows = [
            (
                r.benchmark, r.kernel, r.best_size,
                f"{r.fixed_speedup:.2f}x", f"{r.tuned_speedup:.2f}x",
            )
            for r in self.rows
        ]
        table_rows.append(
            ("MEAN GAIN", "", "", "", f"{self.mean_gain():.3f}x")
        )
        return format_table(
            ["Benchmark", "Kernel", "Best size",
             f"Fixed ({self.fixed_size})", "Tuned"],
            table_rows,
            title="Per-kernel RFQ size auto-tuning "
                  "(extension of Figure 18)",
        )


def tune_kernel(
    kernel, base_cycles: float, sizes=DEFAULT_SIZES
) -> tuple[int, float]:
    """Best RFQ size and its speedup over baseline for one kernel."""
    best_size, best_speedup = sizes[0], 0.0
    for size in sizes:
        cfg = wasp_gpu_config(rfq_size=size)
        result = run_kernel(kernel, cfg, GLOBAL_CACHE)
        speedup = base_cycles / result.cycles
        if speedup > best_speedup:
            best_size, best_speedup = size, speedup
    return best_size, best_speedup


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    sizes=DEFAULT_SIZES,
    fixed_size: int = 32,
) -> AutotuneResult:
    """Auto-tune queue sizes per kernel and compare to a global size."""
    base_cfg = baseline_config()
    fixed_cfg = wasp_gpu_config(rfq_size=fixed_size)
    result = AutotuneResult(fixed_size=fixed_size)
    for name in benchmarks or all_benchmarks():
        benchmark = get_benchmark(name, scale)
        for kernel in benchmark.kernels:
            base = run_kernel(kernel, base_cfg, GLOBAL_CACHE)
            fixed = run_kernel(kernel, fixed_cfg, GLOBAL_CACHE)
            best_size, tuned = tune_kernel(kernel, base.cycles, sizes)
            result.rows.append(
                AutotuneRow(
                    benchmark=name,
                    kernel=kernel.name,
                    best_size=best_size,
                    fixed_speedup=base.cycles / fixed.cycles,
                    tuned_speedup=tuned,
                )
            )
    return result
