"""Figure 19: dynamic instructions by category for B / W / T.

B = baseline kernels, W = WASP with software address generation (no
offload), T = WASP-TMA.  Counts are processing-block issue slots
(TMA-offloaded traffic does not consume issue slots, which is exactly
the reduction the figure shows), normalized per benchmark to B.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler import WaspCompilerOptions
from repro.experiments.configs import EvalConfig, baseline_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table
from repro.isa.opcodes import InstrCategory
from repro.sim.config import wasp_gpu
from repro.workloads import all_benchmarks

_CATEGORY_ORDER = [
    InstrCategory.MEMORY,
    InstrCategory.ADDRGEN,
    InstrCategory.CONTROL,
    InstrCategory.COMPUTE,
    InstrCategory.QUEUE,
    InstrCategory.SYNC,
    InstrCategory.TMA,
]


@dataclass
class Fig19Row:
    benchmark: str
    variant: str  # 'B', 'W' or 'T'
    total: int
    by_category: dict[InstrCategory, int]
    normalized_total: float


@dataclass
class Fig19Result:
    rows: list[Fig19Row] = field(default_factory=list)

    def variants_of(self, benchmark: str) -> dict[str, Fig19Row]:
        return {
            r.variant: r for r in self.rows if r.benchmark == benchmark
        }

    def to_text(self) -> str:
        headers = ["Benchmark", "Cfg", "Total", "Norm"] + [
            c.value for c in _CATEGORY_ORDER
        ]
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [row.benchmark, row.variant, row.total,
                 f"{row.normalized_total:.2f}"]
                + [row.by_category.get(c, 0) for c in _CATEGORY_ORDER]
            )
        return format_table(
            headers, table_rows,
            title="Figure 19: dynamic instructions executed "
                  "(B=baseline, W=WASP software addr-gen, T=WASP-TMA)",
        )


def _configs() -> list[EvalConfig]:
    software = WaspCompilerOptions(enable_tma_offload=False)
    hardware = WaspCompilerOptions()
    return [
        baseline_config(),
        EvalConfig("W", software, wasp_gpu()),
        EvalConfig("T", hardware, wasp_gpu()),
    ]


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig19Result:
    """Regenerate Figure 19."""
    names = list(benchmarks or all_benchmarks())
    configs = _configs()
    labels = ["B", "W", "T"]
    sweep = run_sweep(names, scale, configs, jobs=jobs)
    result = Fig19Result()
    for name in names:
        baseline_total = None
        for idx, label in enumerate(labels):
            bench_result = sweep.benchmark_result(name, idx)
            total = 0
            by_category: dict[InstrCategory, int] = {}
            for kres in bench_result.kernels:
                weight = kres.kernel.weight
                total += int(weight * kres.sim.issued_total)
                for cat, count in kres.sim.issued_by_category.items():
                    by_category[cat] = (
                        by_category.get(cat, 0) + int(weight * count)
                    )
            if baseline_total is None:
                baseline_total = max(1, total)
            result.rows.append(
                Fig19Row(
                    benchmark=name,
                    variant=label,
                    total=total,
                    by_category=by_category,
                    normalized_total=total / baseline_total,
                )
            )
    return result
