"""Figure 16: thread-block register footprint, uniform vs per-stage.

For each benchmark's dominant kernel (largest share of baseline
runtime), compare the register footprint of the warp-specialized thread
block under uniform allocation (current GPUs: every warp gets the
maximum stage's count) and WASP's per-stage allocation, both normalized
to the original non-specialized kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.core.mapping import register_footprint
from repro.experiments.configs import baseline_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table
from repro.workloads import all_benchmarks, get_benchmark


@dataclass
class Fig16Row:
    benchmark: str
    kernel: str
    original_regs: int
    uniform_ratio: float    # uniform warp-specialized / original
    per_stage_ratio: float  # WASP per-stage / original
    savings: float          # 1 - per_stage/uniform


@dataclass
class Fig16Result:
    rows: list[Fig16Row] = field(default_factory=list)

    def mean_savings(self) -> float:
        applicable = [r.savings for r in self.rows if r.uniform_ratio > 0]
        return sum(applicable) / len(applicable) if applicable else 0.0

    def to_text(self) -> str:
        table_rows = [
            (
                r.benchmark, r.kernel, r.original_regs,
                f"{r.uniform_ratio:.2f}x", f"{r.per_stage_ratio:.2f}x",
                f"{100 * r.savings:.0f}%",
            )
            for r in self.rows
        ]
        table_rows.append(
            ("MEAN", "", "", "", "", f"{100 * self.mean_savings():.0f}%")
        )
        return format_table(
            ["Benchmark", "Kernel", "OrigRegs", "Uniform", "PerStage",
             "Savings"],
            table_rows,
            title="Figure 16: register footprint per thread block "
                  "(normalized to non-specialized)",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig16Result:
    """Regenerate Figure 16."""
    names = list(benchmarks or all_benchmarks())
    sweep = run_sweep(names, scale, [baseline_config()], jobs=jobs)
    compiler = WaspCompiler(WaspCompilerOptions())
    result = Fig16Result()
    for name in names:
        benchmark = get_benchmark(name, scale)
        dominant = max(
            benchmark.kernels,
            key=lambda k: k.weight
            * sweep.kernel_result(name, k.name, 0).cycles,
        )
        compiled = compiler.compile(
            dominant.program, num_warps=dominant.launch.num_warps
        )
        width = dominant.launch.warp_width
        original = register_footprint(
            None,
            num_warps=dominant.launch.num_warps,
            program_registers=dominant.program.register_count(),
            threads_per_warp=width,
            per_stage=False,
        )
        if compiled.specialized:
            spec = compiled.program.tb_spec
            uniform = spec.uniform_register_footprint(width)
            per_stage = spec.per_stage_register_footprint(width)
        else:
            uniform = per_stage = original
        result.rows.append(
            Fig16Row(
                benchmark=name,
                kernel=dominant.name,
                original_regs=dominant.program.register_count(),
                uniform_ratio=uniform / original,
                per_stage_ratio=per_stage / original,
                savings=1.0 - per_stage / uniform if uniform else 0.0,
            )
        )
    return result
