"""Figure 18: performance vs register-file-queue size.

Queue depth trades overlap against register pressure: more entries
buffer more in-flight data, but RFQ storage competes with thread blocks
for the register file.  The paper finds 32 entries per channel the best
balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table, geomean
from repro.workloads import all_benchmarks

DEFAULT_SIZES = (8, 16, 32, 64, 128)


@dataclass
class Fig18Result:
    sizes: list[int]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)

    def geomeans(self) -> list[float]:
        return [
            geomean(row[1][idx] for row in self.rows)
            for idx in range(len(self.sizes))
        ]

    def best_size(self) -> int:
        means = self.geomeans()
        return self.sizes[means.index(max(means))]

    def to_text(self) -> str:
        table_rows = [
            [name] + [f"{v:.2f}" for v in values]
            for name, values in self.rows
        ]
        table_rows.append(["GEOMEAN"] + [f"{v:.2f}" for v in self.geomeans()])
        return format_table(
            ["Benchmark"] + [f"{s} entries" for s in self.sizes],
            table_rows,
            title="Figure 18: WASP speedup over BASELINE vs RFQ size",
        )


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    jobs: int | None = None,
) -> Fig18Result:
    """Regenerate Figure 18."""
    names = list(benchmarks or all_benchmarks())
    configs = [baseline_config()] + [
        wasp_gpu_config(rfq_size=size) for size in sizes
    ]
    sweep = run_sweep(names, scale, configs, jobs=jobs)
    result = Fig18Result(sizes=list(sizes))
    for name in names:
        base_cycles = sweep.total_cycles(name, 0)
        speedups = [
            base_cycles / sweep.total_cycles(name, idx)
            for idx in range(1, len(configs))
        ]
        result.rows.append((name, speedups))
    return result
