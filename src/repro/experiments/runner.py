"""Kernel and benchmark execution under evaluation configurations.

Compilation and functional execution (the expensive trace generation)
are cached per (kernel, compiler options); timing replays are cheap and
run per GPU configuration.  Per-kernel opt-in mirrors the paper: the
specialized version is used only where it beats the unspecialized
kernel on the same hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.compiler import (
    CompileResult,
    WaspCompiler,
    WaspCompilerOptions,
)
from repro.errors import CompilerError, ResourceError
from repro.experiments.configs import EvalConfig
from repro.fexec.machine import run_kernel as run_functional
from repro.fexec.trace import KernelTrace
from repro.sim.config import GPUConfig
from repro.sim.gpu import SimResult, simulate_kernel
from repro.workloads.base import Benchmark, Kernel

_OPT_KEY_FIELDS = (
    "enable_streaming",
    "enable_tile",
    "enable_tma_offload",
    "double_buffering",
    "max_stages",
    "queue_size",
)


def _options_key(options: WaspCompilerOptions | None):
    if options is None:
        return None
    return tuple(getattr(options, f) for f in _OPT_KEY_FIELDS)


@dataclass
class _TraceEntry:
    traces: list[KernelTrace]
    compile_result: CompileResult | None


class TraceCache:
    """Caches functional traces per (kernel, compiler options)."""

    def __init__(self) -> None:
        self._entries: dict[tuple[int, object], _TraceEntry] = {}

    def original(self, kernel: Kernel) -> _TraceEntry:
        return self._get(kernel, None)

    def specialized(
        self, kernel: Kernel, options: WaspCompilerOptions
    ) -> _TraceEntry | None:
        entry = self._get(kernel, options)
        if entry.compile_result is not None and (
            not entry.compile_result.specialized
        ):
            return None
        return entry

    def _get(
        self, kernel: Kernel, options: WaspCompilerOptions | None
    ) -> _TraceEntry:
        key = (id(kernel), _options_key(options))
        entry = self._entries.get(key)
        if entry is not None:
            return entry
        if options is None:
            traces = run_functional(
                kernel.program, kernel.image_factory(), kernel.launch
            ).traces
            entry = _TraceEntry(traces=traces, compile_result=None)
        else:
            compiler = WaspCompiler(options)
            result = compiler.compile(
                kernel.program, num_warps=kernel.launch.num_warps
            )
            if result.specialized:
                launch = replace(
                    kernel.launch,
                    num_warps=kernel.launch.num_warps * result.num_stages,
                )
                traces = run_functional(
                    result.program, kernel.image_factory(), launch
                ).traces
            else:
                traces = []
            entry = _TraceEntry(traces=traces, compile_result=result)
        self._entries[key] = entry
        return entry


_GLOBAL_CACHE = TraceCache()

# Public shared cache: experiment modules and benches reuse functional
# traces across figures (kernels are keyed by object identity, so
# different scales never collide).
GLOBAL_CACHE = _GLOBAL_CACHE


@dataclass
class KernelResult:
    """Timing of one kernel under one configuration."""

    kernel: Kernel
    config_name: str
    cycles: float
    sim: SimResult
    used_specialized: bool
    compile_result: CompileResult | None = None
    fallback_sim: SimResult | None = None


@dataclass
class BenchmarkResult:
    """Weighted benchmark aggregate."""

    benchmark: Benchmark
    config_name: str
    kernels: list[KernelResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(k.kernel.weight * k.cycles for k in self.kernels)


def _compiler_options_for(
    kernel: Kernel, config: EvalConfig
) -> WaspCompilerOptions | None:
    if config.compiler is not None:
        return replace(config.compiler, queue_size=config.gpu.rfq_size)
    if kernel.is_gemm and config.cutlass_gemm:
        # CUTLASS model: tile pipeline on GEMM kernels, even at baseline.
        return WaspCompilerOptions(
            enable_streaming=False, enable_tma_offload=False
        )
    return None


def _gpu_for(kernel: Kernel, config: EvalConfig) -> GPUConfig:
    if (
        kernel.is_gemm
        and config.cutlass_gemm
        and config.compiler is None
    ):
        # Idealized warp mapping for the CUTLASS baseline (Section V-A).
        from repro.experiments.configs import _cutlass_gpu

        return _cutlass_gpu(config.gpu)
    return config.gpu


def run_kernel(
    kernel: Kernel,
    config: EvalConfig,
    cache: TraceCache | None = None,
) -> KernelResult:
    """Time one kernel under ``config`` (with per-kernel opt-in)."""
    cache = cache or _GLOBAL_CACHE
    gpu = _gpu_for(kernel, config)
    options = _compiler_options_for(kernel, config)

    plain = cache.original(kernel)
    plain_sim = simulate_kernel(plain.traces, gpu)

    if options is None:
        return KernelResult(
            kernel=kernel,
            config_name=config.name,
            cycles=plain_sim.cycles,
            sim=plain_sim,
            used_specialized=False,
        )

    entry = None
    try:
        entry = cache.specialized(kernel, options)
    except CompilerError:
        entry = None
    spec_sim = None
    if entry is not None:
        try:
            spec_sim = simulate_kernel(entry.traces, gpu)
        except ResourceError:
            spec_sim = None

    use_spec = spec_sim is not None and (
        not config.opt_in or spec_sim.cycles < plain_sim.cycles
    )
    if use_spec:
        return KernelResult(
            kernel=kernel,
            config_name=config.name,
            cycles=spec_sim.cycles,
            sim=spec_sim,
            used_specialized=True,
            compile_result=entry.compile_result,
            fallback_sim=plain_sim,
        )
    return KernelResult(
        kernel=kernel,
        config_name=config.name,
        cycles=plain_sim.cycles,
        sim=plain_sim,
        used_specialized=False,
        compile_result=entry.compile_result if entry else None,
        fallback_sim=plain_sim,
    )


def run_benchmark(
    benchmark: Benchmark,
    config: EvalConfig,
    cache: TraceCache | None = None,
) -> BenchmarkResult:
    """Time every kernel of a benchmark under ``config``."""
    result = BenchmarkResult(benchmark=benchmark, config_name=config.name)
    for kernel in benchmark.kernels:
        result.kernels.append(run_kernel(kernel, config, cache))
    return result
