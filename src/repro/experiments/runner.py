"""Kernel and benchmark execution under evaluation configurations.

Compilation and functional execution (the expensive trace generation)
are cached per (kernel, compiler options); timing replays are cheap and
run per GPU configuration.  Per-kernel opt-in mirrors the paper: the
specialized version is used only where it beats the unspecialized
kernel on the same hardware.

Cache entries are **content-addressed**: the key is a SHA-256 over the
kernel's canonical IR encoding, launch geometry, initial memory image
and the compiler-option tuple (see :meth:`Kernel.content_digest`), so
structurally identical kernels share an entry regardless of object
identity, and entries persist across processes through the on-disk
:class:`~repro.fexec.trace_store.TraceStore`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.core.compiler import (
    CompileResult,
    WaspCompiler,
    WaspCompilerOptions,
)
from repro.errors import CompilerError, ResourceError, SimulationError
from repro.experiments.configs import EvalConfig
from repro.fexec.machine import run_kernel as run_functional
from repro.fexec.trace import TRACE_FORMAT_VERSION, KernelTrace
from repro.fexec.trace_store import TraceStore
from repro.sim.config import GPUConfig
from repro.sim.gpu import SimResult, simulate_kernel
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import span
from repro.workloads.base import Benchmark, Kernel

_OPT_KEY_FIELDS = (
    "enable_streaming",
    "enable_tile",
    "enable_tma_offload",
    "double_buffering",
    "max_stages",
    "queue_size",
    "smem_capacity_words",
)


def _options_key(options: WaspCompilerOptions | None):
    if options is None:
        return None
    return tuple(getattr(options, f) for f in _OPT_KEY_FIELDS)


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`TraceCache`.

    ``generations`` counts *functional trace generations* — the
    expensive operation everything else exists to avoid.  Compiling a
    kernel that turns out not to specialize does not count.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    generations: int = 0
    disk_writes: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.generations

    def snapshot(self) -> "CacheStats":
        return replace(self)

    def since(self, before: "CacheStats") -> "CacheStats":
        return CacheStats(
            memory_hits=self.memory_hits - before.memory_hits,
            disk_hits=self.disk_hits - before.disk_hits,
            generations=self.generations - before.generations,
            disk_writes=self.disk_writes - before.disk_writes,
        )

    def merge(self, other: "CacheStats") -> None:
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.generations += other.generations
        self.disk_writes += other.disk_writes

    def to_json(self) -> dict[str, int]:
        """Structured form for SweepReport/CI artifacts."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "generations": self.generations,
            "disk_writes": self.disk_writes,
            "lookups": self.lookups,
        }


def harvest_cache_stats(stats: CacheStats) -> None:
    """Fold trace-cache counters into the metrics registry.

    Tier locality (memory vs disk hit, and with the disk tier off even
    the generation count) depends on process scheduling, so every tier
    is ``invariant=False`` — excluded from the jobs-invariance
    contract.
    """
    if not TELEMETRY.enabled:
        return
    for tier, value in (
        ("memory_hit", stats.memory_hits),
        ("disk_hit", stats.disk_hits),
        ("generation", stats.generations),
        ("disk_write", stats.disk_writes),
    ):
        TELEMETRY.counter(
            "repro_cache_trace_lookups_total", {"tier": tier},
            help="TraceCache lookups by outcome tier", invariant=False,
        ).inc(value)


@dataclass
class _TraceEntry:
    traces: list[KernelTrace]
    compile_result: CompileResult | None


class TraceCache:
    """Two-tier (memory + optional disk) functional-trace cache.

    The in-memory tier maps content keys to live entries within one
    process; the optional :class:`TraceStore` tier shares traces across
    processes and runs.  ``TraceCache()`` with no store is purely
    in-memory (what unit tests want); the shared :data:`GLOBAL_CACHE`
    is backed by the environment-configured store.
    """

    def __init__(self, store: TraceStore | None = None) -> None:
        self._entries: dict[str, _TraceEntry] = {}
        self.store = store
        self.stats = CacheStats()

    def key_for(
        self, kernel: Kernel, options: WaspCompilerOptions | None
    ) -> str:
        """Content-addressed cache key for (kernel, options)."""
        text = (
            f"{kernel.content_digest()}"
            f"|opts={_options_key(options)!r}"
            f"|format={TRACE_FORMAT_VERSION}"
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def original(self, kernel: Kernel) -> _TraceEntry:
        return self._get(kernel, None)

    def specialized(
        self, kernel: Kernel, options: WaspCompilerOptions
    ) -> _TraceEntry | None:
        entry = self._get(kernel, options)
        if entry.compile_result is not None and (
            not entry.compile_result.specialized
        ):
            return None
        return entry

    def _get(
        self, kernel: Kernel, options: WaspCompilerOptions | None
    ) -> _TraceEntry:
        key = self.key_for(kernel, options)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.memory_hits += 1
            return entry
        entry = self._load(key, kernel, options)
        if entry is None:
            entry = self._generate(key, kernel, options)
        self._entries[key] = entry
        return entry

    def _load(
        self, key: str, kernel: Kernel, options: WaspCompilerOptions | None
    ) -> _TraceEntry | None:
        """Rebuild an entry from the disk tier, or ``None`` on miss.

        For specialized entries the (cheap) compilation is re-run to
        reconstruct the :class:`CompileResult`; only the expensive
        functional execution is skipped.  A disagreement between the
        stored metadata and the recompile — the compiler changed under
        a stale cache — falls through to regeneration.
        """
        if self.store is None:
            return None
        payload = self.store.load(key)
        if payload is None:
            return None
        if options is None:
            if not payload["traces"]:
                return None
            self.stats.disk_hits += 1
            return _TraceEntry(traces=payload["traces"], compile_result=None)
        compiler = WaspCompiler(options)
        result = compiler.compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        if not result.specialized:
            return None
        if payload.get("num_stages") != result.num_stages:
            return None
        self.stats.disk_hits += 1
        return _TraceEntry(traces=payload["traces"], compile_result=result)

    def _generate(
        self, key: str, kernel: Kernel, options: WaspCompilerOptions | None
    ) -> _TraceEntry:
        if options is None:
            with span("fexec", "trace"):
                traces = run_functional(
                    kernel.program, kernel.image_factory(), kernel.launch
                ).traces
            self.stats.generations += 1
            entry = _TraceEntry(traces=traces, compile_result=None)
            self._persist(key, entry)
            return entry
        compiler = WaspCompiler(options)
        result = compiler.compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
        if result.specialized:
            launch = replace(
                kernel.launch,
                num_warps=kernel.launch.num_warps * result.num_stages,
            )
            with span("fexec", "trace"):
                traces = run_functional(
                    result.program, kernel.image_factory(), launch
                ).traces
            self.stats.generations += 1
            entry = _TraceEntry(traces=traces, compile_result=result)
            self._persist(key, entry, num_stages=result.num_stages)
        else:
            # Nothing expensive to persist: rediscovering "does not
            # specialize" is a compile, not a functional run.
            entry = _TraceEntry(traces=[], compile_result=result)
        return entry

    def _persist(self, key: str, entry: _TraceEntry, **meta) -> None:
        if self.store is None or not entry.traces:
            return
        if self.store.save(key, entry.traces, **meta):
            self.stats.disk_writes += 1


_GLOBAL_CACHE = TraceCache(store=TraceStore.from_env())

# Public shared cache: experiment modules, benches and parallel workers
# reuse functional traces across figures and — through the persistent
# store — across processes.
GLOBAL_CACHE = _GLOBAL_CACHE


def configure_global_cache(
    cache_dir: str | None = None, enabled: bool = True
) -> TraceCache:
    """Point :data:`GLOBAL_CACHE` at a different disk tier (or none).

    Used by the CLI's ``--cache-dir`` / ``--no-cache`` flags; parallel
    workers inherit the same configuration through the pool
    initializer.
    """
    if not enabled:
        GLOBAL_CACHE.store = None
    elif cache_dir is not None:
        GLOBAL_CACHE.store = TraceStore(cache_dir)
    else:
        GLOBAL_CACHE.store = TraceStore.from_env()
    return GLOBAL_CACHE


@dataclass
class KernelResult:
    """Timing of one kernel under one configuration."""

    kernel: Kernel
    config_name: str
    cycles: float
    sim: SimResult
    used_specialized: bool
    compile_result: CompileResult | None = None
    fallback_sim: SimResult | None = None
    #: Static performance-model prediction for the *same* traces the
    #: simulator timed (attached when ``run_kernel(..., predict=True)``).
    prediction: object | None = None

    @property
    def predicted_error(self) -> float | None:
        """|predicted - simulated| / simulated, when a prediction rode
        along."""
        if self.prediction is None or self.cycles <= 0:
            return None
        predicted = getattr(self.prediction, "cycles", None)
        if predicted is None:
            return None
        return abs(predicted - self.cycles) / self.cycles


@dataclass
class BenchmarkResult:
    """Weighted benchmark aggregate."""

    benchmark: Benchmark
    config_name: str
    kernels: list[KernelResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(k.kernel.weight * k.cycles for k in self.kernels)


def _compiler_options_for(
    kernel: Kernel, config: EvalConfig
) -> WaspCompilerOptions | None:
    if config.compiler is not None:
        return replace(config.compiler, queue_size=config.gpu.rfq_size)
    if kernel.is_gemm and config.cutlass_gemm:
        # CUTLASS model: tile pipeline on GEMM kernels, even at baseline.
        return WaspCompilerOptions(
            enable_streaming=False, enable_tma_offload=False
        )
    return None


def _gpu_for(kernel: Kernel, config: EvalConfig) -> GPUConfig:
    if (
        kernel.is_gemm
        and config.cutlass_gemm
        and config.compiler is None
    ):
        # Idealized warp mapping for the CUTLASS baseline (Section V-A).
        from repro.experiments.configs import _cutlass_gpu

        return _cutlass_gpu(config.gpu)
    return config.gpu


def run_kernel(
    kernel: Kernel,
    config: EvalConfig,
    cache: TraceCache | None = None,
    predict: bool = False,
) -> KernelResult:
    """Time one kernel under ``config`` (with per-kernel opt-in).

    With ``predict=True`` the static performance model predicts the
    same traces the simulator timed and rides along on the result
    (``result.prediction`` / ``result.predicted_error``), turning every
    sweep row into a calibration sample.
    """
    cache = cache or _GLOBAL_CACHE
    gpu = _gpu_for(kernel, config)
    options = _compiler_options_for(kernel, config)

    plain = cache.original(kernel)
    plain_sim = simulate_kernel(plain.traces, gpu)

    result: KernelResult
    chosen_traces = plain.traces
    if options is None:
        result = KernelResult(
            kernel=kernel,
            config_name=config.name,
            cycles=plain_sim.cycles,
            sim=plain_sim,
            used_specialized=False,
        )
        return _attach_prediction(
            result, chosen_traces, gpu, predict, kernel.name
        )

    entry = None
    try:
        entry = cache.specialized(kernel, options)
    except CompilerError:
        entry = None
    spec_sim = None
    if entry is not None:
        try:
            spec_sim = simulate_kernel(entry.traces, gpu)
        except ResourceError:
            spec_sim = None

    use_spec = spec_sim is not None and (
        not config.opt_in or spec_sim.cycles < plain_sim.cycles
    )
    if use_spec:
        result = KernelResult(
            kernel=kernel,
            config_name=config.name,
            cycles=spec_sim.cycles,
            sim=spec_sim,
            used_specialized=True,
            compile_result=entry.compile_result,
            fallback_sim=plain_sim,
        )
        chosen_traces = entry.traces
    else:
        result = KernelResult(
            kernel=kernel,
            config_name=config.name,
            cycles=plain_sim.cycles,
            sim=plain_sim,
            used_specialized=False,
            compile_result=entry.compile_result if entry else None,
            fallback_sim=plain_sim,
        )
    return _attach_prediction(
        result, chosen_traces, gpu, predict, kernel.name
    )


def _attach_prediction(
    result: KernelResult,
    traces: list[KernelTrace],
    gpu: GPUConfig,
    predict: bool,
    kernel_name: str,
) -> KernelResult:
    if not predict:
        return result
    # Imported lazily: the perfmodel depends on this module's cache in
    # the other direction (predict_kernel), and predicting is opt-in.
    from repro.analysis.perfmodel.model import predict_traces

    result.prediction = predict_traces(
        traces, gpu, kernel_name=kernel_name
    )
    return result


def profile_kernel(
    kernel: Kernel,
    config: EvalConfig,
    cache: TraceCache | None = None,
    trace_capacity: int | None = None,
) -> tuple[KernelResult, "PipelineProfiler"]:
    """Time one kernel with full pipeline profiling attached.

    Runs the normal (unprofiled) :func:`run_kernel` selection first so
    the specialized-vs-plain opt-in decision is identical to what the
    figures use, then replays the chosen variant's traces once more
    with a :class:`~repro.profiling.PipelineProfiler` recording the
    event trace, queue occupancy and memory mix.  The replay is
    deterministic, so the profiled timing equals the reported one.
    """
    from repro.profiling import PipelineProfiler

    cache = cache or _GLOBAL_CACHE
    result = run_kernel(kernel, config, cache)
    gpu = _gpu_for(kernel, config)
    if result.used_specialized:
        options = _compiler_options_for(kernel, config)
        entry = cache.specialized(kernel, options)
        traces = entry.traces
    else:
        traces = cache.original(kernel).traces
    if trace_capacity is not None:
        profiler = PipelineProfiler(trace_capacity=trace_capacity)
    else:
        profiler = PipelineProfiler()
    sim = simulate_kernel(traces, gpu, profiler=profiler)
    if sim.cycles != result.cycles:
        raise SimulationError(
            f"profiled replay of {kernel.name} under {config.name} "
            f"took {sim.cycles} cycles vs {result.cycles} unprofiled: "
            f"profiling hooks must not perturb timing"
        )
    profiled = replace(result, sim=sim)
    return profiled, profiler


def run_benchmark(
    benchmark: Benchmark,
    config: EvalConfig,
    cache: TraceCache | None = None,
) -> BenchmarkResult:
    """Time every kernel of a benchmark under ``config``."""
    result = BenchmarkResult(benchmark=benchmark, config_name=config.name)
    for kernel in benchmark.kernels:
        result.kernels.append(run_kernel(kernel, config, cache))
    return result
