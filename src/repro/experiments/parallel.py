"""Parallel experiment runner: kernel×config fan-out over a process pool.

Every figure sweep decomposes into independent (kernel, configuration)
timing tasks.  This module fans them out over ``concurrent.futures``
worker processes, with two properties the figures rely on:

* **Determinism** — results are assembled by task identity, so
  ``--jobs N`` produces numerically identical figures to ``--jobs 1``.
* **No duplicated trace generation** — when the persistent trace cache
  is enabled, a *warm phase* first generates each unique (kernel,
  compiler-options) trace exactly once across the pool; the simulate
  phase then runs entirely from cache hits.

Job count comes from ``jobs=`` (CLI ``--jobs``), else the
``REPRO_JOBS`` environment variable, else 1 (serial, no pool).
Workers communicate by task descriptor (benchmark name, scale, kernel
name, config) because kernels hold closure-based image factories that
cannot cross process boundaries; each worker rebuilds its kernels from
the deterministic workload registry and shares traces through the
content-addressed disk store.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import CompilerError
from repro.experiments.configs import EvalConfig
from repro.experiments.runner import (
    GLOBAL_CACHE,
    BenchmarkResult,
    CacheStats,
    KernelResult,
    _compiler_options_for,
    harvest_cache_stats,
    run_kernel,
)
from repro.telemetry.registry import (
    SECONDS_BUCKETS,
    TELEMETRY,
    MetricsSnapshot,
)
from repro.workloads import get_benchmark
from repro.workloads.base import Benchmark


@dataclass(frozen=True)
class KernelTask:
    """One unit of sweep work: time one kernel under one configuration."""

    benchmark: str
    scale: float
    kernel: str
    config: EvalConfig
    config_index: int
    #: Attach a static performance-model prediction to the result.
    predict: bool = False


@dataclass
class PredictionRow:
    """Predicted-vs-simulated cycles for one sweep row.

    Plain data so it crosses the worker process boundary; every sweep
    run with ``predict=True`` carries one row per (kernel, config) in
    its :class:`SweepReport`, making cached sweeps double as
    calibration samples.
    """

    benchmark: str
    kernel: str
    config_name: str
    predicted_cycles: float
    simulated_cycles: float

    @property
    def error(self) -> float:
        if self.simulated_cycles <= 0:
            return 0.0
        return (
            abs(self.predicted_cycles - self.simulated_cycles)
            / self.simulated_cycles
        )

    def to_json(self) -> dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "kernel": self.kernel,
            "config": self.config_name,
            "predicted_cycles": round(self.predicted_cycles, 2),
            "simulated_cycles": round(self.simulated_cycles, 2),
            "predicted_error": round(self.error, 4),
        }


@dataclass
class TaskTiming:
    benchmark: str
    kernel: str
    config_name: str
    phase: str  # 'warm' or 'simulate'
    seconds: float


@dataclass
class SweepReport:
    """Per-sweep execution statistics: timing, cache hit/miss, stalls.

    Stall counters aggregate over every simulation the sweep ran
    (including specialized variants that lost the opt-in), from results
    assembled in the parent — so they are exact regardless of
    ``--jobs``, just like the cache counters, which each worker
    measures as a per-task delta for the parent to merge.
    """

    jobs: int = 1
    num_tasks: int = 0
    wall_seconds: float = 0.0
    worker_seconds: float = 0.0
    stats: CacheStats = field(default_factory=CacheStats)
    timings: list[TaskTiming] = field(default_factory=list)
    #: (pipe stage, StallCause) -> stalled warp-cycles over all sims.
    stall_cycles: dict = field(default_factory=dict)
    issued_total: int = 0
    active_warp_cycles: float = 0.0
    #: Predicted-vs-simulated per sweep row (``predict=True`` sweeps).
    prediction_rows: list[PredictionRow] = field(default_factory=list)

    def merge(self, other: "SweepReport") -> None:
        self.jobs = max(self.jobs, other.jobs)
        self.num_tasks += other.num_tasks
        self.wall_seconds += other.wall_seconds
        self.worker_seconds += other.worker_seconds
        self.stats.merge(other.stats)
        self.timings.extend(other.timings)
        for key, cycles in other.stall_cycles.items():
            self.stall_cycles[key] = (
                self.stall_cycles.get(key, 0.0) + cycles
            )
        self.issued_total += other.issued_total
        self.active_warp_cycles += other.active_warp_cycles
        self.prediction_rows.extend(other.prediction_rows)

    def add_sim(self, sim) -> None:
        """Fold one ``SimResult``'s stall attribution into the sweep."""
        for key, cycles in sim.stall_cycles.items():
            self.stall_cycles[key] = (
                self.stall_cycles.get(key, 0.0) + cycles
            )
        self.issued_total += sim.issued_total
        self.active_warp_cycles += sim.active_warp_cycles

    def add_prediction(self, task: "KernelTask", result) -> None:
        """Record the row's predicted-vs-simulated error, if any."""
        prediction = getattr(result, "prediction", None)
        if prediction is None:
            return
        self.prediction_rows.append(PredictionRow(
            benchmark=task.benchmark,
            kernel=task.kernel,
            config_name=task.config.name,
            predicted_cycles=prediction.cycles,
            simulated_cycles=result.cycles,
        ))

    def slowest_tasks(self, count: int = 5) -> list[TaskTiming]:
        return sorted(
            self.timings, key=lambda t: t.seconds, reverse=True
        )[:count]

    @property
    def utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent working."""
        capacity = self.wall_seconds * max(1, self.jobs)
        if capacity <= 0:
            return 0.0
        return min(1.0, self.worker_seconds / capacity)

    def to_json(self) -> dict[str, object]:
        """Structured form for sweep/CI artifacts (cache stats
        included so hit/miss behaviour is captured per run)."""
        phases: dict[str, int] = {}
        for timing in self.timings:
            phases[timing.phase] = phases.get(timing.phase, 0) + 1
        return {
            "jobs": self.jobs,
            "num_tasks": self.num_tasks,
            "wall_seconds": round(self.wall_seconds, 4),
            "worker_seconds": round(self.worker_seconds, 4),
            "utilization": round(self.utilization, 4),
            "tasks_by_phase": phases,
            "cache": self.stats.to_json(),
            "issued_total": self.issued_total,
            "prediction_rows": len(self.prediction_rows),
        }


class SweepResult:
    """Assembled results of one sweep, indexed like the serial loops."""

    def __init__(
        self,
        benchmarks: dict[str, Benchmark],
        configs: list[EvalConfig],
        results: dict[tuple[str, str, int], KernelResult],
        report: SweepReport,
    ) -> None:
        self._benchmarks = benchmarks
        self._configs = configs
        self._results = results
        self.report = report

    def kernel_result(
        self, benchmark: str, kernel: str, config_index: int
    ) -> KernelResult:
        return self._results[(benchmark, kernel, config_index)]

    def benchmark_result(
        self, benchmark: str, config_index: int
    ) -> BenchmarkResult:
        bench = self._benchmarks[benchmark]
        result = BenchmarkResult(
            benchmark=bench,
            config_name=self._configs[config_index].name,
        )
        for kernel in bench.kernels:
            result.kernels.append(
                self.kernel_result(benchmark, kernel.name, config_index)
            )
        return result

    def total_cycles(self, benchmark: str, config_index: int) -> float:
        return self.benchmark_result(benchmark, config_index).total_cycles


def resolve_jobs(jobs: int | None = None) -> int:
    """Effective worker count: explicit value, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                jobs = 1
        else:
            jobs = 1
    return max(1, jobs)


_LAST_REPORT: SweepReport | None = None


def last_report() -> SweepReport | None:
    """The report of the most recent sweep in this process (for the CLI)."""
    return _LAST_REPORT


def _record_report(report: SweepReport) -> None:
    global _LAST_REPORT
    _LAST_REPORT = report


# -- worker side ------------------------------------------------------------


def _worker_init(
    cache_dir: str | None, enabled: bool, telemetry: bool = False
) -> None:
    from repro.experiments.runner import configure_global_cache

    configure_global_cache(cache_dir=cache_dir, enabled=enabled)
    if telemetry:
        TELEMETRY.enable()


def _tel_delta(
    before: MetricsSnapshot | None,
) -> MetricsSnapshot | None:
    """This worker's registry delta since ``before`` (``None`` when
    telemetry is off — nothing crosses the process boundary)."""
    if before is None:
        return None
    return TELEMETRY.snapshot().since(before)


def _tel_before() -> MetricsSnapshot | None:
    return TELEMETRY.snapshot() if TELEMETRY.enabled else None


def _task_kernel(task: KernelTask):
    return get_benchmark(task.benchmark, task.scale).kernel(task.kernel)


def _run_warm_task(spec: tuple[KernelTask, str]):
    """Generate (or load) one functional trace into the shared store."""
    task, mode = spec
    start = time.perf_counter()
    before = GLOBAL_CACHE.stats.snapshot()
    tel_before = _tel_before()
    kernel = _task_kernel(task)
    if mode == "original":
        GLOBAL_CACHE.original(kernel)
    else:
        options = _compiler_options_for(kernel, task.config)
        if options is not None:
            try:
                GLOBAL_CACHE.specialized(kernel, options)
            except CompilerError:
                pass
    elapsed = time.perf_counter() - start
    return (task, elapsed, GLOBAL_CACHE.stats.since(before),
            _tel_delta(tel_before))


def _run_sim_task(task: KernelTask):
    """Time one kernel×config; returns a kernel-stripped result."""
    start = time.perf_counter()
    before = GLOBAL_CACHE.stats.snapshot()
    tel_before = _tel_before()
    kernel = _task_kernel(task)
    result = run_kernel(
        kernel, task.config, GLOBAL_CACHE, predict=task.predict
    )
    # Kernels carry closure-based image factories that cannot be
    # pickled back; the parent reattaches its own Kernel object.
    result.kernel = None
    elapsed = time.perf_counter() - start
    return (task, result, elapsed, GLOBAL_CACHE.stats.since(before),
            _tel_delta(tel_before))


# -- orchestration ----------------------------------------------------------


def _options_key_of(kernel, config: EvalConfig):
    from repro.experiments.runner import _options_key

    return _options_key(_compiler_options_for(kernel, config))


def run_sweep(
    benchmark_names: list[str],
    scale: float,
    configs: list[EvalConfig],
    jobs: int | None = None,
    kernel_names: dict[str, list[str]] | None = None,
    predict: bool = False,
) -> SweepResult:
    """Run every kernel of every benchmark under every configuration.

    ``kernel_names`` optionally restricts each benchmark to a subset of
    kernels (e.g. Figure 3 times a single kernel).  Results are keyed
    by (benchmark, kernel, config index), so configurations may share
    display names (the Figure 18 RFQ sweep reuses ``WASP_GPU``).
    With ``predict=True`` every row also carries the static
    performance model's prediction and its error vs the simulator
    (``report.prediction_rows``).
    """
    jobs = resolve_jobs(jobs)
    benchmarks = {
        name: get_benchmark(name, scale) for name in benchmark_names
    }
    tasks: list[KernelTask] = []
    for name, bench in benchmarks.items():
        wanted = None if kernel_names is None else kernel_names.get(name)
        for kernel in bench.kernels:
            if wanted is not None and kernel.name not in wanted:
                continue
            for idx, config in enumerate(configs):
                tasks.append(
                    KernelTask(
                        benchmark=name,
                        scale=scale,
                        kernel=kernel.name,
                        config=config,
                        config_index=idx,
                        predict=predict,
                    )
                )

    start = time.perf_counter()
    report = SweepReport(jobs=jobs, num_tasks=len(tasks))
    results: dict[tuple[str, str, int], KernelResult] = {}
    if jobs == 1:
        _run_serial(tasks, benchmarks, results, report)
    else:
        _run_parallel(tasks, benchmarks, results, report, jobs)
    report.wall_seconds = time.perf_counter() - start
    _harvest_pool(report)
    _record_report(report)
    return SweepResult(benchmarks, configs, results, report)


def _harvest_pool(report: SweepReport) -> None:
    """Fold one sweep's pool statistics into the registry.

    Simulate-task counts are deterministic in the task list, hence
    ``invariant=True``; warm tasks only exist for cache-enabled
    parallel runs, and every timing metric is wall clock, so the rest
    is ``invariant=False``.
    """
    if not TELEMETRY.enabled:
        return
    phases: dict[str, tuple[int, float]] = {}
    for timing in report.timings:
        count, seconds = phases.get(timing.phase, (0, 0.0))
        phases[timing.phase] = (count + 1, seconds + timing.seconds)
    for phase, (count, seconds) in sorted(phases.items()):
        TELEMETRY.counter(
            "repro_pool_tasks_total", {"phase": phase},
            help="Sweep tasks completed by phase",
            invariant=phase == "simulate",
        ).inc(count)
        TELEMETRY.counter(
            "repro_pool_worker_seconds_total", {"phase": phase},
            help="Wall-clock seconds spent inside sweep tasks",
            invariant=False,
        ).inc(seconds)
    task_seconds = TELEMETRY.histogram(
        "repro_pool_task_seconds", bounds=SECONDS_BUCKETS,
        help="Per-task wall-clock duration", invariant=False,
    )
    for timing in report.timings:
        task_seconds.observe(timing.seconds)
    # Queue wait: pool capacity the sweep paid for but did not use
    # (workers idle between tasks, warm-phase barriers, stragglers).
    idle = max(
        0.0,
        report.wall_seconds * max(1, report.jobs)
        - report.worker_seconds,
    )
    TELEMETRY.counter(
        "repro_pool_idle_seconds_total",
        help="Pool capacity spent waiting rather than working",
        invariant=False,
    ).inc(idle)
    TELEMETRY.gauge(
        "repro_pool_jobs", help="Worker processes of the last sweep",
    ).set_max(report.jobs)
    TELEMETRY.gauge(
        "repro_pool_utilization",
        help="worker_seconds / (wall_seconds * jobs) of the last sweep",
    ).set_max(report.utilization)
    harvest_cache_stats(report.stats)


def _run_serial(tasks, benchmarks, results, report) -> None:
    for task in tasks:
        kernel = benchmarks[task.benchmark].kernel(task.kernel)
        before = GLOBAL_CACHE.stats.snapshot()
        start = time.perf_counter()
        result = run_kernel(
            kernel, task.config, GLOBAL_CACHE, predict=task.predict
        )
        elapsed = time.perf_counter() - start
        report.stats.merge(GLOBAL_CACHE.stats.since(before))
        report.worker_seconds += elapsed
        report.add_sim(result.sim)
        report.add_prediction(task, result)
        report.timings.append(
            TaskTiming(
                benchmark=task.benchmark,
                kernel=task.kernel,
                config_name=task.config.name,
                phase="simulate",
                seconds=elapsed,
            )
        )
        results[(task.benchmark, task.kernel, task.config_index)] = result


def _run_parallel(tasks, benchmarks, results, report, jobs) -> None:
    store = GLOBAL_CACHE.store
    cache_dir = str(store.cache_dir) if store is not None else None
    enabled = store is not None
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_worker_init,
        initargs=(cache_dir, enabled, TELEMETRY.enabled),
    ) as pool:
        if enabled:
            _warm_phase(pool, tasks, benchmarks, report)
        for task, result, elapsed, stats, tel in pool.map(
            _run_sim_task, tasks, chunksize=1
        ):
            result.kernel = benchmarks[task.benchmark].kernel(task.kernel)
            report.stats.merge(stats)
            if tel is not None:
                TELEMETRY.merge_snapshot(tel)
            report.worker_seconds += elapsed
            report.add_sim(result.sim)
            report.add_prediction(task, result)
            report.timings.append(
                TaskTiming(
                    benchmark=task.benchmark,
                    kernel=task.kernel,
                    config_name=task.config.name,
                    phase="simulate",
                    seconds=elapsed,
                )
            )
            results[(task.benchmark, task.kernel, task.config_index)] = result


def _warm_phase(pool, tasks, benchmarks, report) -> None:
    """Generate each unique (kernel, options) trace once across the pool.

    Two waves: plain-kernel traces (which every ``run_kernel`` call
    needs) first, then warp-specialized ones.  Each wave is deduplicated
    on (kernel content digest, options key), so no two workers ever
    generate the same trace concurrently.
    """
    originals: dict[str, tuple[KernelTask, str]] = {}
    specialized: dict[tuple, tuple[KernelTask, str]] = {}
    for task in tasks:
        kernel = benchmarks[task.benchmark].kernel(task.kernel)
        digest = kernel.content_digest()
        originals.setdefault(digest, (task, "original"))
        okey = _options_key_of(kernel, task.config)
        if okey is not None:
            specialized.setdefault((digest, okey), (task, "specialized"))
    for wave in (list(originals.values()), list(specialized.values())):
        for task, elapsed, stats, tel in pool.map(
            _run_warm_task, wave, chunksize=1
        ):
            report.stats.merge(stats)
            if tel is not None:
                TELEMETRY.merge_snapshot(tel)
            report.worker_seconds += elapsed
            report.timings.append(
                TaskTiming(
                    benchmark=task.benchmark,
                    kernel=task.kernel,
                    config_name=task.config.name,
                    phase="warm",
                    seconds=elapsed,
                )
            )
