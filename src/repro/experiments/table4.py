"""Table IV: WASP area overhead (storage requirements)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area import AreaBreakdown, AreaParameters, compute_area
from repro.experiments.reporting import format_table


@dataclass
class Table4Result:
    breakdown: AreaBreakdown

    @property
    def rows(self) -> list[tuple[str, float, float]]:
        return self.breakdown.rows()

    def to_text(self) -> str:
        return format_table(
            ["Item", "Bytes per SM", "~KB per GPU"],
            [
                (name, f"{per_sm:.0f}", f"{per_gpu:.1f}")
                for name, per_sm, per_gpu in self.rows
            ],
            title="Table IV: WASP area overhead (storage requirements)",
        )


def run(params: AreaParameters | None = None) -> Table4Result:
    """Regenerate Table IV."""
    return Table4Result(breakdown=compute_area(params))
