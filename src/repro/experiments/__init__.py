"""Evaluation harness reproducing every table and figure of Section V.

One module per paper artifact:

========  ==========================================================
table2    Table II — median/max kernel speedup per benchmark
fig3      Figure 3 — pointnet utilization timeline
fig14     Figure 14 — overall speedup of the four configurations
fig15     Figure 15 — progressive WASP hardware features
fig16     Figure 16 — register footprint, uniform vs per-stage
fig17     Figure 17 — pipeline-aware scheduling policies
fig18     Figure 18 — RFQ size sweep
fig19     Figure 19 — dynamic instruction breakdown (B/W/T)
fig20     Figure 20 — memory bandwidth sensitivity
fig21     Figure 21 — L2 bandwidth utilization
table4    Table IV — WASP area overhead
========  ==========================================================

Each module exposes ``run(scale=..., benchmarks=...)`` returning a
result object with ``rows`` and ``to_text()``.
"""

from repro.experiments.configs import (
    EvalConfig,
    baseline_config,
    standard_configs,
    wasp_gpu_config,
)
from repro.experiments.parallel import (
    SweepReport,
    SweepResult,
    last_report,
    resolve_jobs,
    run_sweep,
)
from repro.experiments.runner import run_benchmark, run_kernel

__all__ = [
    "EvalConfig",
    "SweepReport",
    "SweepResult",
    "baseline_config",
    "last_report",
    "resolve_jobs",
    "run_benchmark",
    "run_kernel",
    "run_sweep",
    "standard_configs",
    "wasp_gpu_config",
]
