"""Figure 3: pointnet utilization timeline, baseline vs WASP.

The paper's motivating observation: on the baseline, compute (TensorCore
/ FP) and memory (L2 traffic) utilization *alternate* — phased behaviour
— while WASP overlaps them into sustained utilization.  We reproduce the
timeline from the simulator's per-bucket issue/traffic counters and
quantify phasing as the anti-correlation between the two series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table
from repro.workloads import get_benchmark


@dataclass
class TimelineSeries:
    config: str
    times: list[float]
    compute_util: list[float]
    memory_util: list[float]

    def mean_compute(self) -> float:
        return float(np.mean(self.compute_util)) if self.compute_util else 0.0

    def mean_memory(self) -> float:
        return float(np.mean(self.memory_util)) if self.memory_util else 0.0

    def overlap_score(self) -> float:
        """How in-phase the compute and memory series are, in [0, 1].

        ``mean(min(c, m)) / min(mean(c), mean(m))``: a perfectly phased
        execution (when one is active the other is idle) scores near 0;
        a pipeline that keeps both active simultaneously scores near 1,
        regardless of the two series' absolute magnitudes.
        """
        if not self.compute_util:
            return 0.0
        both = float(np.mean(np.minimum(self.compute_util,
                                        self.memory_util)))
        floor = min(self.mean_compute(), self.mean_memory())
        if floor <= 1e-9:
            return 0.0
        return min(1.0, both / floor)


@dataclass
class Fig3Result:
    series: list[TimelineSeries] = field(default_factory=list)

    def by_config(self, config: str) -> TimelineSeries:
        for s in self.series:
            if s.config == config:
                return s
        raise KeyError(config)

    def to_text(self) -> str:
        rows = [
            (
                s.config,
                f"{100 * s.mean_compute():.0f}%",
                f"{100 * s.mean_memory():.0f}%",
                f"{100 * s.overlap_score():.1f}%",
                len(s.times),
            )
            for s in self.series
        ]
        table = format_table(
            ["Config", "Mean compute", "Mean L2", "Overlap", "Buckets"],
            rows,
            title="Figure 3: pointnet utilization (phased vs overlapped)",
        )
        profiles = [table, ""]
        for s in self.series:
            profiles.append(f"{s.config} timeline (C=compute, M=memory):")
            profiles.append("  C " + _sparkline(s.compute_util))
            profiles.append("  M " + _sparkline(s.memory_util))
        return "\n".join(profiles)


_BARS = " .:-=+*#%@"


def _sparkline(values: list[float], width: int = 64) -> str:
    if not values:
        return ""
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        chunks = np.array_split(arr, width)
        arr = np.array([c.mean() for c in chunks])
    idx = np.clip((arr * (len(_BARS) - 1)).round().astype(int),
                  0, len(_BARS) - 1)
    return "".join(_BARS[i] for i in idx)


def run(
    scale: float = 1.0,
    benchmark: str = "pointnet",
    jobs: int | None = None,
) -> Fig3Result:
    """Regenerate Figure 3 for the pointnet gather kernel."""
    bench = get_benchmark(benchmark, scale)
    kernel = bench.kernels[0]
    configs = [baseline_config(), wasp_gpu_config()]
    sweep = run_sweep(
        [benchmark], scale, configs, jobs=jobs,
        kernel_names={benchmark: [kernel.name]},
    )
    result = Fig3Result()
    for idx, cfg in enumerate(configs):
        kres = sweep.kernel_result(benchmark, kernel.name, idx)
        timeline = kres.sim.timeline
        result.series.append(
            TimelineSeries(
                config=cfg.name,
                times=[t for t, _, _ in timeline],
                compute_util=[c for _, c, _ in timeline],
                memory_util=[m for _, _, m in timeline],
            )
        )
    return result
