"""Figure 21: L2 bandwidth utilization, BASELINE vs WASP.

Per benchmark, the cycle-weighted mean of each kernel's L2 utilization
(work delivered over peak bandwidth for the kernel's duration).  DRAM
utilization and L1 hit rates are reported alongside because the paper
attributes part of some speedups to better L1 locality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.configs import baseline_config, wasp_gpu_config
from repro.experiments.parallel import run_sweep
from repro.experiments.reporting import format_table
from repro.experiments.runner import BenchmarkResult
from repro.workloads import all_benchmarks


@dataclass
class Fig21Row:
    benchmark: str
    baseline_l2: float
    wasp_l2: float
    baseline_dram: float
    wasp_dram: float
    baseline_l1_hit: float
    wasp_l1_hit: float


@dataclass
class Fig21Result:
    rows: list[Fig21Row] = field(default_factory=list)

    def to_text(self) -> str:
        return format_table(
            ["Benchmark", "L2 base", "L2 WASP", "DRAM base", "DRAM WASP",
             "L1hit base", "L1hit WASP"],
            [
                (
                    r.benchmark,
                    f"{100 * r.baseline_l2:.0f}%", f"{100 * r.wasp_l2:.0f}%",
                    f"{100 * r.baseline_dram:.0f}%",
                    f"{100 * r.wasp_dram:.0f}%",
                    f"{100 * r.baseline_l1_hit:.0f}%",
                    f"{100 * r.wasp_l1_hit:.0f}%",
                )
                for r in self.rows
            ],
            title="Figure 21: L2 bandwidth utilization "
                  "(BASELINE vs WASP_GPU)",
        )


def _weighted_util(result: BenchmarkResult, attr: str) -> float:
    total_time = sum(k.kernel.weight * k.cycles for k in result.kernels)
    if total_time <= 0:
        return 0.0
    weighted = sum(
        k.kernel.weight * k.cycles * getattr(k.sim, attr)
        for k in result.kernels
    )
    return weighted / total_time


def run(
    scale: float = 1.0,
    benchmarks: list[str] | None = None,
    jobs: int | None = None,
) -> Fig21Result:
    """Regenerate Figure 21."""
    names = list(benchmarks or all_benchmarks())
    sweep = run_sweep(
        names, scale, [baseline_config(), wasp_gpu_config()], jobs=jobs
    )
    result = Fig21Result()
    for name in names:
        base = sweep.benchmark_result(name, 0)
        wasp = sweep.benchmark_result(name, 1)
        result.rows.append(
            Fig21Row(
                benchmark=name,
                baseline_l2=_weighted_util(base, "l2_utilization"),
                wasp_l2=_weighted_util(wasp, "l2_utilization"),
                baseline_dram=_weighted_util(base, "dram_utilization"),
                wasp_dram=_weighted_util(wasp, "dram_utilization"),
                baseline_l1_hit=_weighted_util(base, "l1_hit_rate"),
                wasp_l1_hit=_weighted_util(wasp, "l1_hit_rate"),
            )
        )
    return result
