"""Named evaluation configurations (paper Section V-A / Figure 14).

``BASELINE`` models a modern GPU where GEMM-class kernels already run
CUTLASS-style warp-specialized tile pipelines with idealized warp
mapping (the paper's baseline modelling decision); everything else runs
unspecialized.  The ``WASP_COMPILER_*`` configurations add the compiler
on baseline hardware (queues through SMEM), and ``WASP_GPU`` runs the
full compiler on the full WASP hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.compiler import WaspCompilerOptions
from repro.sim.config import (
    GPUConfig,
    QueueImpl,
    SchedulingPolicy,
    WaspFeatures,
    baseline_a100,
)


@dataclass(frozen=True)
class EvalConfig:
    """One named point in the evaluation space.

    Attributes:
        name: Configuration name used in figures.
        compiler: WASP compiler options, or ``None`` to run original
            kernels (the baseline for non-GEMM code).
        gpu: The GPU model.
        cutlass_gemm: Model CUTLASS warp specialization on GEMM kernels
            (tile-path compile + idealized mapping) even when
            ``compiler`` is ``None``.
        opt_in: Per-kernel opt-in — use the specialized version only
            when it beats the unspecialized kernel on the same GPU
            (Section V-A: "we direct the compiler on a per-kernel
            basis...").
    """

    name: str
    compiler: WaspCompilerOptions | None
    gpu: GPUConfig
    cutlass_gemm: bool = True
    opt_in: bool = True


_TILE_ONLY = WaspCompilerOptions(
    enable_streaming=False, enable_tma_offload=False
)
_ALL_SW = WaspCompilerOptions(enable_tma_offload=False)
_ALL_HW = WaspCompilerOptions()


def _gpu(features: WaspFeatures, rfq_size: int = 32) -> GPUConfig:
    return replace(baseline_a100(), features=features, rfq_size=rfq_size)


def _cutlass_gpu(base: GPUConfig) -> GPUConfig:
    """Baseline GPU with idealized mapping for CUTLASS GEMM kernels."""
    features = replace(
        base.features, explicit_naming=True, group_pipeline_mapping=True
    )
    return replace(base, features=features)


def baseline_config() -> EvalConfig:
    return EvalConfig(
        name="BASELINE", compiler=None, gpu=baseline_a100()
    )


def compiler_tile_config() -> EvalConfig:
    return EvalConfig(
        name="WASP_COMPILER_TILE", compiler=_TILE_ONLY, gpu=baseline_a100()
    )


def compiler_all_config() -> EvalConfig:
    return EvalConfig(
        name="WASP_COMPILER_ALL", compiler=_ALL_SW, gpu=baseline_a100()
    )


def wasp_gpu_config(rfq_size: int = 32) -> EvalConfig:
    from repro.sim.config import wasp_gpu

    return EvalConfig(
        name="WASP_GPU",
        compiler=_ALL_HW,
        gpu=replace(wasp_gpu(), rfq_size=rfq_size),
    )


def standard_configs() -> list[EvalConfig]:
    """The four Figure 14 configurations, in plot order."""
    return [
        baseline_config(),
        compiler_tile_config(),
        compiler_all_config(),
        wasp_gpu_config(),
    ]


def progressive_feature_configs() -> list[EvalConfig]:
    """Figure 15: WASP hardware features added progressively.

    The starting point is the software-only compiler on baseline
    hardware; each step adds one hardware feature, ending at WASP_GPU.
    """
    naming = WaspFeatures(explicit_naming=True)
    regalloc = replace(naming, per_stage_registers=True)
    tma = replace(regalloc, wasp_tma=True)
    rfq = replace(tma, queue_impl=QueueImpl.RFQ)
    sched = replace(
        rfq,
        pipeline_scheduling=True,
        group_pipeline_mapping=True,
        scheduling_policy=SchedulingPolicy.FULL_READY_PRODUCER,
    )
    return [
        EvalConfig("COMPILER_SW", _ALL_SW, baseline_a100()),
        EvalConfig("+REGALLOC", _ALL_SW, _gpu(regalloc)),
        EvalConfig("+WASP_TMA", _ALL_HW, _gpu(tma)),
        EvalConfig("+RFQ", _ALL_HW, _gpu(rfq)),
        EvalConfig("+SCHEDULING", _ALL_HW, _gpu(sched)),
    ]


def scheduling_policy_configs() -> list[EvalConfig]:
    """Figure 17: scheduler policy study on otherwise-full WASP hardware."""
    configs = []
    for policy in (
        SchedulingPolicy.PRODUCER_FIRST,
        SchedulingPolicy.CONSUMER_FIRST,
        SchedulingPolicy.FULL_READY_PRODUCER,
        SchedulingPolicy.FULL_READY_CONSUMER,
    ):
        features = replace(
            WaspFeatures.full(), scheduling_policy=policy
        )
        configs.append(
            EvalConfig(policy.value.upper(), _ALL_HW, _gpu(features))
        )
    return configs


def gto_wasp_hw_config() -> EvalConfig:
    """Full WASP hardware but the baseline GTO scheduler (Fig 17 base)."""
    features = replace(
        WaspFeatures.full(),
        pipeline_scheduling=False,
        scheduling_policy=SchedulingPolicy.GTO,
    )
    return EvalConfig("GTO", _ALL_HW, _gpu(features))
