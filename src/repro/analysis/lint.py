"""Registry-wide lint driver behind ``repro lint``.

Compiles each workload kernel with the standard compiler options but
verification-as-exception disabled, runs the static verifier over the
result (the specialized program when extraction succeeds, the original
otherwise), and aggregates the findings into one report document.

Unlike the compiler's opt-out post-pass this never raises on findings:
lint exists to *show* them.  The CLI maps error-severity findings to a
non-zero exit code so CI can gate on a clean registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.verifier import verify_program
from repro.core.compiler.pipeline import (
    CompileResult,
    WaspCompiler,
    WaspCompilerOptions,
)
from repro.isa.program import Program

LINT_SCHEMA = "repro-lint-report-v1"


@dataclass
class KernelLint:
    """One kernel's verification outcome."""

    benchmark: str
    kernel: str
    specialized: bool
    num_stages: int
    report: DiagnosticReport

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.kernel}"

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "kernel": self.kernel,
            "specialized": self.specialized,
            "num_stages": self.num_stages,
            **self.report.to_json(),
        }


@dataclass
class LintResult:
    """Aggregated lint outcome over a set of benchmarks."""

    scale: float
    kernels: list[KernelLint] = field(default_factory=list)

    @property
    def num_errors(self) -> int:
        return sum(len(k.report.errors) for k in self.kernels)

    @property
    def num_warnings(self) -> int:
        return sum(len(k.report.warnings) for k in self.kernels)

    @property
    def clean(self) -> bool:
        return self.num_errors == 0

    def summary_line(self) -> str:
        if self.num_errors == 0 and self.num_warnings == 0:
            return (
                f"verifier: clean across {len(self.kernels)} kernel(s)"
            )
        parts = []
        if self.num_errors:
            parts.append(f"{self.num_errors} error(s)")
        if self.num_warnings:
            parts.append(f"{self.num_warnings} warning(s)")
        return (
            f"verifier: {', '.join(parts)} across "
            f"{len(self.kernels)} kernel(s)"
        )

    def to_json(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "scale": self.scale,
            "num_kernels": len(self.kernels),
            "num_errors": self.num_errors,
            "num_warnings": self.num_warnings,
            "kernels": [k.to_json() for k in self.kernels],
        }

    def to_text(self, verbose: bool = False) -> str:
        lines: list[str] = []
        for kernel in self.kernels:
            findings = list(kernel.report)
            tag = (
                f"{kernel.num_stages}-stage pipeline"
                if kernel.specialized else "not specialized"
            )
            if findings:
                lines.append(f"{kernel.label} [{tag}]:")
                lines.extend(f"  {d.format()}" for d in findings)
            elif verbose:
                lines.append(f"{kernel.label} [{tag}]: clean")
        lines.append(self.summary_line())
        return "\n".join(lines)


def lint_kernel(
    program: Program,
    num_warps: int,
    options: WaspCompilerOptions | None = None,
) -> tuple[CompileResult, DiagnosticReport]:
    """Compile one kernel program (verifier-as-exception off) and verify.

    Returns ``(compile_result, DiagnosticReport)``.  Used by tests and
    :func:`lint_benchmarks`; callers that want raising behaviour should
    compile with ``verify=True`` instead.
    """
    from dataclasses import replace

    options = options or WaspCompilerOptions()
    if options.verify:
        options = replace(options, verify=False)
    result = WaspCompiler(options).compile(program, num_warps)
    return result, verify_program(result.program)


def lint_benchmarks(
    names: list[str] | None = None,
    scale: float = 0.25,
    options: WaspCompilerOptions | None = None,
) -> LintResult:
    """Lint every kernel of the named benchmarks (default: all)."""
    from repro.workloads.registry import all_benchmarks, get_benchmark

    names = list(names) if names else all_benchmarks()
    out = LintResult(scale=scale)
    for name in names:
        bench = get_benchmark(name, scale)
        for kernel in bench.kernels:
            result, report = lint_kernel(
                kernel.program, kernel.launch.num_warps, options
            )
            out.kernels.append(KernelLint(
                benchmark=bench.name,
                kernel=kernel.name,
                specialized=result.specialized,
                num_stages=result.num_stages,
                report=report,
            ))
    return out
