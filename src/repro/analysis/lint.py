"""Registry-wide lint driver behind ``repro lint``.

Compiles each workload kernel with the standard compiler options but
verification-as-exception disabled, runs the static verifier over the
result (the specialized program when extraction succeeds, the original
otherwise), and aggregates the findings into one report document.

Unlike the compiler's opt-out post-pass this never raises on findings:
lint exists to *show* them.  The CLI maps error-severity findings to a
non-zero exit code so CI can gate on a clean registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.verifier import verify_program
from repro.core.compiler.pipeline import (
    CompileResult,
    WaspCompiler,
    WaspCompilerOptions,
)
from repro.isa.program import Program

LINT_SCHEMA = "repro-lint-report-v1"
VALIDATE_SCHEMA = "repro-validate-report-v1"


@dataclass
class KernelLint:
    """One kernel's verification outcome."""

    benchmark: str
    kernel: str
    specialized: bool
    num_stages: int
    report: DiagnosticReport

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.kernel}"

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "kernel": self.kernel,
            "specialized": self.specialized,
            "num_stages": self.num_stages,
            **self.report.to_json(),
        }


@dataclass
class LintResult:
    """Aggregated lint outcome over a set of benchmarks."""

    scale: float
    kernels: list[KernelLint] = field(default_factory=list)

    @property
    def num_errors(self) -> int:
        return sum(len(k.report.errors) for k in self.kernels)

    @property
    def num_warnings(self) -> int:
        return sum(len(k.report.warnings) for k in self.kernels)

    @property
    def clean(self) -> bool:
        return self.num_errors == 0

    def summary_line(self) -> str:
        if self.num_errors == 0 and self.num_warnings == 0:
            return (
                f"verifier: clean across {len(self.kernels)} kernel(s)"
            )
        parts = []
        if self.num_errors:
            parts.append(f"{self.num_errors} error(s)")
        if self.num_warnings:
            parts.append(f"{self.num_warnings} warning(s)")
        return (
            f"verifier: {', '.join(parts)} across "
            f"{len(self.kernels)} kernel(s)"
        )

    def to_json(self) -> dict:
        return {
            "schema": LINT_SCHEMA,
            "scale": self.scale,
            "num_kernels": len(self.kernels),
            "num_errors": self.num_errors,
            "num_warnings": self.num_warnings,
            "kernels": [k.to_json() for k in self.kernels],
        }

    def to_text(self, verbose: bool = False) -> str:
        lines: list[str] = []
        for kernel in self.kernels:
            findings = list(kernel.report)
            tag = (
                f"{kernel.num_stages}-stage pipeline"
                if kernel.specialized else "not specialized"
            )
            if findings:
                lines.append(f"{kernel.label} [{tag}]:")
                lines.extend(f"  {d.format()}" for d in findings)
            elif verbose:
                lines.append(f"{kernel.label} [{tag}]: clean")
        lines.append(self.summary_line())
        return "\n".join(lines)


def lint_kernel(
    program: Program,
    num_warps: int,
    options: WaspCompilerOptions | None = None,
    validate: bool = False,
) -> tuple[CompileResult, DiagnosticReport]:
    """Compile one kernel program (verifier-as-exception off) and verify.

    Returns ``(compile_result, DiagnosticReport)``.  Used by tests and
    :func:`lint_benchmarks`; callers that want raising behaviour should
    compile with ``verify=True`` instead.  With ``validate=True`` the
    translation validator runs too and its WASP-T findings are merged
    into the report.
    """
    from dataclasses import replace

    options = options or WaspCompilerOptions()
    if options.verify or options.validate:
        options = replace(options, verify=False, validate=False)
    result = WaspCompiler(options).compile(program, num_warps)
    report = verify_program(result.program)
    if validate:
        from repro.analysis.transval import validate_programs

        tv = validate_programs(
            program, result.program, assume_verified=True
        )
        report.extend(list(tv.report))
        report = report.normalized()
    return result, report


def lint_benchmarks(
    names: list[str] | None = None,
    scale: float = 0.25,
    options: WaspCompilerOptions | None = None,
    validate: bool = False,
) -> LintResult:
    """Lint every kernel of the named benchmarks (default: all)."""
    from repro.workloads.registry import all_benchmarks, get_benchmark

    names = list(names) if names else all_benchmarks()
    out = LintResult(scale=scale)
    for name in names:
        bench = get_benchmark(name, scale)
        for kernel in bench.kernels:
            result, report = lint_kernel(
                kernel.program, kernel.launch.num_warps, options,
                validate=validate,
            )
            out.kernels.append(KernelLint(
                benchmark=bench.name,
                kernel=kernel.name,
                specialized=result.specialized,
                num_stages=result.num_stages,
                report=report,
            ))
    return out


@dataclass
class KernelValidation:
    """One kernel's translation-validation outcome at one ring depth."""

    benchmark: str
    kernel: str
    depth: int
    specialized: bool
    verdict: str
    report: DiagnosticReport
    matched_stores: int = 0
    source_stores: int = 0
    options_name: str = ""

    @property
    def label(self) -> str:
        opts = f"[{self.options_name}]" if self.options_name else ""
        return f"{self.benchmark}/{self.kernel}{opts}@depth{self.depth}"

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "kernel": self.kernel,
            "depth": self.depth,
            "options": self.options_name,
            "specialized": self.specialized,
            "verdict": self.verdict,
            "matched_stores": self.matched_stores,
            "source_stores": self.source_stores,
            **self.report.to_json(),
        }


@dataclass
class ValidateResult:
    """Aggregated translation-validation outcome (``repro validate``)."""

    scale: float
    kernels: list[KernelValidation] = field(default_factory=list)

    @property
    def num_errors(self) -> int:
        return sum(len(k.report.errors) for k in self.kernels)

    @property
    def num_abstentions(self) -> int:
        return sum(
            1 for k in self.kernels if k.verdict == "abstain"
        )

    @property
    def clean(self) -> bool:
        """Every compile certified: no T-errors and no abstentions."""
        return all(k.verdict == "equivalent" for k in self.kernels)

    def summary_line(self) -> str:
        n = len(self.kernels)
        if self.clean:
            return f"transval: {n} compile(s) certified equivalent"
        n_neq = sum(
            1 for k in self.kernels if k.verdict == "not-equivalent"
        )
        parts = []
        if n_neq:
            parts.append(f"{n_neq} not-equivalent")
        if self.num_abstentions:
            parts.append(f"{self.num_abstentions} abstained")
        return f"transval: {', '.join(parts)} of {n} compile(s)"

    def to_json(self) -> dict:
        return {
            "schema": VALIDATE_SCHEMA,
            "scale": self.scale,
            "num_kernels": len(self.kernels),
            "num_errors": self.num_errors,
            "num_abstentions": self.num_abstentions,
            "kernels": [k.to_json() for k in self.kernels],
        }

    def to_text(self, verbose: bool = False) -> str:
        lines: list[str] = []
        for kernel in self.kernels:
            tag = (
                f"{kernel.matched_stores}/{kernel.source_stores} stores"
                if kernel.specialized else "not specialized"
            )
            if kernel.verdict != "equivalent":
                lines.append(
                    f"{kernel.label} [{tag}]: {kernel.verdict}"
                )
                lines.extend(f"  {d.format()}" for d in kernel.report)
            elif verbose:
                lines.append(f"{kernel.label} [{tag}]: equivalent")
        lines.append(self.summary_line())
        return "\n".join(lines)


def validate_kernel(
    program: Program,
    num_warps: int,
    options: WaspCompilerOptions | None = None,
) -> tuple[CompileResult, "object"]:
    """Compile one kernel and run the translation validator over it."""
    from dataclasses import replace

    from repro.analysis.transval import validate_programs

    options = options or WaspCompilerOptions()
    if options.verify or options.validate:
        options = replace(options, verify=False, validate=False)
    result = WaspCompiler(options).compile(program, num_warps)
    return result, validate_programs(program, result.program)


def validate_benchmarks(
    names: list[str] | None = None,
    scale: float = 0.25,
    option_sets: (
        list[tuple[str, WaspCompilerOptions]] | None
    ) = None,
    depths: tuple[int, ...] = (2,),
) -> ValidateResult:
    """Validate the named benchmarks under each (options, depth) pair.

    ``option_sets`` is ``[(name, options), …]``; each is crossed with
    every ring depth in ``depths`` (``pipeline_depth`` is overridden
    per run).  Default: one run per depth under default options.
    """
    from dataclasses import replace

    from repro.workloads.registry import all_benchmarks, get_benchmark

    names = list(names) if names else all_benchmarks()
    option_sets = option_sets or [("default", WaspCompilerOptions())]
    out = ValidateResult(scale=scale)
    for name in names:
        bench = get_benchmark(name, scale)
        for kernel in bench.kernels:
            for opts_name, options in option_sets:
                for depth in depths:
                    result, tv = validate_kernel(
                        kernel.program,
                        kernel.launch.num_warps,
                        replace(options, pipeline_depth=depth),
                    )
                    out.kernels.append(KernelValidation(
                        benchmark=bench.name,
                        kernel=kernel.name,
                        depth=depth,
                        options_name=opts_name,
                        specialized=result.specialized,
                        verdict=tv.verdict,
                        report=tv.report,
                        matched_stores=tv.matched_stores,
                        source_stores=tv.source_stores,
                    ))
    return out


def standard_option_sets() -> list[tuple[str, WaspCompilerOptions]]:
    """The named compiler option sets ``repro validate`` sweeps.

    These are the fuzz oracle's deterministic variants minus
    ``deep-ring`` (its ``pipeline_depth=4`` would be overridden by the
    depth cross anyway, duplicating ``full``).
    """
    from repro.fuzz.oracle import OPTION_SETS

    return [(n, o) for n, o in OPTION_SETS if n != "deep-ring"]


def lint_corpus(corpus_dir=None, validate: bool = False) -> LintResult:
    """Lint the committed fuzz-corpus kernels (``repro lint --corpus``).

    Each corpus entry's spec is rebuilt into a kernel and its *clean*
    compile is verified — the corpus doubles as extra lint coverage
    beyond the registry.  Injected corruptions are exercised by
    ``repro validate --corpus`` and the fuzz gates, not here.
    """
    from repro.fuzz.corpus import load_corpus
    from repro.fuzz.generator import build_kernel

    out = LintResult(scale=1.0)
    for entry in load_corpus(corpus_dir):
        kernel = build_kernel(entry.spec)
        result, report = lint_kernel(
            kernel.program, kernel.launch.num_warps, validate=validate,
        )
        out.kernels.append(KernelLint(
            benchmark="corpus",
            kernel=entry.name,
            specialized=result.specialized,
            num_stages=result.num_stages,
            report=report,
        ))
    return out


def validate_corpus(corpus_dir=None) -> ValidateResult:
    """Translation-validate the committed fuzz corpus.

    Entries carrying an injected corruption are compiled, mutated, and
    validated — the validator must report ``not-equivalent`` (these
    are the detector self-tests).  Clean entries must certify
    ``equivalent``.  An entry whose verdict contradicts its expectation
    is surfaced as a synthetic WASP-T002 so the standard gating
    (:attr:`ValidateResult.clean`) fails.
    """
    from dataclasses import replace

    from repro.analysis.transval import validate_programs
    from repro.fuzz.corpus import load_corpus
    from repro.fuzz.generator import build_kernel
    from repro.fuzz.mutate import apply_mutation
    from repro.fuzz.oracle import OPTION_SETS

    out = ValidateResult(scale=1.0)
    for entry in load_corpus(corpus_dir):
        kernel = build_kernel(entry.spec)
        for opts_name, options in OPTION_SETS:
            opts = replace(options, verify=False, validate=False)
            result = WaspCompiler(opts).compile(
                kernel.program, kernel.launch.num_warps
            )
            if not result.specialized:
                continue
            program = result.program
            if entry.inject is not None:
                program = apply_mutation(program, entry.inject)
                if program is None:
                    continue
            tv = validate_programs(kernel.program, program)
            verdict = tv.verdict
            report = tv.report
            if entry.inject is not None:
                # Expectation flip: a flagged corruption is the
                # *passing* outcome for an injected entry.
                if verdict == "not-equivalent":
                    verdict = "equivalent"
                    report = DiagnosticReport()
                else:
                    from repro.analysis.diagnostics import Diagnostic

                    verdict = "not-equivalent"
                    report = DiagnosticReport([Diagnostic(
                        rule="WASP-T002",
                        message=(
                            f"injected corruption {entry.inject!r} was "
                            f"NOT statically flagged (validator said "
                            f"{tv.verdict!r}) — the corpus self-test "
                            "expects not-equivalent"
                        ),
                        kernel=kernel.program.name,
                    )])
            out.kernels.append(KernelValidation(
                benchmark="corpus",
                kernel=entry.name,
                depth=opts.pipeline_depth,
                options_name=opts_name,
                specialized=True,
                verdict=verdict,
                report=report,
                matched_stores=tv.matched_stores,
                source_stores=tv.source_stores,
            ))
            break
    return out
