"""Static pipeline verification for warp-specialized programs.

Four passes over a :class:`~repro.isa.program.Program` (no execution):

* queue protocol (``WASP-Q*``) — single producer/consumer, per-iteration
  push/pop balance, credit feasibility;
* deadlock (``WASP-D*``) — stage/queue wait-for cycles, arrive/wait
  pairing, barrier metadata;
* SMEM races (``WASP-S*``) — cross-stage buffer access without an
  ordering barrier, double-buffer aware;
* resources (``WASP-R*``/``WASP-C*``) — register budgets vs. the RF,
  use-before-def, SMEM capacity, CFG hygiene.

The diagnostics submodule is imported eagerly because the ISA layer
reports its structural findings through it; everything that depends on
the ISA (the passes themselves) loads lazily to keep the import graph
acyclic.
"""

from typing import Any

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    DiagnosticReport,
    Severity,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "VerifyLimits",
    "verify_program",
    "verify_or_raise",
]


def __getattr__(name: str) -> Any:
    if name in ("verify_program", "verify_or_raise"):
        from repro.analysis import verifier

        return getattr(verifier, name)
    if name == "VerifyLimits":
        from repro.analysis.resources import VerifyLimits

        return VerifyLimits
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
