"""Resource and hygiene checker (rules WASP-R001..R006, C006, C007).

Proves the launch-time contracts the simulator's :class:`ResourceError`
and silent mis-accounting would otherwise surface mid-run:

* the spec's per-stage register allocation fits the SM register file
  (Section V's RF partitioning) and covers every register each stage's
  code actually references;
* every register/predicate read is preceded by a definition — a
  definite-assignment dataflow per stage section (reads that are
  undefined on *every* path are errors, reads undefined on *some* path
  are warnings, since predicated definitions are modelled as full
  definitions);
* the SMEM footprint fits the configured capacity;
* CFG hygiene: unreachable blocks, and control bleeding from one
  stage's code section into another's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import DISPATCH, ProgramView
from repro.analysis.diagnostics import Diagnostic
from repro.core.specs import ThreadBlockSpec
from repro.isa.operands import Operand


@dataclass(frozen=True)
class VerifyLimits:
    """Capacities the resource pass checks against.

    Defaults mirror :class:`repro.sim.config.GPUConfig` (A100-class SM).
    """

    registers_per_sm: int = 65536
    smem_capacity_words: int = 41984
    threads_per_warp: int = 32


def check_resources(
    view: ProgramView,
    spec: ThreadBlockSpec | None,
    limits: VerifyLimits,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    diags.extend(_check_hygiene(view))
    diags.extend(_check_smem_capacity(view, limits))
    if spec is not None:
        diags.extend(_check_register_budgets(view, spec, limits))
    for stage in sorted(view.sections):
        diags.extend(_check_use_before_def(view, stage))
    return diags


def _check_hygiene(view: ProgramView) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name
    for block in view.program.blocks:
        if block.label not in view.reachable:
            stage = view.stage_of_block(block.label)
            diags.append(Diagnostic(
                rule="WASP-C006",
                message=f"block {block.label!r} is unreachable from the "
                        "program entry",
                kernel=kernel,
                stage=stage if stage >= 0 else None,
                block=block.label,
            ))
            continue
        stage = view.stage_of_block(block.label)
        if stage == DISPATCH:
            continue
        for succ in view.successors.get(block.label, ()):
            succ_stage = view.stage_of_block(succ)
            if succ_stage not in (stage, DISPATCH) and succ_stage >= 0:
                diags.append(Diagnostic(
                    rule="WASP-C007",
                    message=f"stage {stage} block {block.label!r} "
                            f"transfers control into stage {succ_stage} "
                            f"({succ!r})",
                    kernel=kernel,
                    stage=stage,
                    block=block.label,
                    hint="end every stage section with EXIT or an "
                         "in-section branch",
                ))
    return diags


def _check_smem_capacity(
    view: ProgramView, limits: VerifyLimits
) -> list[Diagnostic]:
    if view.program.smem_words <= limits.smem_capacity_words:
        return []
    return [Diagnostic(
        rule="WASP-R004",
        message=f"program allocates {view.program.smem_words} SMEM words "
                f"but the SM holds {limits.smem_capacity_words}",
        kernel=view.program.name,
        hint="shrink tile buffers or disable double buffering",
    )]


def _check_register_budgets(
    view: ProgramView,
    spec: ThreadBlockSpec,
    limits: VerifyLimits,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name

    footprint = spec.per_stage_register_footprint(limits.threads_per_warp)
    if footprint > limits.registers_per_sm:
        diags.append(Diagnostic(
            rule="WASP-R001",
            message=f"per-stage register footprint {footprint} exceeds "
                    f"the {limits.registers_per_sm}-register file "
                    f"(stage_registers={spec.stage_registers}, "
                    f"{spec.num_warps} warps)",
            kernel=kernel,
            hint="reduce stage register budgets or warps per stage",
        ))

    for stage in view.stages:
        if stage >= spec.num_stages:
            diags.append(Diagnostic(
                rule="WASP-R006",
                message=f"code section for stage {stage} exists but the "
                        f"spec declares only {spec.num_stages} stages",
                kernel=kernel,
                stage=stage,
            ))
            continue
        budget = spec.stage_registers[stage]
        top = -1
        culprit = None
        for block in view.reachable_blocks(stage):
            for instr in block.instructions:
                regs = instr.used_registers() + instr.defined_registers()
                for reg in regs:
                    if reg.index > top:
                        top = reg.index
                        culprit = (block.label, repr(instr))
        if top + 1 > budget:
            assert culprit is not None
            diags.append(Diagnostic(
                rule="WASP-R002",
                message=f"stage {stage} references R{top} but its "
                        f"allocation is {budget} registers "
                        f"(R0..R{budget - 1})",
                kernel=kernel,
                stage=stage,
                block=culprit[0],
                instruction=culprit[1],
                hint="raise stage_registers or re-run register "
                     "compaction",
            ))

    declared = view.program.num_registers
    if declared is not None and spec.stage_registers and (
        declared < max(spec.stage_registers)
    ):
        diags.append(Diagnostic(
            rule="WASP-R006",
            message=f"program declares {declared} registers but the spec "
                    f"allocates up to {max(spec.stage_registers)} to a "
                    "stage",
            kernel=kernel,
        ))
    if spec.smem_words != view.program.smem_words:
        diags.append(Diagnostic(
            rule="WASP-R006",
            message=f"spec.smem_words={spec.smem_words} disagrees with "
                    f"the program's {view.program.smem_words}",
            kernel=kernel,
        ))
    return diags


def _check_use_before_def(
    view: ProgramView, stage: int
) -> list[Diagnostic]:
    """Definite-assignment dataflow over one stage section's sub-CFG."""
    section = view.sections[stage]
    labels = section.labels & view.reachable
    if not labels:
        return []
    blocks = [b for b in section.blocks if b.label in labels]
    order = {b.label: i for i, b in enumerate(blocks)}
    block_by_label = {b.label: b for b in blocks}

    # Dispatch-section definitions (the jump table's predicate) reach
    # every stage entry; for the dispatch section itself start empty.
    inherited: set[Operand] = set()
    if stage != DISPATCH and DISPATCH in view.sections:
        for block in view.sections[DISPATCH].blocks:
            for instr in block.instructions:
                inherited.update(instr.defined_registers())
                inherited.update(instr.defined_predicates())

    preds: dict[str, list[str]] = {label: [] for label in labels}
    for label in labels:
        for succ in view.successors.get(label, ()):
            if succ in labels:
                preds[succ].append(label)

    ever_defined: set[Operand] = set(inherited)
    for block in blocks:
        for instr in block.instructions:
            ever_defined.update(instr.defined_registers())
            ever_defined.update(instr.defined_predicates())

    # Forward "definitely assigned" fixpoint: IN = intersection of
    # predecessor OUTs; unvisited predecessors are optimistic (top).
    out_sets: dict[str, set[Operand] | None] = {
        label: None for label in labels
    }

    def visited_outs(label: str) -> list[set[Operand]]:
        outs: list[set[Operand]] = []
        for pred in preds[label]:
            out = out_sets[pred]
            if out is not None:
                outs.append(out)
        return outs

    worklist = [b.label for b in blocks]
    while worklist:
        label = worklist.pop(0)
        pred_outs = visited_outs(label)
        if preds[label] and pred_outs:
            in_set = set.intersection(*pred_outs)
        elif preds[label]:
            in_set = set(ever_defined)  # all preds unvisited: optimistic
        else:
            in_set = set(inherited)
        current = set(in_set)
        for instr in block_by_label[label].instructions:
            current.update(instr.defined_registers())
            current.update(instr.defined_predicates())
        if out_sets[label] is None or out_sets[label] != current:
            out_sets[label] = current
            for succ in view.successors.get(label, ()):
                if succ in labels and succ not in worklist:
                    worklist.append(succ)

    diags: list[Diagnostic] = []
    reported: set[Operand] = set()
    for block in sorted(blocks, key=lambda b: order[b.label]):
        pred_outs = visited_outs(block.label)
        if preds[block.label] and pred_outs:
            current = set.intersection(*pred_outs)
        else:
            current = set(inherited)
        for instr in block.instructions:
            uses: list[Operand] = list(instr.used_registers())
            uses.extend(instr.used_predicates())
            for operand in uses:
                if operand in current or operand in reported:
                    continue
                reported.add(operand)
                never = operand not in ever_defined
                diags.append(Diagnostic(
                    rule="WASP-R003" if never else "WASP-R005",
                    message=f"{operand!r} is read but "
                            + ("never defined in this stage" if never
                               else "not defined on every path here"),
                    kernel=view.program.name,
                    stage=stage if stage >= 0 else None,
                    block=block.label,
                    instruction=repr(instr),
                    hint="initialize the register before the loop or "
                         "guard the use",
                ))
            current.update(instr.defined_registers())
            current.update(instr.defined_predicates())
    return diags
