"""Resource and hygiene checker (rules WASP-R001..R006, C006, C007).

Proves the launch-time contracts the simulator's :class:`ResourceError`
and silent mis-accounting would otherwise surface mid-run:

* the spec's per-stage register allocation fits the SM register file
  (Section V's RF partitioning) and covers every register each stage's
  code actually references;
* every register/predicate read is preceded by a definition — a
  definite-assignment dataflow per stage section (reads that are
  undefined on *every* path are errors, reads undefined on *some* path
  are warnings, since predicated definitions are modelled as full
  definitions);
* the SMEM footprint fits the configured capacity;
* CFG hygiene: unreachable blocks, and control bleeding from one
  stage's code section into another's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import DISPATCH, ProgramView
from repro.analysis.dataflow.framework import (
    DataflowProblem,
    MeetSetLattice,
    solve,
)
from repro.analysis.diagnostics import Diagnostic
from repro.core.specs import ThreadBlockSpec
from repro.isa.operands import Operand


@dataclass(frozen=True)
class VerifyLimits:
    """Capacities the resource pass checks against.

    Defaults mirror :class:`repro.sim.config.GPUConfig` (A100-class SM).
    """

    registers_per_sm: int = 65536
    smem_capacity_words: int = 41984
    threads_per_warp: int = 32


def check_resources(
    view: ProgramView,
    spec: ThreadBlockSpec | None,
    limits: VerifyLimits,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    diags.extend(_check_hygiene(view))
    diags.extend(_check_smem_capacity(view, limits))
    if spec is not None:
        diags.extend(_check_register_budgets(view, spec, limits))
    for stage in sorted(view.sections):
        diags.extend(_check_use_before_def(view, stage))
    return diags


def _check_hygiene(view: ProgramView) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name
    for block in view.program.blocks:
        if block.label not in view.reachable:
            stage = view.stage_of_block(block.label)
            diags.append(Diagnostic(
                rule="WASP-C006",
                message=f"block {block.label!r} is unreachable from the "
                        "program entry",
                kernel=kernel,
                stage=stage if stage >= 0 else None,
                block=block.label,
            ))
            continue
        stage = view.stage_of_block(block.label)
        if stage == DISPATCH:
            continue
        for succ in view.successors.get(block.label, ()):
            succ_stage = view.stage_of_block(succ)
            if succ_stage not in (stage, DISPATCH) and succ_stage >= 0:
                diags.append(Diagnostic(
                    rule="WASP-C007",
                    message=f"stage {stage} block {block.label!r} "
                            f"transfers control into stage {succ_stage} "
                            f"({succ!r})",
                    kernel=kernel,
                    stage=stage,
                    block=block.label,
                    hint="end every stage section with EXIT or an "
                         "in-section branch",
                ))
    return diags


def _check_smem_capacity(
    view: ProgramView, limits: VerifyLimits
) -> list[Diagnostic]:
    if view.program.smem_words <= limits.smem_capacity_words:
        return []
    return [Diagnostic(
        rule="WASP-R004",
        message=f"program allocates {view.program.smem_words} SMEM words "
                f"but the SM holds {limits.smem_capacity_words}",
        kernel=view.program.name,
        hint="shrink tile buffers or disable double buffering",
    )]


def _check_register_budgets(
    view: ProgramView,
    spec: ThreadBlockSpec,
    limits: VerifyLimits,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name

    footprint = spec.per_stage_register_footprint(limits.threads_per_warp)
    if footprint > limits.registers_per_sm:
        diags.append(Diagnostic(
            rule="WASP-R001",
            message=f"per-stage register footprint {footprint} exceeds "
                    f"the {limits.registers_per_sm}-register file "
                    f"(stage_registers={spec.stage_registers}, "
                    f"{spec.num_warps} warps)",
            kernel=kernel,
            hint="reduce stage register budgets or warps per stage",
        ))

    for stage in view.stages:
        if stage >= spec.num_stages:
            diags.append(Diagnostic(
                rule="WASP-R006",
                message=f"code section for stage {stage} exists but the "
                        f"spec declares only {spec.num_stages} stages",
                kernel=kernel,
                stage=stage,
            ))
            continue
        budget = spec.stage_registers[stage]
        top = -1
        culprit = None
        for block in view.reachable_blocks(stage):
            for instr in block.instructions:
                regs = instr.used_registers() + instr.defined_registers()
                for reg in regs:
                    if reg.index > top:
                        top = reg.index
                        culprit = (block.label, repr(instr))
        if top + 1 > budget:
            assert culprit is not None
            diags.append(Diagnostic(
                rule="WASP-R002",
                message=f"stage {stage} references R{top} but its "
                        f"allocation is {budget} registers "
                        f"(R0..R{budget - 1})",
                kernel=kernel,
                stage=stage,
                block=culprit[0],
                instruction=culprit[1],
                hint="raise stage_registers or re-run register "
                     "compaction",
            ))

    declared = view.program.num_registers
    if declared is not None and spec.stage_registers and (
        declared < max(spec.stage_registers)
    ):
        diags.append(Diagnostic(
            rule="WASP-R006",
            message=f"program declares {declared} registers but the spec "
                    f"allocates up to {max(spec.stage_registers)} to a "
                    "stage",
            kernel=kernel,
        ))
    if spec.smem_words != view.program.smem_words:
        diags.append(Diagnostic(
            rule="WASP-R006",
            message=f"spec.smem_words={spec.smem_words} disagrees with "
                    f"the program's {view.program.smem_words}",
            kernel=kernel,
        ))
    return diags


def _check_use_before_def(
    view: ProgramView, stage: int
) -> list[Diagnostic]:
    """Definite-assignment dataflow over one stage section's sub-CFG.

    An instance of the generic worklist framework
    (:mod:`repro.analysis.dataflow.framework`): facts are the set of
    definitely-assigned operands, joined by intersection over
    predecessor edges (``None`` = not-yet-visited, optimistic), each
    edge transferring its source block's definitions.
    """
    section = view.sections[stage]
    labels = section.labels & view.reachable
    if not labels:
        return []
    blocks = [b for b in section.blocks if b.label in labels]
    order = {b.label: i for i, b in enumerate(blocks)}

    # Dispatch-section definitions (the jump table's predicate) reach
    # every stage entry; for the dispatch section itself start empty.
    inherited: set[Operand] = set()
    if stage != DISPATCH and DISPATCH in view.sections:
        for block in view.sections[DISPATCH].blocks:
            for instr in block.instructions:
                inherited.update(instr.defined_registers())
                inherited.update(instr.defined_predicates())

    preds: dict[str, list[str]] = {label: [] for label in labels}
    succs: dict[str, tuple[str, ...]] = {}
    for label in labels:
        succs[label] = tuple(
            s for s in view.successors.get(label, ()) if s in labels
        )
        for succ in succs[label]:
            preds.setdefault(succ, [])
    for label in labels:
        for succ in succs[label]:
            preds[succ].append(label)

    block_defs: dict[str, frozenset[Operand]] = {}
    ever_defined: set[Operand] = set(inherited)
    for block in blocks:
        defs: set[Operand] = set()
        for instr in block.instructions:
            defs.update(instr.defined_registers())
            defs.update(instr.defined_predicates())
        block_defs[block.label] = frozenset(defs)
        ever_defined.update(defs)

    lattice: MeetSetLattice[Operand] = MeetSetLattice()

    def transfer(
        src: str, dst: str, value: frozenset[Operand] | None
    ) -> frozenset[Operand] | None:
        if value is None:
            return None
        return value | block_defs[src]

    problem: DataflowProblem[str, frozenset[Operand] | None]
    problem = DataflowProblem(
        nodes=tuple(b.label for b in blocks),
        successors=succs,
        bottom=lattice.bottom,
        join=lattice.join,
        leq=lattice.leq,
        transfer=transfer,
        initial={
            label: frozenset(inherited)
            for label in (b.label for b in blocks)
            if not preds[label]
        },
    )
    in_sets = solve(problem)

    diags: list[Diagnostic] = []
    reported: set[Operand] = set()
    for block in sorted(blocks, key=lambda b: order[b.label]):
        solved = in_sets[block.label]
        if not preds[block.label]:
            current = set(inherited)
        elif solved is None:
            current = set(ever_defined)  # section-internal dead cycle
        else:
            current = set(solved)
        for instr in block.instructions:
            uses: list[Operand] = list(instr.used_registers())
            uses.extend(instr.used_predicates())
            for operand in uses:
                if operand in current or operand in reported:
                    continue
                reported.add(operand)
                never = operand not in ever_defined
                diags.append(Diagnostic(
                    rule="WASP-R003" if never else "WASP-R005",
                    message=f"{operand!r} is read but "
                            + ("never defined in this stage" if never
                               else "not defined on every path here"),
                    kernel=view.program.name,
                    stage=stage if stage >= 0 else None,
                    block=block.label,
                    instruction=repr(instr),
                    hint="initialize the register before the loop or "
                         "guard the use",
                ))
            current.update(instr.defined_registers())
            current.update(instr.defined_predicates())
    return diags
