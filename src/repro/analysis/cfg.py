"""CFG utilities shared by the verifier passes.

The combined warp-specialized program concatenates one code section per
pipeline stage behind a jump table (``finalize_pipeline``).  Analyses
operate per stage, so this module recovers that partition from the block
labelling convention (``jump_table_<n>`` dispatch blocks, ``s<n>_...``
stage sections) and offers reachability, natural-loop detection and
bounded path enumeration over a stage's sub-CFG.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, Program

_STAGE_LABEL = re.compile(r"^s(\d+)_")
_JUMP_LABEL = re.compile(r"^jump_table_(\d+)$")

#: Stage id used for dispatch (jump-table) blocks and for every block of
#: an unspecialized program: "before stage dispatch".
DISPATCH = -1


def stage_of_label(label: str) -> int:
    """Pipeline stage owning a block label, or :data:`DISPATCH`."""
    match = _STAGE_LABEL.match(label)
    if match:
        return int(match.group(1))
    return DISPATCH


def strip_stage_prefix(label: str) -> str:
    """Block label without its ``s<n>_`` stage prefix."""
    return _STAGE_LABEL.sub("", label)


@dataclass
class StageSection:
    """One pipeline stage's slice of the combined program."""

    stage: int
    blocks: list[BasicBlock] = field(default_factory=list)

    @property
    def labels(self) -> set[str]:
        return {b.label for b in self.blocks}


@dataclass
class ProgramView:
    """A program plus the CFG facts every pass needs.

    For an unspecialized program there is a single section with stage
    :data:`DISPATCH` covering every block.
    """

    program: Program
    sections: dict[int, StageSection]
    successors: dict[str, list[str]]
    reachable: set[str]

    @property
    def stages(self) -> list[int]:
        """Real stage ids (dispatch excluded), ascending."""
        return sorted(s for s in self.sections if s != DISPATCH)

    def section(self, stage: int) -> StageSection:
        return self.sections[stage]

    def stage_of_block(self, label: str) -> int:
        return stage_of_label(label)

    def reachable_blocks(self, stage: int) -> list[BasicBlock]:
        """The stage's blocks that are reachable from the program entry."""
        return [
            b for b in self.sections[stage].blocks if b.label in self.reachable
        ]


def build_view(program: Program) -> ProgramView:
    """Partition ``program`` into stage sections and cache CFG facts."""
    sections: dict[int, StageSection] = {}
    for block in program.blocks:
        stage = stage_of_label(block.label)
        if _JUMP_LABEL.match(block.label):
            stage = DISPATCH
        sections.setdefault(stage, StageSection(stage)).blocks.append(block)
    successors = {
        block.label: program.successors(block) for block in program.blocks
    }
    reachable = _reachable_from_entry(program, successors)
    return ProgramView(
        program=program,
        sections=sections,
        successors=successors,
        reachable=reachable,
    )


def _reachable_from_entry(
    program: Program, successors: dict[str, list[str]]
) -> set[str]:
    if not program.blocks:
        return set()
    seen = {program.blocks[0].label}
    stack = [program.blocks[0].label]
    while stack:
        label = stack.pop()
        for succ in successors.get(label, ()):
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


@dataclass(frozen=True)
class NaturalLoop:
    """A layout-order natural loop inside one stage section."""

    head: str
    body: tuple[str, ...]  # block labels, layout order, head..tail


def section_loops(view: ProgramView, stage: int) -> list[NaturalLoop]:
    """Loops in a stage section, from layout backedges.

    Mirrors the compiler's own loop notion
    (:func:`repro.core.compiler.buffering.find_loops`): a backedge is a
    branch to an earlier-or-equal block in layout order, and the loop
    body is the contiguous label range between target and branch.
    """
    blocks = view.sections[stage].blocks
    index = {b.label: i for i, b in enumerate(blocks)}
    loops: list[NaturalLoop] = []
    for i, block in enumerate(blocks):
        term = block.terminator
        if term is None or term.opcode is not Opcode.BRA:
            continue
        target = term.target
        if target is not None and target in index and index[target] <= i:
            body = tuple(b.label for b in blocks[index[target]: i + 1])
            loops.append(NaturalLoop(head=target, body=body))
    return loops


def enumerate_paths(
    view: ProgramView,
    start: str,
    within: set[str],
    max_paths: int = 256,
) -> list[list[str]] | None:
    """Acyclic paths from ``start`` staying inside ``within``.

    A path ends when it leaves ``within``, revisits a block (backedge)
    or reaches a block with no successors.  Returns ``None`` when the
    path count exceeds ``max_paths`` — callers should then fall back to
    a summary-based check rather than exploding.
    """
    paths: list[list[str]] = []
    stack: list[list[str]] = [[start]]
    while stack:
        path = stack.pop()
        if len(paths) + len(stack) > max_paths:
            return None
        label = path[-1]
        succs = [
            s for s in view.successors.get(label, ())
            if s in within and s not in path
        ]
        if not succs:
            paths.append(path)
            continue
        exits = any(
            s not in within or s in path
            for s in view.successors.get(label, ())
        )
        if exits:
            # The path may also terminate here (loop exit / backedge).
            paths.append(list(path))
        for succ in succs:
            stack.append(path + [succ])
    return paths
