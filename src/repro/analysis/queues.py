"""Queue-protocol checker (rules WASP-Q001..Q007).

Verifies the paper's Section IV-B queue contract statically:

* every queue has exactly one producer stage and one consumer stage,
  and they match the ``NamedQueueSpec`` in the thread-block spec;
* push and pop sites balance per loop iteration — the producer and
  consumer stages are clones of the same control skeleton, so matching
  sites live in identically-labelled blocks (modulo the ``s<n>_`` stage
  prefix), and every complete path through a loop body must push/pop
  the same number of entries;
* a single loop iteration never pushes more entries than the queue
  holds (credit feasibility against ``queue_size``).

Known false negatives: bulk pushes by WASP-TMA configuration
instructions move a data-dependent entry count, so site counting skips
queues fed by TMA (the functional layer still checks those
dynamically); path enumeration gives up beyond 256 paths per loop.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.cfg import (
    NaturalLoop,
    ProgramView,
    enumerate_paths,
    section_loops,
    strip_stage_prefix,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sites import PipelineSites, QueueSite
from repro.core.specs import NamedQueueSpec, ThreadBlockSpec


def check_queues(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec | None,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name
    queue_ids = sorted(sites.queue_ids())

    if spec is None:
        for queue_id in queue_ids:
            diags.append(Diagnostic(
                rule="WASP-Q007",
                message=f"Q{queue_id} is referenced but the program has "
                        "no thread-block specification",
                kernel=kernel,
                hint="attach a ThreadBlockSpec declaring the queue, or "
                     "compile through WaspCompiler",
            ))
        return diags

    declared = {q.queue_id: q for q in spec.queues}
    for queue_id in queue_ids:
        pushes = sites.pushes(queue_id)
        pops = sites.pops(queue_id)
        diags.extend(_check_endpoints(
            kernel, queue_id, declared, pushes, pops
        ))
        qspec = declared.get(queue_id)
        size = qspec.size if qspec is not None else None
        diags.extend(_check_balance(view, kernel, queue_id, pushes, pops))
        diags.extend(_check_credit(view, kernel, queue_id, pushes, size))
    return diags


def _check_endpoints(
    kernel: str,
    queue_id: int,
    declared: dict[int, NamedQueueSpec],
    pushes: list[QueueSite],
    pops: list[QueueSite],
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    push_stages = sorted({s.stage for s in pushes})
    pop_stages = sorted({s.stage for s in pops})

    if len(push_stages) > 1:
        diags.append(Diagnostic(
            rule="WASP-Q001",
            message=f"Q{queue_id} is pushed from stages {push_stages}; "
                    "queues are single-producer",
            kernel=kernel,
            hint="split the queue or merge the producing stages",
        ))
    if len(pop_stages) > 1:
        diags.append(Diagnostic(
            rule="WASP-Q002",
            message=f"Q{queue_id} is popped from stages {pop_stages}; "
                    "queues are single-consumer",
            kernel=kernel,
            hint="give each consumer stage its own queue",
        ))
    if pushes and not pops:
        diags.append(Diagnostic(
            rule="WASP-Q003",
            message=f"Q{queue_id} is pushed but never popped; the "
                    "producer will stall once the queue fills",
            kernel=kernel,
            stage=push_stages[0] if push_stages else None,
        ))
    if pops and not pushes:
        diags.append(Diagnostic(
            rule="WASP-Q003",
            message=f"Q{queue_id} is popped but never pushed; the "
                    "consumer will wait forever",
            kernel=kernel,
            stage=pop_stages[0] if pop_stages else None,
        ))

    qspec = declared.get(queue_id)
    if qspec is None:
        diags.append(Diagnostic(
            rule="WASP-Q005",
            message=f"Q{queue_id} is not declared in the thread-block "
                    "specification",
            kernel=kernel,
            hint="add a NamedQueueSpec for this queue id",
        ))
        return diags
    if len(push_stages) == 1 and push_stages[0] != qspec.src_stage:
        diags.append(Diagnostic(
            rule="WASP-Q005",
            message=f"Q{queue_id} is pushed from stage {push_stages[0]} "
                    f"but declared src_stage={qspec.src_stage}",
            kernel=kernel,
            stage=push_stages[0],
        ))
    if len(pop_stages) == 1 and pop_stages[0] != qspec.dst_stage:
        diags.append(Diagnostic(
            rule="WASP-Q005",
            message=f"Q{queue_id} is popped from stage {pop_stages[0]} "
                    f"but declared dst_stage={qspec.dst_stage}",
            kernel=kernel,
            stage=pop_stages[0],
        ))
    return diags


def _check_balance(
    view: ProgramView,
    kernel: str,
    queue_id: int,
    pushes: list[QueueSite],
    pops: list[QueueSite],
) -> list[Diagnostic]:
    """Producer/consumer site balance plus per-path loop balance."""
    diags: list[Diagnostic] = []
    if any(s.bulk for s in pushes):
        return diags  # TMA entry counts are data-dependent; see gaps.
    if not pushes or not pops:
        return diags  # orphan endpoints already reported (Q003)

    push_ctx = Counter(strip_stage_prefix(s.block) for s in pushes)
    pop_ctx = Counter(strip_stage_prefix(s.block) for s in pops)
    if push_ctx != pop_ctx:
        missing = pop_ctx - push_ctx
        extra = push_ctx - pop_ctx
        detail = []
        if extra:
            detail.append(
                "unmatched pushes in " + ", ".join(sorted(extra))
            )
        if missing:
            detail.append(
                "unmatched pops in " + ", ".join(sorted(missing))
            )
        diags.append(Diagnostic(
            rule="WASP-Q004",
            message=f"Q{queue_id} push/pop sites do not balance per "
                    f"iteration ({'; '.join(detail)})",
            kernel=kernel,
            hint="producer pushes and consumer pops must pair up in "
                 "matching loop bodies",
        ))

    for sites_one_side, verb in ((pushes, "push"), (pops, "pop")):
        stage = sites_one_side[0].stage
        diags.extend(_check_path_balance(
            view, kernel, queue_id, stage, sites_one_side, verb
        ))
    return diags


def _innermost_loops(view: ProgramView, stage: int) -> list[NaturalLoop]:
    loops = section_loops(view, stage)
    inner = []
    for loop in loops:
        body = set(loop.body)
        if not any(
            other is not loop and other.head in body
            and set(other.body) < body
            for other in loops
        ):
            inner.append(loop)
    return inner


def _complete_iteration_paths(
    view: ProgramView, loop: NaturalLoop
) -> list[list[str]] | None:
    """Paths from the loop head that end by taking the backedge."""
    body = set(loop.body)
    paths = enumerate_paths(view, loop.head, body)
    if paths is None:
        return None
    complete = []
    for path in paths:
        last = path[-1]
        if loop.head in view.successors.get(last, ()):
            complete.append(path)
    return complete


def _check_path_balance(
    view: ProgramView,
    kernel: str,
    queue_id: int,
    stage: int,
    sites: list[QueueSite],
    verb: str,
) -> list[Diagnostic]:
    """All complete iterations of a loop must move the same entry count."""
    diags: list[Diagnostic] = []
    per_block = Counter(s.block for s in sites)
    for loop in _innermost_loops(view, stage):
        body = set(loop.body)
        if not any(s.block in body for s in sites):
            continue
        paths = _complete_iteration_paths(view, loop)
        if paths is None or not paths:
            continue
        counts = {
            sum(per_block.get(label, 0) for label in path)
            for path in paths
        }
        if len(counts) > 1:
            diags.append(Diagnostic(
                rule="WASP-Q004",
                message=f"Q{queue_id} {verb} count differs across paths "
                        f"through loop {strip_stage_prefix(loop.head)!r} "
                        f"({sorted(counts)})",
                kernel=kernel,
                stage=stage if stage >= 0 else None,
                block=loop.head,
                hint=f"every path through the loop body must {verb} the "
                     "same number of entries",
            ))
    return diags


def _check_credit(
    view: ProgramView,
    kernel: str,
    queue_id: int,
    pushes: list[QueueSite],
    size: int | None,
) -> list[Diagnostic]:
    """A single iteration must not push more entries than the queue holds."""
    diags: list[Diagnostic] = []
    if size is None or not pushes or any(s.bulk for s in pushes):
        return diags
    stage = pushes[0].stage
    per_block = Counter(s.block for s in pushes)
    in_loop: set[str] = set()
    for loop in _innermost_loops(view, stage):
        body = set(loop.body)
        in_loop.update(label for label in per_block if label in body)
        paths = _complete_iteration_paths(view, loop)
        if paths is None or not paths:
            continue
        worst = max(
            sum(per_block.get(label, 0) for label in path)
            for path in paths
        )
        if worst > size:
            diags.append(Diagnostic(
                rule="WASP-Q006",
                message=f"Q{queue_id}: one iteration of loop "
                        f"{strip_stage_prefix(loop.head)!r} pushes "
                        f"{worst} entries into a {size}-entry queue",
                kernel=kernel,
                stage=stage if stage >= 0 else None,
                block=loop.head,
                hint="grow queue_size or split the pushes across "
                     "iterations",
            ))
    straight = sum(
        count for label, count in per_block.items() if label not in in_loop
    )
    if straight > size:
        diags.append(Diagnostic(
            rule="WASP-Q006",
            message=f"Q{queue_id}: {straight} straight-line pushes exceed "
                    f"the {size}-entry queue with no consumer "
                    "interleaving guaranteed",
            kernel=kernel,
            stage=stage if stage >= 0 else None,
        ))
    return diags
