"""Structured diagnostics for the static pipeline verifier.

Every analysis pass reports :class:`Diagnostic` records instead of raising
bare-string exceptions: a diagnostic names the *rule* that fired, where it
fired (kernel / pipeline stage / basic block / instruction), how severe it
is, and — where we can — a hint about how to fix the program.  Reports are
JSON-serializable so the ``repro lint`` CLI and the CI gate can archive
them as artifacts.

This module is intentionally dependency-free (stdlib + :mod:`repro.errors`
only) so the ISA layer can import it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator


class Severity(enum.Enum):
    """How bad a diagnostic is.

    ``ERROR`` means the program will deadlock, race, or fail to launch —
    the compiler refuses to emit it and ``repro lint`` fails CI.
    ``WARNING`` marks contracts we cannot prove hold (the dynamic layers
    may still catch a violation).  ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: Rule catalogue: id -> (default severity, one-line description).
#: Families: C = CFG/structure, Q = queue protocol, D = deadlock/barrier,
#: S = shared-memory races, R = resources, T = translation validation.
RULES: dict[str, tuple[Severity, str]] = {
    # -- CFG / structural hygiene ---------------------------------------
    "WASP-C001": (Severity.ERROR, "program has no basic blocks"),
    "WASP-C002": (Severity.ERROR, "duplicate basic-block label"),
    "WASP-C003": (Severity.ERROR, "branch in the middle of a basic block"),
    "WASP-C004": (Severity.ERROR, "branch target does not resolve"),
    "WASP-C005": (Severity.ERROR,
                  "control falls off the end of the program without EXIT"),
    "WASP-C006": (Severity.WARNING, "basic block unreachable from entry"),
    "WASP-C007": (Severity.ERROR,
                  "control falls through from one pipeline stage's code "
                  "section into another stage's section"),
    # -- queue protocol --------------------------------------------------
    "WASP-Q001": (Severity.ERROR,
                  "queue pushed from more than one pipeline stage "
                  "(single-producer violation)"),
    "WASP-Q002": (Severity.ERROR,
                  "queue popped from more than one pipeline stage "
                  "(single-consumer violation)"),
    "WASP-Q003": (Severity.ERROR,
                  "queue has an orphan endpoint (pushed but never popped, "
                  "or popped but never pushed)"),
    "WASP-Q004": (Severity.ERROR,
                  "per-iteration push/pop imbalance between producer and "
                  "consumer (or across CFG paths through a loop body)"),
    "WASP-Q005": (Severity.ERROR,
                  "queue operation in a stage that contradicts the thread "
                  "block specification's src/dst stage"),
    "WASP-Q006": (Severity.WARNING,
                  "credit pressure: a single loop iteration pushes more "
                  "entries than the queue holds (stalls the producer; "
                  "deadlocks when the consumer's pops are "
                  "barrier-coupled)"),
    "WASP-Q007": (Severity.ERROR,
                  "queue operand in a program without a thread-block "
                  "specification"),
    # -- deadlock / barrier pairing --------------------------------------
    "WASP-D001": (Severity.ERROR,
                  "cycle in the stage/queue wait-for graph"),
    "WASP-D002": (Severity.ERROR,
                  "barrier is waited on but never arrived by any stage"),
    "WASP-D003": (Severity.WARNING,
                  "barrier is arrived but never waited on (lost signal)"),
    "WASP-D004": (Severity.WARNING,
                  "barrier's expected arrival count disagrees with the "
                  "static arrive sites"),
    "WASP-D005": (Severity.WARNING,
                  "arrive/wait barrier used without metadata in the "
                  "thread-block specification"),
    "WASP-D006": (Severity.ERROR,
                  "thread-block BAR.SYNC not executed by every pipeline "
                  "stage"),
    # -- shared-memory races ---------------------------------------------
    "WASP-S001": (Severity.ERROR,
                  "SMEM buffer written by one stage and accessed by "
                  "another with no ordering barrier between them"),
    "WASP-S002": (Severity.ERROR,
                  "SMEM access out of the program's declared footprint"),
    "WASP-S003": (Severity.INFO,
                  "SMEM access with a statically unresolvable target "
                  "buffer (race analysis is incomplete here)"),
    "WASP-S004": (Severity.ERROR,
                  "circular-buffer phase overlap: a write from one "
                  "generation can land on a phase while another "
                  "stage's access to the same phase is still "
                  "unordered"),
    "WASP-S005": (Severity.ERROR,
                  "credit-underflow race: queue credit admits more "
                  "generations in flight than the shared buffer has "
                  "phases"),
    # -- resources ---------------------------------------------------------
    "WASP-R001": (Severity.ERROR,
                  "per-stage register footprint exceeds the SM register "
                  "file"),
    "WASP-R002": (Severity.ERROR,
                  "stage references a register outside its allocated "
                  "per-stage budget"),
    "WASP-R003": (Severity.ERROR,
                  "register or predicate read but never defined in its "
                  "stage"),
    "WASP-R004": (Severity.ERROR,
                  "SMEM footprint exceeds the SM's shared-memory "
                  "capacity"),
    "WASP-R005": (Severity.WARNING,
                  "register or predicate may be read before it is "
                  "defined on some CFG path"),
    "WASP-R006": (Severity.WARNING,
                  "thread-block specification disagrees with the program "
                  "(smem_words / register counts)"),
    "WASP-R007": (Severity.ERROR,
                  "circular-buffer ring credited deeper than its slots: "
                  "initial empty-barrier credit admits more buffer "
                  "generations than the ring has SMEM copies"),
    # -- translation validation --------------------------------------------
    "WASP-T001": (Severity.ERROR,
                  "global store in the specialized program has no "
                  "matching source store (or a source store was lost in "
                  "specialization)"),
    "WASP-T002": (Severity.ERROR,
                  "store address matches the source but the value "
                  "threaded through a queue / shared buffer differs "
                  "(or queue pushes and pops do not pair up)"),
    "WASP-T003": (Severity.ERROR,
                  "ring-slot aliasing or missing ordering breaks the "
                  "simulation relation: the happens-before engine cannot "
                  "order accesses the equivalence proof relies on"),
    "WASP-T004": (Severity.WARNING,
                  "translation validator abstained: the program is "
                  "outside the validator's fragment, so equivalence is "
                  "unproven (not disproven)"),
}


def rules_table_lines() -> list[str]:
    """The rule catalogue as aligned text (``repro lint --list-rules``).

    One line per registered rule, grouped by family, so the printed
    table is always exactly the rules the verifier can fire — DESIGN.md
    §6c is held to the same registry by a doc-sync test.
    """
    lines = ["rule        sev      description",
             "----        ---      -----------"]
    family = ""
    for rule in sorted(RULES):
        severity, description = RULES[rule]
        prefix = rule.split("-")[1][0]  # C / Q / D / S / R
        if family and prefix != family:
            lines.append("")
        family = prefix
        lines.append(f"{rule:<11} {severity.value:<8} {description}")
    return lines


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis rule, with its location and a hint."""

    rule: str
    message: str
    severity: Severity | None = None
    kernel: str | None = None
    stage: int | None = None
    block: str | None = None
    instruction: str | None = None
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown diagnostic rule {self.rule!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", RULES[self.rule][0])

    @property
    def location(self) -> str:
        """Human-readable ``kernel[/stage N][/block][: instr]`` location."""
        parts: list[str] = []
        if self.kernel:
            parts.append(self.kernel)
        if self.stage is not None:
            parts.append(f"stage {self.stage}")
        if self.block:
            parts.append(self.block)
        where = "/".join(parts) or "<program>"
        if self.instruction:
            where += f": {self.instruction}"
        return where

    def to_json(self) -> dict[str, Any]:
        assert self.severity is not None
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "kernel": self.kernel,
            "stage": self.stage,
            "block": self.block,
            "instruction": self.instruction,
            "hint": self.hint,
        }

    def format(self) -> str:
        assert self.severity is not None
        text = (f"{self.severity.value}[{self.rule}] "
                f"{self.location}: {self.message}")
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one verification run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def normalized(self) -> "DiagnosticReport":
        """Deterministically ordered and deduplicated copy.

        Sort key is (rule, site, message) — site meaning kernel, then
        stage, then block, then instruction — so reports from
        repeated runs and from differently-ordered passes compare
        equal; byte-identical findings reported by more than one pass
        collapse to one.
        """
        unique = list(dict.fromkeys(self.diagnostics))
        unique.sort(key=_diagnostic_sort_key)
        return DiagnosticReport(unique)

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def clean(self) -> bool:
        """No errors and no warnings (info is allowed)."""
        return not self.errors and not self.warnings

    def rules_fired(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def summary_line(self) -> str:
        """The one-line summary surfaced by ``repro profile``/artifacts."""
        if not self.diagnostics:
            return "verifier: clean"
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        if not n_err and not n_warn:
            return f"verifier: clean ({len(self.diagnostics)} notes)"
        parts = []
        if n_err:
            parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
        if n_warn:
            parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
        return "verifier: " + ", ".join(parts)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": "repro-diagnostics-v1",
            "num_errors": len(self.errors),
            "num_warnings": len(self.warnings),
            "diagnostics": [d.to_json() for d in self.diagnostics],
        }

    def to_text(self) -> str:
        if not self.diagnostics:
            return "verifier: clean"
        return "\n".join(d.format() for d in self.diagnostics)


def _diagnostic_sort_key(
    diag: Diagnostic,
) -> tuple[str, str, int, str, str, str]:
    return (
        diag.rule,
        diag.kernel or "",
        -1 if diag.stage is None else diag.stage,
        diag.block or "",
        diag.instruction or "",
        diag.message,
    )
