"""Deadlock detector (rules WASP-D001..D006).

Builds the stage/queue/barrier wait-for structure from the thread-block
specification and the barrier sites of the combined program, then checks
it statically:

* the queue digraph (producer stage -> consumer stage) must be acyclic —
  WASP pipelines move data strictly forward, and a cycle means two
  stages each wait for the other's first entry (``WASP-D001``);
* every waited arrive/wait barrier needs at least one arrive site
  somewhere (``WASP-D002``), and arrivals without waiters are lost
  signals (``WASP-D003``);
* the spec's expected arrival count must equal the warps of the stages
  that statically arrive (``WASP-D004``), and barriers must be declared
  (``WASP-D005``) — the functional machine defaults undeclared barriers
  to ``expected=1``, which usually releases waiters early;
* a full thread-block ``BAR.SYNC`` must be executed by *every* pipeline
  stage, since the hardware counts all warps (``WASP-D006``).

Known false negatives: intra-stage orderings (a wait lexically before
the arrive that feeds it within one generation) and credit exhaustion
across generations are not modelled; the dynamic ``DeadlockError``
backstop still covers those.
"""

from __future__ import annotations

from repro.analysis.cfg import DISPATCH, ProgramView
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.sites import PipelineSites
from repro.core.specs import ThreadBlockSpec


def check_deadlock(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec | None,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    diags.extend(_check_barrier_pairing(view, sites, spec))
    if spec is not None:
        diags.extend(_check_queue_cycles(view, spec))
        diags.extend(_check_barrier_metadata(view, sites, spec))
        diags.extend(_check_tb_syncs(view, sites, spec))
    return diags


def _check_barrier_pairing(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec | None,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name
    initial = spec.barrier_initial if spec is not None else {}
    waited = sites.barrier_ids("wait")
    arrived = sites.barrier_ids("arrive")
    for barrier_id in sorted(waited - arrived):
        credit = initial.get(barrier_id, 0)
        stage = min(sites.barrier_stages(barrier_id, "wait"))
        diags.append(Diagnostic(
            rule="WASP-D002",
            message=f"barrier {barrier_id!r} is waited on but no stage "
                    "ever arrives it"
                    + (f" (initial credit {credit} only covers the first "
                       "generation)" if credit else ""),
            severity=Severity.WARNING if credit else Severity.ERROR,
            kernel=kernel,
            stage=stage if stage >= 0 else None,
            hint="pair every BAR.WAIT with a BAR.ARRIVE (or a TMA "
                 "completion arrive) in another stage",
        ))
    for barrier_id in sorted(arrived - waited):
        stage = min(sites.barrier_stages(barrier_id, "arrive"))
        diags.append(Diagnostic(
            rule="WASP-D003",
            message=f"barrier {barrier_id!r} is arrived but nothing "
                    "waits on it",
            kernel=kernel,
            stage=stage if stage >= 0 else None,
            hint="dead signal: drop the arrive or add the missing wait",
        ))
    return diags


def _check_queue_cycles(
    view: ProgramView, spec: ThreadBlockSpec
) -> list[Diagnostic]:
    """DFS cycle detection over the spec's src->dst queue digraph."""
    edges: dict[int, list[tuple[int, int]]] = {}
    for queue in spec.queues:
        edges.setdefault(queue.src_stage, []).append(
            (queue.dst_stage, queue.queue_id)
        )
    colors: dict[int, int] = {}  # 0 absent/white, 1 grey, 2 black
    stack_path: list[int] = []

    def visit(stage: int) -> list[int] | None:
        colors[stage] = 1
        stack_path.append(stage)
        for succ, _qid in edges.get(stage, ()):
            if colors.get(succ, 0) == 1:
                return stack_path[stack_path.index(succ):] + [succ]
            if colors.get(succ, 0) == 0:
                cycle = visit(succ)
                if cycle is not None:
                    return cycle
        stack_path.pop()
        colors[stage] = 2
        return None

    for stage in sorted(edges):
        if colors.get(stage, 0) == 0:
            cycle = visit(stage)
            if cycle is not None:
                route = " -> ".join(f"stage {s}" for s in cycle)
                return [Diagnostic(
                    rule="WASP-D001",
                    message=f"queue dependencies form a cycle: {route}; "
                            "both sides wait for the other's first entry",
                    kernel=view.program.name,
                    hint="pipeline stages must form a DAG; re-plan the "
                         "stage assignment",
                )]
    return []


def _check_barrier_metadata(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name
    used = sites.barrier_ids("arrive") | sites.barrier_ids("wait")
    for barrier_id in sorted(used):
        if barrier_id not in spec.barrier_expected:
            diags.append(Diagnostic(
                rule="WASP-D005",
                message=f"barrier {barrier_id!r} has no expected-arrival "
                        "entry in the thread-block specification "
                        "(runtime defaults to expected=1)",
                kernel=kernel,
                hint="populate ThreadBlockSpec.barrier_expected",
            ))
            continue
        expected = spec.barrier_expected[barrier_id]
        arr_stages = {
            s for s in sites.barrier_stages(barrier_id, "arrive")
            if s != DISPATCH
        }
        if not arr_stages:
            continue  # D002 already covers barriers nobody arrives
        static = sum(
            len(spec.warps_in_stage(s)) for s in sorted(arr_stages)
        )
        if static != expected:
            diags.append(Diagnostic(
                rule="WASP-D004",
                message=f"barrier {barrier_id!r} expects {expected} "
                        f"arrivals per generation but stages "
                        f"{sorted(arr_stages)} statically contribute "
                        f"{static}",
                kernel=kernel,
                hint="waiters release early (expected too low) or hang "
                     "(expected too high)",
            ))
    return diags


def _check_tb_syncs(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec,
) -> list[Diagnostic]:
    """Every stage must reach each full thread-block BAR.SYNC."""
    diags: list[Diagnostic] = []
    by_stage = sites.sync_ids_by_stage()
    all_stages = set(range(spec.num_stages))
    sync_ids = sites.barrier_ids("sync")
    for sync_id in sorted(sync_ids):
        present = {s for s, ids in by_stage.items() if sync_id in ids}
        present.discard(DISPATCH)
        missing = sorted(all_stages - present)
        if missing:
            diags.append(Diagnostic(
                rule="WASP-D006",
                message=f"BAR.SYNC {sync_id!r} counts every warp of the "
                        f"thread block, but stages {missing} never "
                        "execute it",
                kernel=view.program.name,
                hint="a thread-block sync in a specialized program must "
                     "survive stage splitting into every stage (or be "
                     "rewritten to arrive/wait barriers)",
            ))
    return diags
