"""Shared-memory race detector (rules WASP-S001..S005, HB-backed).

Bounds (S002) and unresolvable-target reporting (S003) are unchanged
from the original pass.  Race detection is now exact up to the
happens-before model (:mod:`repro.analysis.dataflow.hb`): every
cross-stage access pair on a shared buffer group is classified as
ordered, phase-disjoint, or racy from the min-plus iteration-shift
fixpoint, instead of the old "some arrive/wait pair crosses the two
stages" heuristic.  Racy pairs are attributed to:

* ``WASP-S001`` — the same generation is unordered (shift 0): the
  classic missing filled-style barrier;
* ``WASP-S004`` — same-generation accesses are ordered but a later
  generation's write can lap an outstanding access on the same
  circular-buffer phase (phase-overlap);
* ``WASP-S005`` — the pair is ordered only under tighter queue
  back-pressure: the configured queue capacity admits more
  generations in flight than the buffer has phases
  (credit-underflow).
"""

from __future__ import annotations

from repro.analysis.cfg import ProgramView
from repro.analysis.dataflow.hb import HBAnalysis, PairVerdict, analyze_hb
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sites import PipelineSites
from repro.core.specs import ThreadBlockSpec


def check_smem(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec | None = None,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    diags.extend(_check_bounds(view, sites))
    if len(view.stages) > 1:
        analysis = analyze_hb(view, sites, spec)
        diags.extend(_report_unresolved(view, analysis))
        diags.extend(_report_races(view, analysis))
    return diags


def _check_bounds(
    view: ProgramView, sites: PipelineSites
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    total = view.program.smem_words
    for access in sites.smem_accesses:
        if access.address is None:
            continue
        if access.address < 0 or access.address >= max(total, 0):
            diags.append(Diagnostic(
                rule="WASP-S002",
                message=f"SMEM {'store' if access.is_write else 'load'} "
                        f"at word {access.address} is outside the "
                        f"program's {total}-word footprint",
                kernel=view.program.name,
                stage=access.stage if access.stage >= 0 else None,
                block=access.block,
                instruction=repr(access.instr),
            ))
    return diags


def _report_unresolved(
    view: ProgramView, analysis: HBAnalysis
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    reported: set[int] = set()
    for access in analysis.unresolved:
        if access.stage < 0 or access.stage in reported:
            continue
        reported.add(access.stage)
        diags.append(Diagnostic(
            rule="WASP-S003",
            message="SMEM access with register address and no "
                    "buffer tag; race analysis skips it",
            kernel=view.program.name,
            stage=access.stage,
            block=access.block,
            instruction=access.instr_repr,
            hint="tag the access with smem_buffer= in the builder",
        ))
    return diags


def _report_races(
    view: ProgramView, analysis: HBAnalysis
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    seen: set[tuple[str, str | None, int, int]] = set()
    for verdict in analysis.racy():
        key = (
            verdict.group,
            verdict.rule,
            verdict.writer.stage,
            verdict.other.stage,
        )
        if key in seen:
            continue
        seen.add(key)
        diags.append(_race_diagnostic(view.program.name, verdict))
    return diags


def _race_diagnostic(kernel: str, v: PairVerdict) -> Diagnostic:
    writer, other = v.writer, v.other
    window = _format_window(v.d_tw, v.d_wt)
    if v.rule == "WASP-S001":
        message = (
            f"buffer {v.group!r} is written by stage {writer.stage} "
            f"and touched by stage {other.stage} with no ordering "
            "between the write and the access in the same generation"
        )
        hint = (
            "insert a filled-style barrier: arrive in stage "
            f"{writer.stage} after the writes, wait in stage "
            f"{other.stage} before its accesses"
        )
    elif v.rule == "WASP-S005":
        message = (
            f"buffer {v.group!r}: queue credit lets stage "
            f"{writer.stage} run far enough ahead of stage "
            f"{other.stage} to lap the buffer (unordered generation "
            f"shifts {window}); ordering holds only with depth-1 "
            "credit"
        )
        hint = (
            "shrink the queue below the buffer's phase count or add "
            "an empty-style barrier"
        )
    else:
        message = (
            f"buffer {v.group!r}: stage {writer.stage}'s write can "
            f"land on a phase while stage {other.stage}'s access to "
            f"the same phase from another generation is outstanding "
            f"(unordered generation shifts {window})"
        )
        hint = (
            "deepen the circular buffer or arrive an empty-style "
            f"barrier in stage {other.stage} when each phase is done"
        )
    assert v.rule is not None
    return Diagnostic(
        rule=v.rule,
        message=message,
        kernel=kernel,
        stage=writer.stage,
        block=writer.block,
        instruction=writer.instr_repr,
        hint=hint,
    )


def _format_window(d_tw: float, d_wt: float) -> str:
    lo = "-inf" if d_tw == float("inf") else str(int(-d_tw))
    hi = "inf" if d_wt == float("inf") else str(int(d_wt))
    return f"({lo}, {hi})"
