"""Shared-memory race detector (rules WASP-S001..S003, double-buffer
aware).

Groups every STS/LDS/LDGSTS/TMA.TILE access by its target buffer (the
builder's ``smem_buffer`` tag, or the declared buffer containing an
immediate address) and demands ordering evidence between any two stages
that touch the same buffer with at least one write:

* a full thread-block ``BAR.SYNC`` both stages execute, or
* an arrive/wait barrier pair crossing the two stages in the
  write->read direction (the tile protocol's ``<key>_filled``), and —
  when the writer writes inside a loop, i.e. across generations — the
  read->write direction as well (``<key>_empty``, which double
  buffering routes through the partner copy's section).

Missing write->read ordering is an error; missing reverse (WAR)
ordering across generations is a warning, because a sufficiently deep
buffer can legally tolerate it.  Accesses whose target cannot be
resolved statically are reported once per stage at info severity
(``WASP-S003``) and excluded — a deliberate false-negative gap.
"""

from __future__ import annotations

from repro.analysis.cfg import ProgramView, section_loops
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.sites import PipelineSites, SmemAccess


def check_smem(
    view: ProgramView,
    sites: PipelineSites,
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    diags.extend(_check_bounds(view, sites))
    if len(view.stages) > 1:
        diags.extend(_check_races(view, sites))
    return diags


def _check_bounds(
    view: ProgramView, sites: PipelineSites
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    total = view.program.smem_words
    for access in sites.smem_accesses:
        if access.address is None:
            continue
        if access.address < 0 or access.address >= max(total, 0):
            diags.append(Diagnostic(
                rule="WASP-S002",
                message=f"SMEM {'store' if access.is_write else 'load'} "
                        f"at word {access.address} is outside the "
                        f"program's {total}-word footprint",
                kernel=view.program.name,
                stage=access.stage if access.stage >= 0 else None,
                block=access.block,
                instruction=repr(access.instr),
            ))
    return diags


def _check_races(
    view: ProgramView, sites: PipelineSites
) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    kernel = view.program.name

    unresolved_reported: set[int] = set()
    by_buffer: dict[str, list[SmemAccess]] = {}
    for access in sites.smem_accesses:
        if access.stage < 0:
            continue
        if access.buffer is None:
            if access.stage not in unresolved_reported:
                unresolved_reported.add(access.stage)
                diags.append(Diagnostic(
                    rule="WASP-S003",
                    message="SMEM access with register address and no "
                            "buffer tag; race analysis skips it",
                    kernel=kernel,
                    stage=access.stage,
                    block=access.block,
                    instruction=repr(access.instr),
                    hint="tag the access with smem_buffer= in the "
                         "builder",
                ))
            continue
        by_buffer.setdefault(access.buffer, []).append(access)

    sync_by_stage = sites.sync_ids_by_stage()
    loops_cache: dict[int, set[str]] = {}

    def loop_blocks(stage: int) -> set[str]:
        if stage not in loops_cache:
            blocks: set[str] = set()
            for loop in section_loops(view, stage):
                blocks.update(loop.body)
            loops_cache[stage] = blocks
        return loops_cache[stage]

    for buffer in sorted(by_buffer):
        accesses = by_buffer[buffer]
        writer_stages = sorted({a.stage for a in accesses if a.is_write})
        toucher_stages = sorted({a.stage for a in accesses})
        for writer in writer_stages:
            for other in toucher_stages:
                if other == writer:
                    continue
                if _shares_sync(sync_by_stage, writer, other):
                    continue
                if not _ordered(sites, src=writer, dst=other):
                    diags.append(Diagnostic(
                        rule="WASP-S001",
                        message=f"buffer {buffer!r} is written by stage "
                                f"{writer} and touched by stage {other} "
                                "with no arrive/wait pair ordering the "
                                "write before the access",
                        kernel=kernel,
                        stage=writer,
                        hint="insert a filled-style barrier: arrive in "
                             f"stage {writer} after the writes, wait in "
                             f"stage {other} before its accesses",
                    ))
                    continue
                writes_in_loop = any(
                    a.is_write and a.stage == writer
                    and a.block in loop_blocks(writer)
                    for a in accesses
                )
                if writes_in_loop and not _ordered(
                    sites, src=other, dst=writer
                ):
                    diags.append(Diagnostic(
                        rule="WASP-S001",
                        message=f"buffer {buffer!r} is rewritten by stage "
                                f"{writer} across generations but stage "
                                f"{other} never signals it back "
                                "(write-after-read hazard)",
                        severity=Severity.WARNING,
                        kernel=kernel,
                        stage=writer,
                        hint="insert an empty-style barrier: arrive in "
                             f"stage {other} when done, wait in stage "
                             f"{writer} before refilling",
                    ))
    return diags


def _shares_sync(
    sync_by_stage: dict[int, set[str]], a: int, b: int
) -> bool:
    return bool(
        sync_by_stage.get(a, set()) & sync_by_stage.get(b, set())
    )


def _ordered(sites: PipelineSites, src: int, dst: int) -> bool:
    """True when some barrier is arrived in ``src`` and waited in ``dst``."""
    for barrier_id in sites.barrier_ids("arrive"):
        if src in sites.barrier_stages(barrier_id, "arrive") and (
            dst in sites.barrier_stages(barrier_id, "wait")
        ):
            return True
    return False
