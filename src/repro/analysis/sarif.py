"""SARIF 2.1.0 export for verifier diagnostics (``repro lint --sarif``).

Static Analysis Results Interchange Format output lets GitHub code
scanning, VS Code SARIF viewers and other standard tooling ingest the
WASP verifier's findings directly.  The document is built by hand (no
external dependency): one ``run`` whose ``tool.driver.rules`` array is
the full rule catalogue (:data:`repro.analysis.diagnostics.RULES`) and
whose ``results`` map each :class:`Diagnostic` to a SARIF result with a
logical location — pipeline kernels have no source files, so findings
anchor to ``kernel::block`` logical names instead of physical ones.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.diagnostics import RULES, Diagnostic, Severity
from repro.analysis.lint import LintResult, ValidateResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Verifier severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptors() -> list[dict[str, Any]]:
    """The catalogue as ``reportingDescriptor`` objects, sorted by id."""
    descriptors = []
    for rule_id in sorted(RULES):
        severity, description = RULES[rule_id]
        descriptors.append({
            "id": rule_id,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": _LEVELS[severity]},
        })
    return descriptors


def _result(diag: Diagnostic, rule_index: dict[str, int]) -> dict[str, Any]:
    assert diag.severity is not None
    message = diag.message
    if diag.hint:
        message += f" (hint: {diag.hint})"
    result: dict[str, Any] = {
        "ruleId": diag.rule,
        "ruleIndex": rule_index[diag.rule],
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
    }
    logical: dict[str, Any] = {"kind": "function"}
    name_parts = [p for p in (diag.kernel, diag.block) if p]
    if name_parts:
        logical["name"] = name_parts[-1]
        logical["fullyQualifiedName"] = "::".join(name_parts)
    result["locations"] = [{"logicalLocations": [logical]}]
    properties: dict[str, Any] = {}
    if diag.stage is not None:
        properties["stage"] = diag.stage
    if diag.instruction is not None:
        properties["instruction"] = diag.instruction
    if properties:
        result["properties"] = properties
    return result


def _sarif_document(
    tool_name: str, results: list[dict[str, Any]]
) -> dict[str, Any]:
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "rules": _rule_descriptors(),
                }
            },
            "columnKind": "unicodeCodePoints",
            "results": results,
        }],
    }


def sarif_from_lint(result: LintResult) -> dict[str, Any]:
    """One SARIF 2.1.0 log for a whole ``repro lint`` run."""
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(RULES))}
    results: list[dict[str, Any]] = []
    for kernel in result.kernels:
        for diag in kernel.report:
            results.append(_result(diag, rule_index))
    return _sarif_document("repro-lint", results)


def sarif_from_validate(result: ValidateResult) -> dict[str, Any]:
    """One SARIF 2.1.0 log for a whole ``repro validate`` run.

    WASP-T diagnostics export exactly like the verifier families: the
    rule catalogue in ``tool.driver.rules`` already carries T001–T004,
    so code-scanning UIs render translation-validation findings with
    no extra plumbing.
    """
    rule_index = {rule_id: i for i, rule_id in enumerate(sorted(RULES))}
    results: list[dict[str, Any]] = []
    for kernel in result.kernels:
        for diag in kernel.report:
            results.append(_result(diag, rule_index))
    return _sarif_document("repro-transval", results)
