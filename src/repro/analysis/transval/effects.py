"""Symbolic memory-effect summaries for translation validation.

One walker serves both sides of the equivalence check: the source
kernel is walked as a single section, the warp-specialized program as
one section per pipeline stage (ascending, sharing one environment so
queue-carried and SMEM-staged values thread from producers to
consumers along the same FIFO edges the happens-before engine models).

Loops are summarized, not unrolled.  Each natural loop is walked twice:
a classification pass binds every written register to a fresh marker
and sorts the writes into *invariant*, *affine* (``init + step * i``)
and genuine *recurrences*; the summary pass then rebinds affine values
to closed forms over ``LoopIdx`` and recurrences to ``RecPhi`` slots,
recording per-loop recurrence systems (inits, per-copy deltas, continue
conditions) in the summary's loop table.

Circular-buffer rings are recognized from the compiler's own labelling
(``__db<k>`` copy suffixes, :func:`repro.core.compiler.buffering`): the
loop body partitions into ``depth`` copies and each copy ``k`` is
walked with the iteration expression ``depth * i + k`` baked into
affine values, so one symbolic walk covers every slot residue for any
``pipeline_depth`` without enumerating dynamic iterations.

Anything outside the walker's fragment raises :class:`AbstainError`,
which the validator reports as WASP-T004 — a distinct "unproven"
verdict, never a silent pass.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analysis.cfg import (
    DISPATCH,
    ProgramView,
    build_view,
    section_loops,
    strip_stage_prefix,
)
from repro.core.compiler.buffering import copy_suffix
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import (
    Immediate,
    Operand,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.program import BasicBlock, Program

from repro.analysis.transval.expr import (
    Const,
    Expr,
    GLoad,
    LoopIdx,
    Marker,
    Op,
    RecExit,
    RecPhi,
    SLoad,
    Sym,
    Trip,
    Unknown,
    add,
    cmp,
    contains_marker,
    ite,
    mul,
    negate,
    op2,
    rewrite,
    unary,
    warpsum,
)

__all__ = [
    "AbstainError",
    "RingCtx",
    "StoreEffect",
    "LoopInfo",
    "Summary",
    "SharedEnv",
    "summarize_program",
]

_COPY_SUFFIX = re.compile(r"__db(\d*)$")


class AbstainError(Exception):
    """The program left the validator's fragment (reported as T004)."""

    def __init__(self, reason: str, block: str | None = None,
                 stage: int | None = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.block = block
        self.stage = stage


@dataclass(frozen=True)
class RingCtx:
    """One enclosing unrolled ring: which loop, its depth, this copy."""

    loop: str
    depth: int
    copy: int


@dataclass(frozen=True)
class StoreEffect:
    """One symbolic global store."""

    addr: Expr
    value: Expr
    guard: Expr | None
    path: tuple[str, ...]  # enclosing loop base ids, outer -> inner
    ring: tuple[RingCtx, ...]  # the unrolled subset of ``path``
    stage: int
    block: str
    instr: str
    seq: int


@dataclass
class LoopInfo:
    """Per-loop summary: recurrence system and trip structure."""

    key: str
    base: str
    path: tuple[str, ...]  # enclosing loop bases (not including self)
    ctx: tuple[RingCtx, ...]  # enclosing ring copies
    depth: int  # number of ring copies (1 = not unrolled)
    stage: int
    rec_inits: tuple[Expr, ...] = ()
    #: [copy][slot] -> exit value in terms of this loop's RecPhi nodes.
    rec_deltas: tuple[tuple[Expr, ...], ...] = ()
    #: [copy] -> condition under which the walk continues past the copy.
    cont_conds: tuple[Expr, ...] = ()


@dataclass
class QueueIssue:
    """A push/pop pairing problem found while threading queue values."""

    queue_id: int
    message: str
    stage: int
    block: str


@dataclass
class Summary:
    """Everything the matcher needs from one program walk."""

    kernel: str
    side: str  # "source" | "specialized"
    effects: list[StoreEffect] = field(default_factory=list)
    loops: dict[str, LoopInfo] = field(default_factory=dict)
    abstentions: list[AbstainError] = field(default_factory=list)
    queue_issues: list[QueueIssue] = field(default_factory=list)
    env: "SharedEnv | None" = None


# ``Scope`` identifies "the same dynamic iteration" across stage walks:
# the loop base path plus the ring-copy index at each level.  Producer
# and consumer stages inherit the same stripped loop labels from the
# source, so their scopes align by construction.
Scope = tuple[tuple[str, ...], tuple[int, ...]]


class _QueueState:
    def __init__(self) -> None:
        self.kind = "list"
        self.pushes: dict[Scope, list[tuple[Expr, Expr | None]]] = {}
        self.pops: dict[Scope, int] = {}
        self.flat_pops = 0
        #: For TMA-fed queues: the scope the TMA config executes in ->
        #: its symbolic parameters.  One TMA execution pushes a whole
        #: batch; consumers index into it with the iteration expression
        #: of their first loop below the configuring scope.
        self.tma_by_scope: dict[Scope, tuple[Expr, ...]] = {}


class SharedEnv:
    """Queue and SMEM state threaded across one program's stage walks."""

    def __init__(self) -> None:
        self.queues: dict[int, _QueueState] = {}
        #: (scope, buffer family) -> ordered (canonical addr, value).
        self.smem: dict[tuple[Scope, str], list[tuple[Expr, Expr]]] = {}
        #: Buffer families whose values the proof threads through SMEM.
        self.threaded_families: set[str] = set()

    def queue(self, qid: int) -> _QueueState:
        return self.queues.setdefault(qid, _QueueState())


_SOURCE_SREGS = {
    SpecialReg.LANE_ID: "LANE",
    SpecialReg.WARP_ID: "WARP",
    SpecialReg.TB_ID: "TB",
    SpecialReg.NUM_WARPS: "NWARPS",
}
# Stage splitting rewrites WARP_ID -> STAGE_WARP_ID (and NUM_WARPS ->
# NUM_STAGE_WARPS): each stage's warps renumber from zero exactly like
# the source block's warps do, so the inverse mapping restores the
# source's symbols.
_SPEC_SREGS = {
    SpecialReg.LANE_ID: "LANE",
    SpecialReg.TB_ID: "TB",
    SpecialReg.STAGE_WARP_ID: "WARP",
    SpecialReg.NUM_STAGE_WARPS: "NWARPS",
}


@dataclass
class _Frame:
    base: str
    key: str
    depth: int
    copy: int
    iter_expr: Expr


def _copy_index(label: str) -> int:
    m = _COPY_SUFFIX.search(label)
    if m is None:
        return 0
    return 1 if m.group(1) == "" else int(m.group(1))


def _base_label(label: str) -> str:
    return _COPY_SUFFIX.sub("", strip_stage_prefix(label))


def summarize_program(
    program: Program, *, side: str, env: SharedEnv | None = None
) -> Summary:
    """Walk ``program`` and build its effect summary.

    ``side`` is ``"source"`` or ``"specialized"``.  A specialized
    program is walked stage by stage in ascending order (the queue DAG
    is forward-directed, so producers are summarized before their
    consumers); the jump-table dispatch section is skipped.
    """
    view = build_view(program)
    env = env if env is not None else SharedEnv()
    summary = Summary(kernel=program.name, side=side, env=env)
    if side == "source":
        stages = [DISPATCH]
    else:
        stages = view.stages
        if not stages:
            # Not actually stage-partitioned: treat as one section.
            stages = [DISPATCH]
    for stage in stages:
        walker = _SectionWalker(view, stage, side, env, summary)
        try:
            walker.run()
        except AbstainError as exc:
            if exc.stage is None:
                exc.stage = stage
            summary.abstentions.append(exc)
    _finish_queues(env, summary)
    return summary


def _finish_queues(env: SharedEnv, summary: Summary) -> None:
    if summary.side != "specialized":
        return
    for qid, qs in env.queues.items():
        if qs.kind != "list":
            continue
        for scope, plist in qs.pushes.items():
            popped = qs.pops.get(scope, 0)
            if popped < len(plist):
                summary.queue_issues.append(QueueIssue(
                    queue_id=qid,
                    message=(
                        f"queue {qid}: {len(plist) - popped} push(es) per "
                        f"iteration of scope {scope[0] or ('<entry>',)} "
                        "never popped"
                    ),
                    stage=-1,
                    block="",
                ))


class _SectionWalker:
    """Symbolic walk of one stage section (or the whole source)."""

    def __init__(
        self,
        view: ProgramView,
        stage: int,
        side: str,
        env: SharedEnv,
        summary: Summary,
    ) -> None:
        self.view = view
        self.program = view.program
        self.stage = stage
        self.side = side
        self.env = env
        self.summary = summary
        self.blocks: list[BasicBlock] = view.sections[stage].blocks
        self.label_to_idx = {b.label: i for i, b in enumerate(self.blocks)}
        self.loop_ranges: list[tuple[int, int]] = []
        for loop in section_loops(view, stage):
            head = self.label_to_idx[loop.head]
            tail = self.label_to_idx[loop.body[-1]]
            self.loop_ranges.append((head, tail))
        self.state: dict[Operand, Expr] = {}
        self.loop_stack: list[_Frame] = []
        self.recording = True
        #: Loop key -> marker tags its recurrence system depends on.
        #: RecPhi/RecExit are leaves, so classification of an enclosing
        #: loop looks dependencies up here instead of in the expr tree.
        self._loop_tags: dict[str, set[str]] = {}
        #: Marker tags read anywhere during the current pass-1 walk: an
        #: operand whose *entry* value is observed (even if its final
        #: value does not depend on it) carries state across iterations
        #: and must be treated as a recurrence.
        self._p1_reads: set[str] = set()
        self.sregs = _SOURCE_SREGS if side == "source" else _SPEC_SREGS
        self._marker_n = 0
        self._opaque_n = 0
        self._seq = 0
        self._block_label = ""

    # -- control flow ----------------------------------------------------

    def run(self) -> None:
        if not self.blocks:
            return
        self._walk_range(0, len(self.blocks) - 1)

    def _abstain(self, reason: str) -> AbstainError:
        return AbstainError(reason, block=self._block_label,
                            stage=self.stage)

    def _loop_at(self, i: int, hi: int) -> tuple[int, int] | None:
        best: tuple[int, int] | None = None
        for head, tail in self.loop_ranges:
            if head == i and tail <= hi:
                if best is None or tail > best[1]:
                    best = (head, tail)
        return best

    def _walk_range(self, lo: int, hi: int) -> None:
        i = lo
        while i <= hi:
            loop = self._loop_at(i, hi)
            if loop is not None:
                self._handle_loop(loop[0], loop[1])
                i = loop[1] + 1
                continue
            i = self._walk_block(i, hi)

    def _walk_block(self, i: int, hi: int, allow_jump_to: int = -1) -> int:
        block = self.blocks[i]
        self._block_label = block.label
        term = block.terminator
        body = block.instructions[:-1] if term is not None \
            else block.instructions
        for instr in body:
            self._exec(instr)
        if term is None:
            return i + 1
        if term.opcode is Opcode.EXIT:
            return hi + 1
        # BRA
        if term.guard is not None:
            raise self._abstain(
                "conditional branch outside recognized loop structure"
            )
        target = term.target
        j = self.label_to_idx.get(target or "")
        if j is None:
            raise self._abstain(f"branch target {target!r} leaves section")
        if j <= i:
            raise self._abstain("backedge outside recognized loop structure")
        if j > hi and j != allow_jump_to:
            raise self._abstain("branch jumps out of the current loop body")
        return j

    # -- loop handling ---------------------------------------------------

    def _partition_copies(
        self, head: int, tail: int
    ) -> list[tuple[int, int]]:
        ks = [_copy_index(self.blocks[i].label) for i in range(head, tail + 1)]
        if len(set(ks)) == 1:
            return [(head, tail)]
        groups: list[tuple[int, int, int]] = []  # (k, lo, hi)
        for off, k in enumerate(ks):
            i = head + off
            if groups and groups[-1][0] == k:
                groups[-1] = (k, groups[-1][1], i)
            else:
                groups.append((k, i, i))
        expected = list(range(len(groups)))
        if [g[0] for g in groups] != expected:
            raise self._abstain(
                "ring copy suffixes are not contiguous ascending"
            )
        shape0 = [_base_label(self.blocks[i].label)
                  for i in range(groups[0][1], groups[0][2] + 1)]
        for _, lo, hi in groups[1:]:
            shape = [_base_label(self.blocks[i].label)
                     for i in range(lo, hi + 1)]
            if shape != shape0:
                raise self._abstain("ring copies have divergent block shapes")
        return [(lo, hi) for _, lo, hi in groups]

    def _loop_key(self, base: str) -> str:
        parts = []
        if self.side != "source":
            parts.append(f"s{self.stage}")
        parts.append(base)
        for f in self.loop_stack:
            if f.depth > 1:
                parts.append(f"{f.base}.{f.copy}")
        return "|".join(parts)

    def _written_operands(self, head: int, tail: int) -> list[Operand]:
        seen: dict[Operand, None] = {}
        for i in range(head, tail + 1):
            for instr in self.blocks[i].instructions:
                if isinstance(instr.dst, (Register, Predicate)):
                    seen.setdefault(instr.dst, None)

        def sort_key(op: Operand) -> tuple[int, int]:
            if isinstance(op, Register):
                return (0, op.index)
            assert isinstance(op, Predicate)
            return (1, op.index)

        return sorted(seen, key=sort_key)

    def _handle_loop(self, head: int, tail: int) -> None:
        base = _base_label(self.blocks[head].label)
        copies = self._partition_copies(head, tail)
        depth = len(copies)
        key = self._loop_key(base)
        written = self._written_operands(head, tail)
        outer = dict(self.state)

        # Pass 1: classification.  Entry values are fresh markers; the
        # walk records nothing and queue pops yield opaque symbols.
        markers: dict[Operand, Marker] = {}
        for w in written:
            self._marker_n += 1
            markers[w] = Marker(f"{key}#{self._marker_n}")
        self.state.update(markers)
        saved_recording = self.recording
        saved_reads = self._p1_reads
        self.recording = False
        self._p1_reads = set()
        self._run_copies(copies, base, key, depth, rec_slots={})
        self.recording = saved_recording
        reads = self._p1_reads
        self._p1_reads = saved_reads | reads
        final = {w: self.state[w] for w in written}

        invariant, affine, rec = self._classify(written, markers, final,
                                                reads)

        # Pass 2: summary walk with solved entry bindings.
        self.state = dict(outer)
        rec_slots = {w: s for s, w in enumerate(rec)}
        rec_inits = tuple(outer.get(w, Const(0.0)) for w in rec)
        for w in written:
            if w in affine:
                init = outer.get(w, Const(0.0))
                self.state[w] = add(
                    init, mul(affine[w], LoopIdx(base))
                )
            elif w in invariant:
                self.state[w] = outer.get(w, Const(0.0))
            elif w in rec_slots:
                pass  # bound per copy in _run_copies
            else:
                self.state[w] = markers[w]  # recomputed before any read
        deltas, conds = self._run_copies(
            copies, base, key, depth, rec_slots=rec_slots
        )

        info = LoopInfo(
            key=key,
            base=base,
            path=tuple(f.base for f in self.loop_stack),
            ctx=tuple(
                RingCtx(f.base, f.depth, f.copy)
                for f in self.loop_stack if f.depth > 1
            ),
            depth=depth,
            stage=self.stage,
            rec_inits=rec_inits,
            rec_deltas=deltas,
            cont_conds=conds,
        )
        tags: set[str] = set()
        for e in (list(rec_inits) + [d for row in deltas for d in row]
                  + list(conds)):
            tags |= self._expr_tags(e)
        self._loop_tags[key] = tags
        if self.recording:
            for e in (list(rec_inits)
                      + [d for row in deltas for d in row] + list(conds)):
                if contains_marker(e):
                    raise self._abstain(
                        f"unresolved loop-entry value flows into loop "
                        f"{base!r}"
                    )
            self.summary.loops[key] = info

        # Post-loop state.  Ring loops may stop mid-traversal, so the
        # final values of affine and recomputed operands are not a
        # simple function of the trip count; poison them and abstain
        # only if something downstream actually reads them.
        for w in written:
            if w in affine:
                if depth > 1:
                    self.state[w] = Unknown(
                        f"induction value of ring loop {base!r} read "
                        "after the loop"
                    )
                else:
                    init = outer.get(w, Const(0.0))
                    self.state[w] = add(
                        init, mul(affine[w], Trip(base))
                    )
            elif w in invariant:
                self.state[w] = outer.get(w, Const(0.0))
            elif w in rec_slots:
                self.state[w] = RecExit(key, rec_slots[w])
            elif depth > 1:
                self.state[w] = Unknown(
                    f"value computed inside ring loop {base!r} read "
                    "after the loop"
                )
            # Non-ring recomputed operands keep their last-iteration
            # expression — symmetric on both sides, so they compare.

    def _expr_tags(self, e: Expr) -> set[str]:
        """Marker tags ``e`` depends on, looking through nested loop
        tables (RecPhi/RecExit nodes are leaves in the expr tree)."""
        tags: set[str] = set()

        def fn(node: Expr) -> Expr:
            if isinstance(node, Marker):
                tags.add(node.tag)
            elif isinstance(node, (RecPhi, RecExit)):
                tags.update(self._loop_tags.get(node.loop, ()))
            return node

        rewrite(e, fn)
        return tags

    def _note_read(self, e: Expr) -> None:
        if not self.recording:
            self._p1_reads |= self._expr_tags(e)

    def _affine_step(
        self, final: Expr, marker: Marker, own_tags: set[str]
    ) -> Expr | None:
        """The per-traversal increment if ``final = marker + step`` with
        ``step`` invariant across iterations of this loop, else None.

        The step may be symbolic (``32 * nwarps`` is the idiomatic
        grid-stride) but must not depend on any value written in the
        loop, nor on pass-1 opaques (queue pops / SMEM reads), which
        change from one iteration to the next.
        """
        if not (isinstance(final, Op) and final.op == "add"
                and marker in final.args):
            return None
        step = add(*[a for a in final.args if a != marker])
        if self._expr_tags(step) & own_tags:
            return None
        if _has_opaque(step):
            return None
        return step

    def _classify(
        self,
        written: list[Operand],
        markers: dict[Operand, Marker],
        final: dict[Operand, Expr],
        reads: set[str],
    ) -> tuple[set[Operand], dict[Operand, Expr], list[Operand]]:
        tag_to_op = {markers[w].tag: w for w in written}
        own_tags = set(tag_to_op)
        invariant: set[Operand] = set()
        affine: dict[Operand, Expr] = {}
        undecided: list[Operand] = []
        deps: dict[Operand, set[Operand]] = {}
        for w in written:
            f = final[w]
            deps[w] = {
                tag_to_op[t] for t in self._expr_tags(f) if t in tag_to_op
            }
            step = self._affine_step(f, markers[w], own_tags)
            if f == markers[w]:
                invariant.add(w)
            elif step is not None:
                affine[w] = step
            else:
                undecided.append(w)
        # A genuine recurrence depends (transitively) on its own entry
        # value — or has its entry value *observed* somewhere in the
        # body (a reader sees last iteration's value even if the final
        # value is recomputed from scratch).
        rec: list[Operand] = []
        for w in undecided:
            seen: set[Operand] = set()
            stack = list(deps[w])
            selfdep = markers[w].tag in reads
            while stack and not selfdep:
                d = stack.pop()
                if d == w:
                    selfdep = True
                    break
                if d in seen:
                    continue
                seen.add(d)
                if d in undecided or d in invariant or d in affine:
                    stack.extend(deps.get(d, ()))
            if selfdep:
                rec.append(w)
        return invariant, affine, rec

    def _run_copies(
        self,
        copies: list[tuple[int, int]],
        base: str,
        key: str,
        depth: int,
        rec_slots: dict[Operand, int],
    ) -> tuple[tuple[tuple[Expr, ...], ...], tuple[Expr, ...]]:
        rec_ops = sorted(rec_slots, key=lambda w: rec_slots[w])
        deltas: list[tuple[Expr, ...]] = []
        conds: list[Expr] = []
        head_label = self.blocks[copies[0][0]].label
        for k, (lo, hi) in enumerate(copies):
            if depth == 1:
                iter_expr: Expr = LoopIdx(base)
            else:
                iter_expr = add(
                    mul(Const(float(depth)), LoopIdx(base)), Const(float(k))
                )
            for w in rec_ops:
                self.state[w] = RecPhi(key, rec_slots[w])
            self.loop_stack.append(
                _Frame(base=base, key=key, depth=depth, copy=k,
                       iter_expr=iter_expr)
            )
            try:
                term = self._walk_copy(lo, hi)
            finally:
                self.loop_stack.pop()
            taken = self._branch_taken(term)
            if k == len(copies) - 1:
                if term is None or term.target != head_label:
                    raise self._abstain(
                        "final ring copy does not branch back to the "
                        "loop head"
                    )
                conds.append(taken)
            else:
                # Non-final copies exit the loop when taken and fall
                # through to the next copy otherwise.
                conds.append(negate(taken))
            deltas.append(tuple(self.state[w] for w in rec_ops))
        return tuple(deltas), tuple(conds)

    def _walk_copy(self, lo: int, hi: int) -> Instruction | None:
        i = lo
        while i < hi:
            loop = self._loop_at(i, hi - 1)
            if loop is not None:
                self._handle_loop(loop[0], loop[1])
                i = loop[1] + 1
                continue
            i = self._walk_block(i, hi - 1, allow_jump_to=hi)
        block = self.blocks[hi]
        self._block_label = block.label
        term = block.terminator
        body = block.instructions[:-1] if term is not None \
            else block.instructions
        for instr in body:
            self._exec(instr)
        if term is not None and term.opcode is not Opcode.BRA:
            raise self._abstain("loop tail ends in EXIT, not a branch")
        return term

    def _branch_taken(self, term: Instruction | None) -> Expr:
        if term is None:
            return Const(0.0)
        if term.guard is None:
            return Const(1.0)
        g = self.state.get(term.guard, Const(0.0))
        self._note_read(g)
        return negate(g) if term.guard_negated else g

    # -- scopes ----------------------------------------------------------

    def _scope(self) -> Scope:
        return (
            tuple(f.base for f in self.loop_stack),
            tuple(f.copy for f in self.loop_stack),
        )

    def _ring_ctx(self) -> tuple[RingCtx, ...]:
        return tuple(
            RingCtx(f.base, f.depth, f.copy)
            for f in self.loop_stack if f.depth > 1
        )

    # -- instruction evaluation ------------------------------------------

    def _exec(self, instr: Instruction) -> None:
        op = instr.opcode
        if op in (Opcode.BAR_SYNC, Opcode.BAR_ARRIVE, Opcode.BAR_WAIT,
                  Opcode.NOP):
            return
        if op in (Opcode.TMA_STREAM, Opcode.TMA_GATHER):
            self._exec_tma(instr)
            return
        if op is Opcode.TMA_TILE:
            raise self._abstain("TMA.TILE is outside the validated fragment")
        guard = self._guard_expr(instr)
        if op is Opcode.STG:
            addr = self._operand(instr.srcs[0])
            value = self._operand(instr.srcs[1])
            if self.recording:
                self._seq += 1
                self._check_marker_free(addr, value, guard)
                self.summary.effects.append(StoreEffect(
                    addr=addr, value=value, guard=guard,
                    path=tuple(f.base for f in self.loop_stack),
                    ring=self._ring_ctx(),
                    stage=self.stage, block=self._block_label,
                    instr=repr(instr), seq=self._seq,
                ))
            return
        if op is Opcode.STS:
            addr = self._operand(instr.srcs[0])
            value = self._operand(instr.srcs[1])
            self._smem_write(instr, addr, value, guard)
            return
        if op is Opcode.LDGSTS:
            gaddr = self._operand(instr.srcs[0])
            saddr = self._operand(instr.srcs[1])
            self._smem_write(instr, saddr, GLoad(gaddr), guard)
            return
        if op is Opcode.LDG:
            result: Expr | None = GLoad(self._operand(instr.srcs[0]))
        elif op is Opcode.LDS:
            result = self._smem_read(instr)
        else:
            result = self._alu(instr)
        self._writeback(instr, result, guard)

    def _guard_expr(self, instr: Instruction) -> Expr | None:
        if instr.guard is None:
            return None
        g = self.state.get(instr.guard, Const(0.0))
        self._note_read(g)
        return negate(g) if instr.guard_negated else g

    def _operand(self, op: Operand) -> Expr:
        if isinstance(op, Immediate):
            return Const(float(op.value))
        if isinstance(op, (Register, Predicate)):
            value = self.state.get(op, Const(0.0))
            self._note_read(value)
            return value
        if isinstance(op, SpecialRegister):
            name = self.sregs.get(op.which)
            if name is None:
                raise self._abstain(
                    f"special register {op.which.name} outside the "
                    "validated fragment"
                )
            return Sym(name)
        if isinstance(op, QueueRef):
            return self._pop_queue(op.queue_id)
        raise self._abstain(f"unsupported operand {op!r}")

    def _alu(self, instr: Instruction) -> Expr | None:
        op = instr.opcode
        vals = [self._operand(s) for s in instr.srcs]
        if op in (Opcode.IADD, Opcode.FADD):
            return add(vals[0], vals[1])
        if op in (Opcode.IMUL, Opcode.FMUL):
            return mul(vals[0], vals[1])
        if op in (Opcode.IMAD, Opcode.FFMA, Opcode.HMMA):
            return add(mul(vals[0], vals[1]), vals[2])
        if op is Opcode.IDIV:
            return op2("idiv", vals[0], vals[1])
        if op in (Opcode.SHL, Opcode.SHR, Opcode.AND, Opcode.OR,
                  Opcode.MIN, Opcode.MAX):
            name = {Opcode.SHL: "shl", Opcode.SHR: "shr",
                    Opcode.AND: "and", Opcode.OR: "or",
                    Opcode.MIN: "min", Opcode.MAX: "max"}[op]
            return op2(name, vals[0], vals[1])
        if op is Opcode.MOV:
            return vals[0]
        if op is Opcode.SEL:
            return ite(vals[0], vals[1], vals[2])
        if op is Opcode.ISETP:
            return cmp(instr.attrs["cmp"], vals[0], vals[1])
        if op is Opcode.REDUX:
            return warpsum(vals[0])
        if op is Opcode.FRCP:
            return unary("frcp", vals[0])
        raise self._abstain(f"unsupported opcode {op.value}")

    def _writeback(
        self, instr: Instruction, result: Expr | None, guard: Expr | None
    ) -> None:
        if result is None or instr.dst is None:
            return
        if isinstance(instr.dst, QueueRef):
            self._push_queue(instr.dst.queue_id, result, guard)
            return
        if guard is not None:
            old = self.state.get(instr.dst, Const(0.0))
            result = ite(guard, result, old)
        self.state[instr.dst] = result

    def _check_marker_free(self, *exprs: Expr | None) -> None:
        for e in exprs:
            if e is not None and contains_marker(e):
                raise self._abstain(
                    "loop-entry value could not be resolved at a store"
                )

    # -- queues ----------------------------------------------------------

    def _push_queue(self, qid: int, value: Expr, guard: Expr | None) -> None:
        if not self.recording:
            return
        qs = self.env.queue(qid)
        qs.pushes.setdefault(self._scope(), []).append((value, guard))

    def _pop_queue(self, qid: int) -> Expr:
        if not self.recording:
            self._opaque_n += 1
            return Sym(f"~pop{qid}.{self._opaque_n}")
        qs = self.env.queue(qid)
        scope = self._scope()
        if qs.kind in ("tma-stream", "tma-gather"):
            return self._pop_tma(qid, qs, scope)
        n = qs.pops.get(scope, 0)
        qs.pops[scope] = n + 1
        plist = qs.pushes.get(scope, [])
        if n >= len(plist):
            self.summary.queue_issues.append(QueueIssue(
                queue_id=qid,
                message=(
                    f"queue {qid}: pop #{n + 1} in scope "
                    f"{scope[0] or ('<entry>',)} has no matching push"
                ),
                stage=self.stage,
                block=self._block_label,
            ))
            return Unknown(f"unmatched pop from queue {qid}")
        value, _guard = plist[n]
        return value

    def _pop_tma(self, qid: int, qs: _QueueState, scope: Scope) -> Expr:
        """A pop from a TMA-fed queue: index into the pushed batch.

        The batch element index is the iteration expression of the
        consumer's first loop below the scope the TMA configuration
        executed in (a gather inside the outer loop feeds the inner
        loop's pops; a hoisted stream outside every loop feeds the
        tile loop's pops).  Ring copies carry their ``depth*i + k``
        expressions, so slot residues fall out for free.
        """
        params = None
        plen = 0
        for j in range(len(scope[0]), -1, -1):
            sc = (scope[0][:j], scope[1][:j])
            if sc in qs.tma_by_scope:
                params = qs.tma_by_scope[sc]
                plen = j
                break
        if params is None:
            self.summary.queue_issues.append(QueueIssue(
                queue_id=qid,
                message=(
                    f"queue {qid}: TMA pop in scope "
                    f"{scope[0] or ('<entry>',)} has no configuring TMA "
                    "in any enclosing scope"
                ),
                stage=self.stage,
                block=self._block_label,
            ))
            return Unknown(f"TMA pop from queue {qid} without a config")
        if plen < len(self.loop_stack):
            it: Expr = self.loop_stack[plen].iter_expr
        else:
            qs.flat_pops += 1
            it = Const(float(qs.flat_pops - 1))
        if qs.kind == "tma-stream":
            base, stride = params
            return GLoad(add(base, mul(stride, it)))
        idx_base, data_base, stride = params
        idx = GLoad(add(idx_base, mul(stride, it)))
        return GLoad(add(data_base, idx))

    def _exec_tma(self, instr: Instruction) -> None:
        if not self.recording:
            return
        if instr.guard is not None:
            raise self._abstain("guarded TMA configuration")
        if not isinstance(instr.dst, QueueRef):
            raise self._abstain("TMA without a queue destination")
        qs = self.env.queue(instr.dst.queue_id)
        if instr.opcode is Opcode.TMA_STREAM:
            base = self._operand(instr.srcs[0])
            stride = (self._operand(instr.srcs[2]) if len(instr.srcs) > 2
                      else Const(float(instr.attrs.get("vec_stride", 0))))
            kind = "tma-stream"
            params: tuple[Expr, ...] = (base, stride)
        else:
            if instr.attrs.get("dest", "rfq") != "rfq":
                raise self._abstain("TMA.GATHER with an SMEM destination")
            idx_base = self._operand(instr.srcs[0])
            data_base = self._operand(instr.srcs[1])
            stride = (self._operand(instr.srcs[3]) if len(instr.srcs) > 3
                      else Const(float(instr.attrs.get("idx_stride", 0))))
            kind = "tma-gather"
            params = (idx_base, data_base, stride)
        scope = self._scope()
        prev = qs.tma_by_scope.get(scope)
        if prev is not None and prev != params:
            raise self._abstain(
                "TMA queue reconfigured with different parameters in "
                "the same scope"
            )
        qs.kind = kind
        qs.tma_by_scope[scope] = params

    # -- shared memory ---------------------------------------------------

    def _smem_canon(self, instr: Instruction, addr: Expr) -> tuple[str, Expr]:
        family = instr.attrs.get("smem_buffer")
        if not family:
            raise self._abstain(
                "SMEM access without a smem_buffer tag"
            )
        phase = int(instr.attrs.get("smem_phase", 0))
        shift = 0
        if phase:
            replica = f"{family}{copy_suffix(phase)}"
            buffers = self.program.smem_buffers
            if family in buffers and replica in buffers:
                shift = buffers[replica][0] - buffers[family][0]
            else:
                raise self._abstain(
                    f"ring replica {replica!r} missing from the SMEM "
                    "allocation table"
                )
        return family, add(addr, Const(float(-shift)))

    def _smem_write(
        self, instr: Instruction, addr: Expr, value: Expr, guard: Expr | None
    ) -> None:
        if not self.recording:
            return
        family, canon = self._smem_canon(instr, addr)
        if guard is not None:
            value = ite(guard, value, Sym("~undef"))
        self.env.smem.setdefault((self._scope(), family), []).append(
            (canon, value)
        )

    def _smem_read(self, instr: Instruction) -> Expr:
        addr = self._operand(instr.srcs[0])
        if not self.recording:
            self._opaque_n += 1
            return Sym(f"~lds.{self._opaque_n}")
        family, canon = self._smem_canon(instr, addr)
        self.env.threaded_families.add(family)
        scope = self._scope()
        fallback_writes: tuple[tuple[Expr, Expr], ...] = ()
        for j in range(len(scope[0]), -1, -1):
            sc = (scope[0][:j], scope[1][:j])
            writes = self.env.smem.get((sc, family))
            if not writes:
                continue
            for waddr, wvalue in reversed(writes):
                if waddr == canon:
                    return wvalue
            if not fallback_writes:
                fallback_writes = tuple(writes)
        return SLoad(family, canon, fallback_writes)


def _marker_tags(e: Expr) -> set[str]:
    tags: set[str] = set()

    def fn(node: Expr) -> Expr:
        if isinstance(node, Marker):
            tags.add(node.tag)
        return node

    rewrite(e, fn)
    return tags


def _has_opaque(e: Expr) -> bool:
    """True if ``e`` contains a pass-1 opaque (``~pop``/``~lds`` Sym)."""
    found = False

    def fn(node: Expr) -> Expr:
        nonlocal found
        if isinstance(node, Sym) and node.name.startswith("~"):
            found = True
        return node

    rewrite(e, fn)
    return found
