"""Translation validation: execution-free equivalence certificates.

Given the pre-compile kernel and the WaspCompiler output, this package
builds symbolic memory-effect summaries of both sides, threads
queue-carried values through the pipeline's FIFO edges, and checks a
cutpoint simulation relation: every global store of the specialized
program must match a source store 1:1 in address, value and guard —
across every circular-buffer slot residue, for any pipeline depth,
without executing or unrolling anything.

Findings are the ``WASP-T`` diagnostic family; the verdict is
three-valued (``equivalent`` / ``not-equivalent`` / ``abstain``), and
abstention is always explicit — never a silent pass.
"""

from repro.analysis.transval.effects import Summary, summarize_program
from repro.analysis.transval.validate import (
    ABSTAIN,
    EQUIVALENT,
    NOT_EQUIVALENT,
    ValidationReport,
    validate_or_raise,
    validate_programs,
)

__all__ = [
    "ABSTAIN",
    "EQUIVALENT",
    "NOT_EQUIVALENT",
    "Summary",
    "ValidationReport",
    "summarize_program",
    "validate_or_raise",
    "validate_programs",
]
