"""Translation validation: execution-free equivalence certificates.

``validate_programs`` is the one entry point: given the pre-compile
kernel and the :class:`WaspCompiler` output it walks both sides into
symbolic effect summaries (:mod:`repro.analysis.transval.effects`),
checks the cutpoint simulation relation over ring-slot residues
(:mod:`repro.analysis.transval.match`), and folds in the ordering
obligations the value proof relies on — the PR 8 happens-before engine
must be able to order every cross-stage SMEM access the threading step
read through, and the static verifier must not have found protocol
errors (a racy or deadlocking program has no meaningful simulation
relation to certify).

Verdicts are three-valued, and abstention is *never* silently folded
into a pass:

``equivalent``
    every specialized store matched 1:1, no T-errors, no abstentions.
``not-equivalent``
    at least one T001/T002/T003 error — a concrete broken obligation.
``abstain``
    no errors, but at least one WASP-T004: the program left the
    validated fragment somewhere, so equivalence is unproven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    Severity,
)
from repro.analysis.transval.effects import Summary, summarize_program
from repro.analysis.transval.match import match_summaries
from repro.errors import VerificationError
from repro.isa.program import Program
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import span

__all__ = [
    "EQUIVALENT",
    "NOT_EQUIVALENT",
    "ABSTAIN",
    "ValidationReport",
    "validate_programs",
    "validate_or_raise",
]

EQUIVALENT = "equivalent"
NOT_EQUIVALENT = "not-equivalent"
ABSTAIN = "abstain"

_T_ERRORS = ("WASP-T001", "WASP-T002", "WASP-T003")


@dataclass
class ValidationReport:
    """One translation-validation run: verdict plus the evidence."""

    kernel: str
    verdict: str
    report: DiagnosticReport
    matched_stores: int = 0
    source_stores: int = 0
    spec_stores: int = 0
    specialized: bool = True
    #: Populated for introspection/tests; not serialized.
    source_summary: Summary | None = field(default=None, repr=False)
    spec_summary: Summary | None = field(default=None, repr=False)

    @property
    def t_errors(self) -> list[Diagnostic]:
        return [d for d in self.report if d.rule in _T_ERRORS]

    @property
    def abstentions(self) -> list[Diagnostic]:
        return [d for d in self.report if d.rule == "WASP-T004"]

    def summary_line(self) -> str:
        detail = (
            f"{self.matched_stores}/{self.source_stores} store "
            "obligations matched"
            if self.specialized else "unspecialized output (identity)"
        )
        return f"transval: {self.verdict} ({detail})"

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": "repro-transval-v1",
            "kernel": self.kernel,
            "verdict": self.verdict,
            "specialized": self.specialized,
            "matched_stores": self.matched_stores,
            "source_stores": self.source_stores,
            "spec_stores": self.spec_stores,
            "num_t_errors": len(self.t_errors),
            "num_abstentions": len(self.abstentions),
            "diagnostics": self.report.to_json()["diagnostics"],
        }


def validate_programs(
    source: Program,
    specialized: Program,
    *,
    assume_verified: bool = False,
) -> ValidationReport:
    """Check the simulation relation between ``source`` and its compile.

    ``assume_verified=True`` skips re-running the static verifier over
    the specialized program (the compiler post-pass sets it, because
    ``verify_or_raise`` already ran in the same compile); the
    happens-before ordering check always runs — the value proof leans
    on its FIFO/barrier edges directly.
    """
    with span("transval", "validate"):
        report = DiagnosticReport()
        specialized_output = _is_specialized(specialized)
        src_sum: Summary | None = None
        spec_sum: Summary | None = None
        matched = n_src = n_spec = 0

        if specialized_output:
            report.extend(_ordering_diagnostics(
                specialized, assume_verified=assume_verified
            ))
            src_sum = summarize_program(source, side="source")
            spec_sum = summarize_program(specialized, side="specialized")
            res = match_summaries(src_sum, spec_sum)
            report.extend(res.diagnostics)
            matched = res.matched_stores
            n_src = res.source_stores
            n_spec = res.spec_stores
        # An unspecialized compile is the identity transformation: the
        # compiler bailed before rewriting anything, so the relation
        # holds trivially and there is nothing to walk.

        report = report.normalized()
        verdict = _verdict(report)
        _count(report, verdict)
        return ValidationReport(
            kernel=source.name,
            verdict=verdict,
            report=report,
            matched_stores=matched,
            source_stores=n_src,
            spec_stores=n_spec,
            specialized=specialized_output,
            source_summary=src_sum,
            spec_summary=spec_sum,
        )


def validate_or_raise(
    source: Program,
    specialized: Program,
    *,
    assume_verified: bool = False,
) -> ValidationReport:
    """The compiler's opt-out post-pass: raise on ``not-equivalent``.

    Abstention does **not** raise — it is a coverage statement, not a
    counterexample — but it is preserved on the report so callers (CI,
    the fuzz cross-check) can gate on it explicitly.
    """
    result = validate_programs(
        source, specialized, assume_verified=assume_verified
    )
    if result.verdict == NOT_EQUIVALENT:
        errs = result.t_errors
        raise VerificationError(
            f"{source.name!r} failed translation validation with "
            f"{len(errs)} error(s); first: {errs[0].format()}",
            diagnostics=list(result.report),
        )
    return result


def _is_specialized(program: Program) -> bool:
    from repro.analysis.cfg import build_view

    return bool(build_view(program).stages)


def _ordering_diagnostics(
    specialized: Program, *, assume_verified: bool
) -> list[Diagnostic]:
    """T003: the ordering facts the value proof depends on must hold.

    The queue threading step assumed FIFO pairing and the SMEM
    threading step assumed writer-before-reader per ring slot; both
    are exactly what the happens-before engine proves.  Any RACY pair
    — and, unless the caller already verified, any error-severity
    queue/deadlock/SMEM finding — voids the simulation relation.
    """
    from repro.analysis.dataflow.hb import analyze_program

    diags: list[Diagnostic] = []
    hb = analyze_program(specialized)
    for verdict in hb.racy():
        base = verdict.rule or "WASP-S001"
        diags.append(Diagnostic(
            rule="WASP-T003",
            message=(
                f"accesses to {verdict.group!r} are unordered "
                f"({base}: stage {verdict.writer.stage} "
                f"{verdict.writer.instr_repr} vs stage "
                f"{verdict.other.stage} {verdict.other.instr_repr}); "
                "the equivalence proof relies on this ordering"
            ),
            kernel=specialized.name,
            stage=verdict.writer.stage,
            block=verdict.writer.block,
            instruction=verdict.writer.instr_repr,
            hint="fix the barrier/credit protocol first — value "
                 "equivalence cannot hold across a data race",
        ))
    if not assume_verified:
        from repro.analysis.verifier import verify_program

        for diag in verify_program(specialized):
            family = diag.rule.split("-")[1][0]
            if diag.severity is Severity.ERROR and family in "QDS":
                diags.append(Diagnostic(
                    rule="WASP-T003",
                    message=(
                        f"static verifier found {diag.rule} on the "
                        f"specialized program: {diag.message}"
                    ),
                    kernel=specialized.name,
                    stage=diag.stage,
                    block=diag.block,
                    instruction=diag.instruction,
                    hint=diag.hint,
                ))
    return diags


def _verdict(report: DiagnosticReport) -> str:
    if any(d.rule in _T_ERRORS for d in report):
        return NOT_EQUIVALENT
    if any(d.rule == "WASP-T004" for d in report):
        return ABSTAIN
    return EQUIVALENT


def _count(report: DiagnosticReport, verdict: str) -> None:
    # Whether a validation runs at all depends on trace-cache locality
    # (cached sweeps skip the compile entirely), so like the fuzz
    # verdict cache these series are ``invariant=False`` — not expected
    # to be bit-identical across --jobs settings.
    if not TELEMETRY.enabled:
        return
    TELEMETRY.counter(
        "repro_transval_verdicts_total",
        labels={"verdict": verdict},
        help="Translation-validation verdicts by kind.",
        invariant=False,
    ).inc()
    for diag in report:
        if diag.rule.startswith("WASP-T"):
            TELEMETRY.counter(
                "repro_transval_rule_firings_total",
                labels={"rule": diag.rule},
                help="Diagnostics emitted per translation-validation "
                     "rule.",
                invariant=False,
            ).inc()
