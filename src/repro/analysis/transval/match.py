"""The cutpoint simulation relation between source and specialized walks.

Given the two effect summaries, this module decides whether every
global store of the specialized program matches a source store 1:1 in
address, value and guard — across every ring residue — and emits
WASP-T diagnostics where the relation fails.

Ring reasoning happens here, at match time, over slot residues: a
source store inside a loop the compiler unrolled to depth ``u`` must be
matched by ``u`` specialized stores, one per copy ``k``, each
equivalent to the source store with ``i -> u*i + k`` substituted into
the *source* expression.  The specialized side already carries the
``u*i + k`` iteration expressions from the walk, so equivalence is a
plain structural comparison after the substitution.

Recurrence slots are matched by searching for an injective slot map per
loop (a handful of coupled accumulators at most — e.g. attention's
running max-free ``o``/``norm`` pair), validating inits, per-copy
deltas and continue conditions under the same substitutions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.transval.effects import (
    LoopInfo,
    RingCtx,
    StoreEffect,
    Summary,
)
from repro.analysis.transval.expr import (
    Const,
    Expr,
    GLoad,
    LoopIdx,
    Op,
    RecExit,
    RecPhi,
    add,
    first_unknown,
    mul,
    rewrite,
    stable_repr,
    subst_loop,
)

__all__ = ["MatchResult", "match_summaries"]


@dataclass
class MatchResult:
    """Diagnostics plus bookkeeping from one simulation-relation check."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    matched_stores: int = 0
    source_stores: int = 0
    spec_stores: int = 0

    def abstained(self) -> bool:
        return any(d.rule == "WASP-T004" for d in self.diagnostics)


def match_summaries(source: Summary, spec: Summary) -> MatchResult:
    return _Matcher(source, spec).run()


class _Matcher:
    def __init__(self, source: Summary, spec: Summary) -> None:
        self.source = source
        self.spec = spec
        self.kernel = spec.kernel
        self.result = MatchResult()
        #: spec loop key -> slot map into the source frame (None when
        #: the search failed; missing when the loop has no recurrences).
        self.sigma: dict[str, dict[int, int] | None] = {}
        self.depth_of: dict[str, int] = {}
        for info in spec.loops.values():
            prev = self.depth_of.get(info.base, 1)
            self.depth_of[info.base] = max(prev, info.depth)

    # -- driver ----------------------------------------------------------

    def run(self) -> MatchResult:
        for exc in self.source.abstentions + self.spec.abstentions:
            self._t004(exc.reason, stage=exc.stage, block=exc.block)
        for issue in self.spec.queue_issues:
            self._diag(
                "WASP-T002",
                issue.message,
                stage=None if issue.stage < 0 else issue.stage,
                block=issue.block or None,
                hint="re-pair queue pushes and pops: every value pushed "
                     "per iteration must be popped exactly once by the "
                     "consumer stage",
            )
        self._check_global_aliasing()
        self._solve_loops()
        self._match_stores()
        return self.result

    def _diag(self, rule: str, message: str, *, stage: int | None = None,
              block: str | None = None, instruction: str | None = None,
              hint: str | None = None) -> None:
        self.result.diagnostics.append(Diagnostic(
            rule=rule,
            message=message,
            kernel=self.kernel,
            stage=stage,
            block=block,
            instruction=instruction,
            hint=hint,
        ))

    def _t004(self, reason: str, *, stage: int | None = None,
              block: str | None = None) -> None:
        self._diag(
            "WASP-T004",
            f"validator abstained: {reason}",
            stage=stage,
            block=block,
            hint="equivalence is unproven here, not disproven; the "
                 "differential fuzz oracle remains the safety net",
        )

    # -- soundness guard -------------------------------------------------

    def _check_global_aliasing(self) -> None:
        """Loads are modeled as reads of *initial* memory.

        That is sound only if no load can observe a store of the same
        run.  Compare the constant (region-base) terms of every global
        load and store address on the source side and abstain on
        overlap — the registry and fuzz kernels keep inputs and outputs
        in disjoint regions, so this fires only outside the fragment.
        """
        store_bases = {_const_term(e.addr) for e in self.source.effects}
        load_bases: set[float] = set()

        def collect(expr: Expr) -> None:
            def fn(node: Expr) -> Expr:
                if isinstance(node, GLoad):
                    load_bases.add(_const_term(node.addr))
                return node

            rewrite(expr, fn)

        for eff in self.source.effects:
            collect(eff.addr)
            collect(eff.value)
            if eff.guard is not None:
                collect(eff.guard)
        for info in self.source.loops.values():
            for e in list(info.rec_inits) + [
                d for row in info.rec_deltas for d in row
            ]:
                collect(e)
        overlap = store_bases & load_bases
        if overlap:
            self._t004(
                "a global load may alias a global store (shared region "
                f"base {sorted(overlap)}); load/store forwarding is "
                "outside the validated fragment"
            )

    # -- loop matching ---------------------------------------------------

    def _solve_loops(self) -> None:
        """Find the slot map sigma for every specialized loop.

        A loop's recurrence system may reference another loop's slots
        in *both* directions (an accumulator's init reads the outer
        RecPhi while the outer delta reads the inner RecExit), so slot
        maps are searched jointly per connected nest rather than one
        loop at a time.
        """
        infos = list(self.spec.loops.values())
        missing: set[str] = set()
        for info in infos:
            if self.source.loops.get(info.base) is None:
                self._diag(
                    "WASP-T002",
                    f"loop {info.base!r} in stage {info.stage} has no "
                    "counterpart in the source kernel",
                    stage=info.stage,
                    hint="stage splitting should clone source loops, "
                         "not invent new ones",
                )
                self.sigma[info.key] = None
                missing.add(info.key)
        for component in self._nest_components(
            [i for i in infos if i.key not in missing]
        ):
            self._solve_component(component)

    def _nest_components(
        self, infos: list[LoopInfo]
    ) -> list[list[LoopInfo]]:
        keys = {i.key for i in infos}
        adj: dict[str, set[str]] = {i.key: set() for i in infos}
        for info in infos:
            for ref in self._referenced_keys(info):
                if ref in keys and ref != info.key:
                    adj[info.key].add(ref)
                    adj[ref].add(info.key)
        by_key = {i.key: i for i in infos}
        seen: set[str] = set()
        components: list[list[LoopInfo]] = []
        for info in sorted(infos, key=lambda i: i.key):
            if info.key in seen:
                continue
            comp: list[str] = []
            stack = [info.key]
            while stack:
                k = stack.pop()
                if k in seen:
                    continue
                seen.add(k)
                comp.append(k)
                stack.extend(adj[k])
            components.append([by_key[k] for k in sorted(comp)])
        return components

    def _referenced_keys(self, info: LoopInfo) -> set[str]:
        refs: set[str] = set()

        def fn(node: Expr) -> Expr:
            if isinstance(node, (RecPhi, RecExit)):
                refs.add(node.loop)
            return node

        for e in self._loop_exprs(info):
            rewrite(e, fn)
        return refs

    def _loop_exprs(self, info: LoopInfo) -> list[Expr]:
        return (list(info.rec_inits)
                + [d for row in info.rec_deltas for d in row]
                + list(info.cont_conds))

    def _solve_component(self, component: list[LoopInfo]) -> None:
        choices: list[list[dict[int, int]]] = []
        for info in component:
            src = self.source.loops[info.base]
            m = len(src.rec_inits)
            n = len(info.rec_inits)
            choices.append([
                dict(enumerate(perm))
                for perm in itertools.permutations(range(m), n)
            ])
        found: dict[str, dict[int, int] | None] | None = None
        for combo in itertools.product(*choices):
            overlay: dict[str, dict[int, int] | None] = {
                info.key: trial
                for info, trial in zip(component, combo)
            }
            if all(
                self._loop_matches(info, self.source.loops[info.base],
                                   overlay)
                for info in component
            ):
                found = overlay
                break
        if found is not None:
            self.sigma.update(found)
            return
        for info in component:
            self.sigma[info.key] = None
        if any(
            self._loop_has_unknown(info, self.source.loops[info.base])
            for info in component
        ):
            self._t004(
                "a loop nest carries a value the walker could not "
                f"resolve ({', '.join(i.base for i in component)})",
                stage=component[0].stage,
            )
            return
        bases = ", ".join(f"{i.base!r}" for i in component)
        self._diag(
            "WASP-T002",
            f"recurrence system or exit condition of loop nest "
            f"{bases} (stage {component[0].stage}) does not simulate "
            "the source",
            stage=component[0].stage,
            hint="check queue value threading and the per-slot "
                 "induction rewiring of the circular-buffer unroll",
        )

    def _loop_has_unknown(self, info: LoopInfo, src: LoopInfo) -> bool:
        exprs = self._loop_exprs(info) + self._loop_exprs(src)
        return any(first_unknown(e) is not None for e in exprs)

    def _loop_matches(
        self,
        info: LoopInfo,
        src: LoopInfo,
        overlay: dict[str, dict[int, int] | None],
    ) -> bool:
        trial = overlay[info.key]
        assert trial is not None
        for s, t in trial.items():
            if not self._equiv(
                info.rec_inits[s], src.rec_inits[t], info.ctx, overlay
            ):
                return False
        if len(src.cont_conds) != 1 or src.depth != 1:
            return False
        for k in range(info.depth):
            ring = info.ctx
            if info.depth > 1:
                ring = ring + (RingCtx(info.base, info.depth, k),)
            for s, t in trial.items():
                if not self._equiv(
                    info.rec_deltas[k][s], src.rec_deltas[0][t],
                    ring, overlay,
                ):
                    return False
            if not self._equiv(
                info.cont_conds[k], src.cont_conds[0], ring, overlay
            ):
                return False
        return True

    # -- expression equivalence ------------------------------------------

    def _subst_ring(self, e: Expr, ring: tuple[RingCtx, ...]) -> Expr:
        for ctx in ring:
            if ctx.depth <= 1:
                continue
            e = subst_loop(e, ctx.loop, add(
                mul(Const(float(ctx.depth)), LoopIdx(ctx.loop)),
                Const(float(ctx.copy)),
            ))
        return e

    def _canon_spec(
        self, e: Expr, overlay: dict[str, dict[int, int] | None]
    ) -> Expr:
        """Map spec-side recurrence nodes into the source frame."""

        def fn(node: Expr) -> Expr:
            if isinstance(node, (RecPhi, RecExit)):
                info = self.spec.loops.get(node.loop)
                if info is None:
                    return node  # already in the source frame
                sigma = overlay.get(node.loop, self.sigma.get(node.loop))
                if sigma is None or node.slot not in sigma:
                    # Unmatched recurrence: poison comparisons that
                    # depend on it by leaving the spec-side key intact.
                    return node
                cls = RecPhi if isinstance(node, RecPhi) else RecExit
                return cls(info.base, sigma[node.slot])
            return node

        return rewrite(e, fn)

    def _equiv(
        self,
        spec_e: Expr,
        src_e: Expr,
        ring: tuple[RingCtx, ...],
        overlay: dict[str, dict[int, int] | None] | None = None,
    ) -> bool:
        canon = self._canon_spec(spec_e, overlay or {})
        return canon == self._subst_ring(src_e, ring)

    # -- store matching --------------------------------------------------

    def _match_stores(self) -> None:
        self.result.source_stores = len(self.source.effects)
        self.result.spec_stores = len(self.spec.effects)
        used: set[int] = set()
        for src_eff in self.source.effects:
            ring_bases = [
                b for b in src_eff.path if self.depth_of.get(b, 1) > 1
            ]
            residues = itertools.product(
                *[range(self.depth_of[b]) for b in ring_bases]
            )
            for vec in residues:
                ring = tuple(
                    RingCtx(b, self.depth_of[b], k)
                    for b, k in zip(ring_bases, vec)
                )
                self._match_one(src_eff, ring, used)
        for idx, se in enumerate(self.spec.effects):
            if idx not in used:
                self._diag(
                    "WASP-T001",
                    f"store at {se.block} has no matching source store "
                    f"(address {stable_repr(se.addr)})",
                    stage=se.stage,
                    block=se.block,
                    instruction=se.instr,
                    hint="the specialized program writes something the "
                         "source never writes — check stage extraction "
                         "and address rewiring",
                )

    def _match_one(
        self,
        src_eff: StoreEffect,
        ring: tuple[RingCtx, ...],
        used: set[int],
    ) -> None:
        want_copy = {c.loop: c.copy for c in ring}
        src_addr = self._subst_ring(src_eff.addr, ring)
        candidate: int | None = None
        for idx, se in enumerate(self.spec.effects):
            if idx in used or se.path != src_eff.path:
                continue
            have_copy = {c.loop: c.copy for c in se.ring}
            if have_copy != want_copy:
                continue
            if self._canon_spec(se.addr, {}) == src_addr:
                candidate = idx
                break
        if candidate is None:
            unknown = first_unknown(src_addr)
            if unknown is not None:
                self._t004(unknown.reason, block=src_eff.block)
                return
            residue = (
                " (ring residue "
                + ",".join(f"{c.loop}={c.copy}" for c in ring) + ")"
                if ring else ""
            )
            self._diag(
                "WASP-T001",
                f"source store at {src_eff.block} to address "
                f"{stable_repr(src_addr)} has no specialized "
                f"counterpart{residue}",
                block=src_eff.block,
                instruction=src_eff.instr,
                hint="a store was lost in specialization — check that "
                     "the consumer stage kept every STG and that ring "
                     "unrolling covers this slot residue",
            )
            return
        used.add(candidate)
        se = self.spec.effects[candidate]
        ok_guard = (
            (se.guard is None and src_eff.guard is None)
            or (
                se.guard is not None and src_eff.guard is not None
                and self._equiv(se.guard, src_eff.guard, ring)
            )
        )
        ok_value = self._equiv(se.value, src_eff.value, ring)
        if ok_guard and ok_value:
            self.result.matched_stores += 1
            return
        spec_val = self._canon_spec(se.value, {})
        src_val = self._subst_ring(src_eff.value, ring)
        for e in (spec_val, src_val, se.guard, src_eff.guard):
            if e is None:
                continue
            unknown = first_unknown(e)
            if unknown is not None:
                self._t004(unknown.reason, stage=se.stage, block=se.block)
                return
        what = "guard" if not ok_guard else "value"
        self._diag(
            "WASP-T002",
            f"store at {se.block} matches the source address but its "
            f"{what} differs: specialized "
            f"{stable_repr(spec_val if what == 'value' else se.guard or Const(1.0))} "
            "vs source "
            f"{stable_repr(src_val if what == 'value' else src_eff.guard or Const(1.0))}",
            stage=se.stage,
            block=se.block,
            instruction=se.instr,
            hint="the value threaded through queues/SMEM to this store "
                 "diverged — check push/pop pairing, ring slot "
                 "addresses and barrier phases along the producer path",
        )


def _const_term(e: Expr) -> float:
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Op) and e.op == "add":
        for a in e.args:
            if isinstance(a, Const):
                return a.value
    return 0.0
