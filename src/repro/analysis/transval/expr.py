"""Normalized symbolic expressions for translation validation.

The validator compares the memory effects of the source kernel and the
warp-specialized program *structurally*: both sides are walked with the
same symbolic evaluator (mirroring :mod:`repro.fexec.machine` semantics
exactly) and every value is rebuilt through the normalizing smart
constructors below, so semantically identical computations collapse to
identical trees and plain ``==`` decides equivalence.

Normal form: n-ary ``add``/``mul`` with constants folded, products
distributed over sums and like terms collected, so affine address
arithmetic — the bread and butter of tile/stream kernels — lands in a
canonical sum-of-products shape.  Everything the machine computes with
floor/bit semantics (``shl``, ``idiv``, …) stays opaque but is folded
exactly when all operands are constant, using the very same formulas as
the functional executor.

Loop-carried structure is expressed with dedicated nodes:

``LoopIdx(loop)``
    The current iteration index of ``loop`` (0-based).  Loop identity is
    the *stripped* head-block label (stage prefix and ``__db<k>`` ring
    suffix removed), which is stable across the source, the stage
    sections and the unrolled ring copies.
``RecPhi(loop, slot)`` / ``RecExit(loop, slot)``
    A genuine loop-carried recurrence value at iteration entry / after
    the loop.  The per-loop recurrence systems (inits + per-copy deltas)
    live in the walk summary, not in the nodes; slots are matched by
    bijection at comparison time.
``Trip(loop)``
    The number of iterations ``loop`` executed (opaque; equal on both
    sides because exit conditions are cloned, and checked separately).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "LoopIdx",
    "Trip",
    "RecPhi",
    "RecExit",
    "Marker",
    "GLoad",
    "SLoad",
    "Op",
    "Unknown",
    "add",
    "mul",
    "op2",
    "cmp",
    "ite",
    "negate",
    "unary",
    "warpsum",
    "subst_loop",
    "rewrite",
    "contains_marker",
    "first_unknown",
    "stable_repr",
    "digest",
]


class Expr:
    """Base class for all symbolic expression nodes (frozen, hashable)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: float


@dataclass(frozen=True, slots=True)
class Sym(Expr):
    """A free symbolic input: lane id, warp id, thread-block id, …"""

    name: str


@dataclass(frozen=True, slots=True)
class LoopIdx(Expr):
    loop: str


@dataclass(frozen=True, slots=True)
class Trip(Expr):
    loop: str


@dataclass(frozen=True, slots=True)
class RecPhi(Expr):
    loop: str
    slot: int


@dataclass(frozen=True, slots=True)
class RecExit(Expr):
    loop: str
    slot: int


@dataclass(frozen=True, slots=True)
class Marker(Expr):
    """Internal loop-entry placeholder used during classification.

    Markers must never survive into a final summary — a leaked marker
    means the walker could not resolve a loop-entry value and the
    validator abstains (WASP-T004).
    """

    tag: str


@dataclass(frozen=True, slots=True)
class GLoad(Expr):
    """A load from (initial) global memory at a symbolic address."""

    addr: "Expr"


@dataclass(frozen=True, slots=True)
class SLoad(Expr):
    """An unresolved shared-memory read.

    Carries the ordered write set of the staging scope it reads from so
    cooperative (lane-partitioned writer vs element-addressed reader)
    staging patterns compare as "same parametric write set" without
    per-element alias reasoning.
    """

    family: str
    addr: "Expr"
    writes: tuple[tuple["Expr", "Expr"], ...]


@dataclass(frozen=True, slots=True)
class Op(Expr):
    op: str
    args: tuple["Expr", ...]


@dataclass(frozen=True, slots=True)
class Unknown(Expr):
    reason: str


# -- ordering ------------------------------------------------------------

_RANK = {
    Const: 0,
    Sym: 1,
    LoopIdx: 2,
    Trip: 3,
    RecPhi: 4,
    RecExit: 5,
    Marker: 6,
    GLoad: 7,
    SLoad: 8,
    Op: 9,
    Unknown: 10,
}


def _key(e: Expr) -> tuple:
    """Deterministic structural sort key."""
    if isinstance(e, Const):
        return (0, e.value)
    if isinstance(e, Sym):
        return (1, e.name)
    if isinstance(e, LoopIdx):
        return (2, e.loop)
    if isinstance(e, Trip):
        return (3, e.loop)
    if isinstance(e, RecPhi):
        return (4, e.loop, e.slot)
    if isinstance(e, RecExit):
        return (5, e.loop, e.slot)
    if isinstance(e, Marker):
        return (6, e.tag)
    if isinstance(e, GLoad):
        return (7, _key(e.addr))
    if isinstance(e, SLoad):
        return (8, e.family, _key(e.addr), len(e.writes))
    if isinstance(e, Op):
        return (9, e.op, tuple(_key(a) for a in e.args))
    assert isinstance(e, Unknown)
    return (10, e.reason)


_COMMUTATIVE = frozenset({"add", "mul", "and", "or", "min", "max", "eq", "ne"})

_NEGATED_CMP = {
    "lt": "ge",
    "ge": "lt",
    "le": "gt",
    "gt": "le",
    "eq": "ne",
    "ne": "eq",
}


def _unknown_in(args: tuple[Expr, ...]) -> Unknown | None:
    for a in args:
        if isinstance(a, Unknown):
            return a
    return None


# -- constant folding (exact machine semantics) --------------------------


def _fold(op: str, vals: list[float]) -> float:
    import math

    if op == "idiv":
        b = vals[1] if vals[1] != 0 else 1.0
        return math.floor(vals[0] / b)
    if op == "shl":
        return math.floor(vals[0]) * (2.0 ** math.floor(vals[1]))
    if op == "shr":
        return math.floor(math.floor(vals[0]) / (2.0 ** math.floor(vals[1])))
    if op == "and":
        return float(int(vals[0]) & int(vals[1]))
    if op == "or":
        return float(int(vals[0]) | int(vals[1]))
    if op == "min":
        return min(vals)
    if op == "max":
        return max(vals)
    if op == "frcp":
        return 1.0 / vals[0] if vals[0] != 0 else 0.0
    if op == "not":
        return 0.0 if vals[0] else 1.0
    if op in _NEGATED_CMP:
        a, b = vals
        res = {
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
            "eq": a == b,
            "ne": a != b,
        }[op]
        return 1.0 if res else 0.0
    raise AssertionError(f"unfoldable op {op}")


# -- smart constructors --------------------------------------------------


def add(*args: Expr) -> Expr:
    """Normalized n-ary sum: flatten, fold constants, collect like terms."""
    bad = _unknown_in(tuple(args))
    if bad is not None:
        return bad
    flat: list[Expr] = []
    for a in args:
        if isinstance(a, Op) and a.op == "add":
            flat.extend(a.args)
        else:
            flat.append(a)
    const = 0.0
    terms: dict[tuple, tuple[float, tuple[Expr, ...]]] = {}
    for a in flat:
        if isinstance(a, Const):
            const += a.value
            continue
        coeff, factors = _term(a)
        k = tuple(_key(f) for f in factors)
        if k in terms:
            prev, _ = terms[k]
            terms[k] = (prev + coeff, factors)
        else:
            terms[k] = (coeff, factors)
    out: list[Expr] = []
    for coeff, factors in terms.values():
        if coeff == 0.0:
            continue
        out.append(_build_term(coeff, factors))
    if const != 0.0 or not out:
        out.append(Const(const))
    out.sort(key=_key)
    if len(out) == 1:
        return out[0]
    return Op("add", tuple(out))


def _term(e: Expr) -> tuple[float, tuple[Expr, ...]]:
    """Decompose into (constant coefficient, sorted non-const factors)."""
    if isinstance(e, Op) and e.op == "mul":
        coeff = 1.0
        factors: list[Expr] = []
        for f in e.args:
            if isinstance(f, Const):
                coeff *= f.value
            else:
                factors.append(f)
        factors.sort(key=_key)
        return coeff, tuple(factors)
    return 1.0, (e,)


def _build_term(coeff: float, factors: tuple[Expr, ...]) -> Expr:
    if not factors:
        return Const(coeff)
    if coeff == 1.0 and len(factors) == 1:
        return factors[0]
    parts: list[Expr] = []
    if coeff != 1.0:
        parts.append(Const(coeff))
    parts.extend(factors)
    if len(parts) == 1:
        return parts[0]
    return Op("mul", tuple(sorted(parts, key=_key)))


def mul(*args: Expr) -> Expr:
    """Normalized n-ary product, fully distributed over sums."""
    bad = _unknown_in(tuple(args))
    if bad is not None:
        return bad
    flat: list[Expr] = []
    for a in args:
        if isinstance(a, Op) and a.op == "mul":
            flat.extend(a.args)
        else:
            flat.append(a)
    const = 1.0
    rest: list[Expr] = []
    for a in flat:
        if isinstance(a, Const):
            const *= a.value
        else:
            rest.append(a)
    if const == 0.0:
        return Const(0.0)
    sums = [a for a in rest if isinstance(a, Op) and a.op == "add"]
    if sums:
        # Distribute: expand the product of sums into a sum of products.
        products: list[list[Expr]] = [[]]
        for a in rest:
            if isinstance(a, Op) and a.op == "add":
                products = [p + [t] for p in products for t in a.args]
            else:
                products = [p + [a] for p in products]
        return add(*[mul(Const(const), *p) for p in products])
    if not rest:
        return Const(const)
    return _build_term(const, tuple(sorted(rest, key=_key)))


def op2(op: str, a: Expr, b: Expr) -> Expr:
    """Opaque binary op (``idiv``/``shl``/``shr``/``and``/``or``/…)."""
    bad = _unknown_in((a, b))
    if bad is not None:
        return bad
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(_fold(op, [a.value, b.value]))
    args = (a, b)
    if op in _COMMUTATIVE:
        args = tuple(sorted(args, key=_key))  # type: ignore[assignment]
    return Op(op, args)


def cmp(op: str, a: Expr, b: Expr) -> Expr:
    bad = _unknown_in((a, b))
    if bad is not None:
        return bad
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(_fold(op, [a.value, b.value]))
    if op in ("eq", "ne"):
        a, b = sorted((a, b), key=_key)
    return Op(op, (a, b))


def ite(c: Expr, t: Expr, f: Expr) -> Expr:
    """``where(bool(c), t, f)`` — models SEL and predicated writeback."""
    if isinstance(c, Unknown):
        return c
    if isinstance(c, Const):
        return t if c.value else f
    if t == f:
        return t
    bad = _unknown_in((t, f))
    if bad is not None:
        return bad
    return Op("ite", (c, t, f))


def negate(e: Expr) -> Expr:
    """Logical negation, pushed into comparisons."""
    if isinstance(e, Unknown):
        return e
    if isinstance(e, Const):
        return Const(0.0 if e.value else 1.0)
    if isinstance(e, Op):
        if e.op in _NEGATED_CMP:
            return Op(_NEGATED_CMP[e.op], e.args)
        if e.op == "not":
            return e.args[0]
    return Op("not", (e,))


def unary(op: str, a: Expr) -> Expr:
    if isinstance(a, Unknown):
        return a
    if isinstance(a, Const) and op in ("frcp", "not"):
        return Const(_fold(op, [a.value]))
    return Op(op, (a,))


def warpsum(a: Expr) -> Expr:
    """REDUX: sum over lanes, broadcast to the warp (opaque)."""
    if isinstance(a, Unknown):
        return a
    return Op("warpsum", (a,))


# -- rewriting -----------------------------------------------------------


def rewrite(e: Expr, fn) -> Expr:
    """Bottom-up rewrite through the normalizing constructors.

    ``fn(node)`` is applied to each *leaf-level* node after its children
    have been rewritten; returning the node unchanged is the common
    case.  Interior ``Op`` nodes are rebuilt via the smart constructors
    so the result stays in normal form.
    """
    if isinstance(e, Op):
        args = [rewrite(a, fn) for a in e.args]
        if e.op == "add":
            return fn(add(*args))
        if e.op == "mul":
            return fn(mul(*args))
        if e.op == "ite":
            return fn(ite(args[0], args[1], args[2]))
        if e.op == "not":
            return fn(negate(args[0]))
        if e.op in ("warpsum", "frcp"):
            built = unary(e.op, args[0]) if e.op == "frcp" else warpsum(args[0])
            return fn(built)
        if len(args) == 2 and e.op in _NEGATED_CMP:
            return fn(cmp(e.op, args[0], args[1]))
        if len(args) == 2:
            return fn(op2(e.op, args[0], args[1]))
        return fn(Op(e.op, tuple(args)))
    if isinstance(e, GLoad):
        return fn(GLoad(rewrite(e.addr, fn)))
    if isinstance(e, SLoad):
        return fn(SLoad(
            e.family,
            rewrite(e.addr, fn),
            tuple(
                (rewrite(a, fn), rewrite(v, fn)) for a, v in e.writes
            ),
        ))
    return fn(e)


def subst_loop(e: Expr, loop: str, repl: Expr) -> Expr:
    """Replace ``LoopIdx(loop)`` with ``repl`` and renormalize."""

    def fn(node: Expr) -> Expr:
        if isinstance(node, LoopIdx) and node.loop == loop:
            return repl
        return node

    return rewrite(e, fn)


def contains_marker(e: Expr) -> bool:
    found = False

    def fn(node: Expr) -> Expr:
        nonlocal found
        if isinstance(node, Marker):
            found = True
        return node

    rewrite(e, fn)
    return found


def first_unknown(e: Expr) -> Unknown | None:
    """The first ``Unknown`` node in ``e`` (Unknowns absorb, so it is
    usually ``e`` itself), or ``None``."""
    if isinstance(e, Unknown):
        return e
    hit: list[Unknown] = []

    def fn(node: Expr) -> Expr:
        if isinstance(node, Unknown) and not hit:
            hit.append(node)
        return node

    rewrite(e, fn)
    return hit[0] if hit else None


# -- display -------------------------------------------------------------


def stable_repr(e: Expr) -> str:
    """Deterministic, serializer-independent text form."""
    if isinstance(e, Const):
        v = e.value
        return str(int(v)) if v == int(v) else repr(v)
    if isinstance(e, Sym):
        return e.name.lower()
    if isinstance(e, LoopIdx):
        return f"i[{e.loop}]"
    if isinstance(e, Trip):
        return f"trip[{e.loop}]"
    if isinstance(e, RecPhi):
        return f"rec[{e.loop}#{e.slot}]"
    if isinstance(e, RecExit):
        return f"recout[{e.loop}#{e.slot}]"
    if isinstance(e, Marker):
        return f"<marker:{e.tag}>"
    if isinstance(e, GLoad):
        return f"gmem[{stable_repr(e.addr)}]"
    if isinstance(e, SLoad):
        w = ",".join(
            f"{stable_repr(a)}:={stable_repr(v)}" for a, v in e.writes
        )
        return f"smem<{e.family}>[{stable_repr(e.addr)} | {w}]"
    if isinstance(e, Op):
        inner = " ".join(stable_repr(a) for a in e.args)
        return f"({e.op} {inner})"
    assert isinstance(e, Unknown)
    return f"<unknown:{e.reason}>"


def digest(e: Expr) -> str:
    """Short stable digest of an expression (for reports/telemetry)."""
    return hashlib.sha256(stable_repr(e).encode()).hexdigest()[:12]
