"""Generic dataflow analyses over the verifier's CFG/event graphs.

``framework`` is the reusable core: lattices, transfer functions and a
worklist solver, direction-agnostic and checked under strict mypy.
``hb`` builds the happens-before ordering engine on top of it: an
iteration-shift event graph whose min-plus fixpoint classifies every
cross-stage SMEM access pair as ordered, racy or phase-disjoint.
"""

from repro.analysis.dataflow.framework import (
    DataflowProblem,
    Direction,
    MeetSetLattice,
    MinShiftLattice,
    dominators,
    solve,
)
from repro.analysis.dataflow.hb import (
    AccessInfo,
    HBAnalysis,
    PairVerdict,
    analyze_hb,
)

__all__ = [
    "AccessInfo",
    "DataflowProblem",
    "Direction",
    "HBAnalysis",
    "MeetSetLattice",
    "MinShiftLattice",
    "PairVerdict",
    "analyze_hb",
    "dominators",
    "solve",
]
