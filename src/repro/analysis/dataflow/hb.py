"""Happens-before ordering engine over the stage-partitioned CFG.

The engine abstracts a pipelined kernel into an *event graph*: one node
per synchronization or SMEM-access instruction, and directed edges
labelled with an **iteration shift** δ.  An edge ``u →δ→ v`` claims

    the i-th dynamic occurrence of ``u`` happens-before the
    (i+δ)-th dynamic occurrence of ``v``, for every i

where an occurrence of a site inside a loop is one loop iteration (all
warps of the stage), and a site outside any loop occurs once.  Edge
sources:

* **program order** (δ=0) between sites of one stage whose blocks
  execute exactly once per iteration (they dominate the loop latch),
  plus a δ=1 backedge closing each loop;
* **arrive/wait barriers**: with expected count E per generation and
  initial credit C (C a multiple of E), every arrive site
  happens-before every wait site at δ = C/E — the n-th wait passes only
  once ``initial_credit + arrivals ≥ n·expected``
  (:class:`repro.fexec.barriers.ArriveWaitBarrier`), which needs at
  least one gen-(n−1−C/E) arrival;
* **BAR.SYNC**: the k-th sync of every participating stage is one
  rendezvous — bidirectional δ=0 edges;
* **queues** (single-warp endpoint stages only): FIFO data edges
  push→pop, and *credit* edges pop→push at δ = ⌈K/c⌉ reflecting the
  timing model's bounded queue of K entries (c pushed per iteration);
* **TMA completion**: the transfer's implicit completion arrive
  (``attrs['barrier']``) enters through the ordinary barrier sites.

Min-plus shortest shifts d(u,v) — the strongest provable ordering —
are a :func:`repro.analysis.dataflow.framework.solve` fixpoint over
the :class:`MinShiftLattice`.  A cross-stage access pair (W writes,
T touches) is then unordered exactly at occurrence shifts
``s = j − i`` in the open window ``(−d(T,W), d(W,T))``; the pair races
iff some unordered shift can touch the same circular-buffer phase
(``s ≡ r (mod N)`` for N phases).  Known approximations are documented
in DESIGN.md §6e.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.cfg import (
    DISPATCH,
    NaturalLoop,
    ProgramView,
    build_view,
    section_loops,
)
from repro.analysis.dataflow.framework import (
    DataflowProblem,
    MinShiftLattice,
    dominators,
    solve,
)
from repro.analysis.sites import (
    BarrierSite,
    PipelineSites,
    QueueSite,
    SmemAccess,
    collect_sites,
)
from repro.core.specs import ThreadBlockSpec
from repro.isa.program import Program
from repro.telemetry.spans import span

INF = float("inf")

ORDERED = "ordered"
RACY = "racy"
PHASE_DISJOINT = "phase-disjoint"

#: Credit depth used for the attribution re-solve: would the pair be
#: ordered if queue back-pressure allowed only one iteration in flight?
_TIGHT_CREDIT = 1


@dataclass(frozen=True, order=True)
class Event:
    """One static site in the event graph, ordered by layout position."""

    stage: int
    block_ord: int
    instr_ord: int
    block: str


@dataclass(frozen=True)
class PhaseInfo:
    """Which circular-buffer phase an access touches.

    ``index`` is a fixed phase (a double-buffer copy, or an unrolled
    circular-buffer slot); with ``rotating`` the site cycles through
    phases as ``(occurrence + index) mod period`` — the contract for
    modulo-indexed N-stage circular buffers.  ``index is None`` means
    the phase is statically unknown: the access conservatively
    conflicts with every phase.
    """

    period: int
    index: int | None
    rotating: bool = False


@dataclass(frozen=True)
class AccessInfo:
    """One SMEM access lifted into the event graph."""

    event: Event
    stage: int
    block: str
    instr_repr: str
    is_write: bool
    group: str | None
    phase: PhaseInfo
    address: int | None
    #: Block is outside every section loop: at most one occurrence,
    #: so the only feasible occurrence shift against any other
    #: once-only site is 0.
    once: bool = False


@dataclass(frozen=True)
class PairVerdict:
    """Classification of one cross-stage access pair on one buffer."""

    group: str
    writer: AccessInfo
    other: AccessInfo
    verdict: str  # ORDERED | RACY | PHASE_DISJOINT
    rule: str | None  # WASP-S001/S004/S005 when racy
    d_wt: float  # min shift writer -> other
    d_tw: float  # min shift other -> writer


@dataclass
class HBAnalysis:
    """The engine's full output for one program."""

    accesses: list[AccessInfo] = field(default_factory=list)
    unresolved: list[AccessInfo] = field(default_factory=list)
    verdicts: list[PairVerdict] = field(default_factory=list)
    num_events: int = 0
    num_edges: int = 0

    def racy(self) -> list[PairVerdict]:
        return [v for v in self.verdicts if v.verdict == RACY]

    def racy_stage_pairs(self) -> set[tuple[str, frozenset[int]]]:
        """Buffer-group + unordered stage pair for every static race."""
        return {
            (v.group, frozenset((v.writer.stage, v.other.stage)))
            for v in self.racy()
        }

    def skipped_stage_groups(self) -> set[tuple[str | None, int]]:
        """(group, stage) of accesses excluded as unresolvable (S003)."""
        return {(a.group, a.stage) for a in self.unresolved}


class _EventGraph:
    """Shift-labelled event graph plus cached min-plus solves."""

    def __init__(self) -> None:
        self.nodes: list[Event] = []
        self._succs: dict[Event, list[tuple[Event, int]]] = {}
        self._lattice = MinShiftLattice()
        self._dists: dict[Event, dict[Event, float]] = {}
        self.num_edges = 0

    def add_node(self, event: Event) -> None:
        if event not in self._succs:
            self.nodes.append(event)
            self._succs[event] = []

    def add_edge(self, src: Event, dst: Event, shift: int) -> None:
        self.add_node(src)
        self.add_node(dst)
        self._succs[src].append((dst, shift))
        self.num_edges += 1

    def dist(self, src: Event, dst: Event) -> float:
        """Min total shift over all paths src → dst (+inf if none)."""
        if src not in self._dists:
            self._dists[src] = self._solve_from(src)
        return self._dists[src].get(dst, INF)

    def _solve_from(self, src: Event) -> dict[Event, float]:
        lattice = self._lattice
        succs: dict[Event, tuple[Event, ...]] = {
            n: tuple(dst for dst, _ in self._succs[n]) for n in self.nodes
        }
        shifts: dict[tuple[Event, Event], int] = {}
        for node, out in self._succs.items():
            for dst, shift in out:
                key = (node, dst)
                if key not in shifts or shift < shifts[key]:
                    shifts[key] = shift

        def transfer(u: Event, v: Event, value: float) -> float:
            return lattice.add(value, shifts[(u, v)])

        problem: DataflowProblem[Event, float] = DataflowProblem(
            nodes=tuple(self.nodes),
            successors=succs,
            bottom=lattice.bottom,
            join=lattice.join,
            leq=lattice.leq,
            transfer=transfer,
            initial={src: 0.0},
        )
        return solve(problem)


def analyze_program(program: Program) -> HBAnalysis:
    """Convenience entry: build the view/sites and run the engine."""
    view = build_view(program)
    sites = collect_sites(view)
    spec = program.tb_spec if isinstance(
        program.tb_spec, ThreadBlockSpec
    ) else None
    return analyze_hb(view, sites, spec)


def analyze_hb(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec | None,
) -> HBAnalysis:
    """Run the happens-before engine and classify every access pair."""
    with span("verifier", "hb-solve"):
        return _analyze(view, sites, spec)


def _analyze(
    view: ProgramView,
    sites: PipelineSites,
    spec: ThreadBlockSpec | None,
) -> HBAnalysis:
    builder = _GraphBuilder(view, sites, spec)
    analysis = HBAnalysis()
    analysis.accesses = builder.accesses
    analysis.unresolved = [
        a for a in builder.accesses if a.group is None
    ]
    graph = builder.build()
    analysis.num_events = len(graph.nodes)
    analysis.num_edges = graph.num_edges
    tight: _EventGraph | None = None

    by_group: dict[str, list[AccessInfo]] = {}
    for access in builder.accesses:
        if access.group is not None and access.stage != DISPATCH:
            by_group.setdefault(access.group, []).append(access)

    for group in sorted(by_group):
        accesses = sorted(by_group[group], key=lambda a: a.event)
        for writer in accesses:
            if not writer.is_write:
                continue
            for other in accesses:
                if other.stage == writer.stage:
                    continue
                d_wt = graph.dist(writer.event, other.event)
                d_tw = graph.dist(other.event, writer.event)
                residue = _conflict_residue(writer.phase, other.phase)
                if residue is None:
                    verdict, rule = PHASE_DISJOINT, None
                elif writer.once and other.once:
                    # Both sites are straight-line (at most one
                    # occurrence each): shift 0 is the only feasible
                    # pairing, so the open-window sweep over all
                    # integer shifts would over-report.
                    if not _residue_matches(0, residue):
                        verdict, rule = PHASE_DISJOINT, None
                    elif _shift_unordered(0, d_wt, d_tw):
                        verdict, rule = RACY, "WASP-S001"
                    else:
                        verdict, rule = ORDERED, None
                elif not _window_hits(d_wt, d_tw, residue):
                    verdict, rule = ORDERED, None
                else:
                    verdict = RACY
                    if _shift_unordered(0, d_wt, d_tw) and (
                        _residue_matches(0, residue)
                    ):
                        rule = "WASP-S001"
                    else:
                        if tight is None:
                            tight = builder.build(
                                credit_depth=_TIGHT_CREDIT
                            )
                        t_wt = tight.dist(writer.event, other.event)
                        t_tw = tight.dist(other.event, writer.event)
                        if not _window_hits(t_wt, t_tw, residue):
                            rule = "WASP-S005"
                        else:
                            rule = "WASP-S004"
                analysis.verdicts.append(PairVerdict(
                    group=group,
                    writer=writer,
                    other=other,
                    verdict=verdict,
                    rule=rule,
                    d_wt=d_wt,
                    d_tw=d_tw,
                ))
    return analysis


# -- shift-window arithmetic ------------------------------------------


def _shift_unordered(s: int, d_wt: float, d_tw: float) -> bool:
    """Is occurrence shift ``s`` inside the unordered open window?"""
    return -d_tw < s < d_wt


def _residue_matches(
    s: int, residue: tuple[int, int]
) -> bool:
    period, rem = residue
    return s % period == rem


def _window_hits(
    d_wt: float, d_tw: float, residue: tuple[int, int]
) -> bool:
    """Does any conflicting shift fall inside the unordered window?

    The window is the open interval (−d_tw, d_wt); conflicting shifts
    are ``s ≡ rem (mod period)``.
    """
    period, rem = residue
    if d_tw == INF or d_wt == INF:
        # A half-open (or fully open) window contains arbitrarily
        # large |s|, so every residue class hits it.
        return True
    # Finite: integers s with 1 - d_tw <= s <= d_wt - 1.
    lo = 1 - int(d_tw)
    hi = int(d_wt) - 1
    if lo > hi:
        return False
    s = lo + ((rem - lo) % period)  # smallest s >= lo in the class
    return s <= hi


def _conflict_residue(
    a: PhaseInfo, b: PhaseInfo
) -> tuple[int, int] | None:
    """Shifts ``s = occ(b) − occ(a)`` at which the phases coincide.

    Returns ``(period, remainder)`` — conflicting shifts are
    ``s ≡ remainder (mod period)`` — or ``None`` when the two sites
    can never touch the same phase.  Unknown or mismatched phase
    schemes conservatively conflict at every shift.
    """
    if a.index is None or b.index is None:
        return (1, 0)
    if a.rotating or b.rotating:
        if a.rotating and b.rotating and a.period == b.period:
            # (i + a.index) ≡ (j + b.index) (mod N)  ⇔
            # s = j − i ≡ a.index − b.index (mod N)
            return (a.period, (a.index - b.index) % a.period)
        return (1, 0)
    if a.index == b.index:
        return (1, 0)
    return None


# -- event-graph construction -----------------------------------------


class _GraphBuilder:
    """Builds the shift-labelled event graph from one program view."""

    def __init__(
        self,
        view: ProgramView,
        sites: PipelineSites,
        spec: ThreadBlockSpec | None,
    ) -> None:
        self.view = view
        self.sites = sites
        self.spec = spec
        # Layout position of every instruction in a reachable block.
        self._pos: dict[int, Event] = {}
        self._block_ord: dict[str, int] = {}
        self._stage_blocks: dict[int, list[str]] = {}
        ord_counter = 0
        for stage in sorted(view.sections):
            labels: list[str] = []
            for block in view.reachable_blocks(stage):
                self._block_ord[block.label] = ord_counter
                labels.append(block.label)
                for idx, instr in enumerate(block.instructions):
                    self._pos[id(instr)] = Event(
                        stage=stage,
                        block_ord=ord_counter,
                        instr_ord=idx,
                        block=block.label,
                    )
                ord_counter += 1
            self._stage_blocks[stage] = labels
        self._doms = self._section_dominators()
        self._loops = {
            stage: _outermost_loops(section_loops(view, stage))
            for stage in view.sections
        }
        self._aligned = self._aligned_blocks()
        self.accesses = self._collect_accesses()
        self._barrier_events: dict[str, list[BarrierSite]] = {
            "arrive": [], "wait": [], "sync": [],
        }
        self._queue_events: dict[str, list[QueueSite]] = {
            "push": [], "pop": [],
        }
        for bsite in self.sites.barrier_sites:
            if id(bsite.instr) in self._pos:
                self._barrier_events[bsite.kind].append(bsite)
        for qsite in self.sites.queue_sites:
            if id(qsite.instr) in self._pos:
                kind = "push" if qsite.is_push else "pop"
                self._queue_events[kind].append(qsite)

    # -- structural facts ---------------------------------------------

    def _section_dominators(self) -> dict[str, frozenset[str]]:
        doms: dict[str, frozenset[str]] = {}
        for stage, labels in self._stage_blocks.items():
            if not labels:
                continue
            in_section = set(labels)
            succs = {
                label: tuple(
                    s for s in self.view.successors.get(label, ())
                    if s in in_section
                )
                for label in labels
            }
            result = dominators(labels[0], tuple(labels), succs)
            doms.update(result)
        return doms

    def _aligned_blocks(self) -> dict[str, NaturalLoop | None]:
        """Block -> its loop when the block runs once per iteration.

        Blocks outside every loop map to ``None`` (they execute at most
        once); guarded blocks — conditionally executed inside a loop,
        or part of a nested inner loop — are absent from the map and
        get no cross-block program-order edges.
        """
        aligned: dict[str, NaturalLoop | None] = {}
        for stage, labels in self._stage_blocks.items():
            loops = self._loops[stage]
            nested = self._nested_bodies(stage)
            in_loop: dict[str, NaturalLoop] = {}
            for loop in loops:
                for label in loop.body:
                    in_loop[label] = loop
            for label in labels:
                loop = in_loop.get(label)
                if loop is None:
                    aligned[label] = None
                    continue
                if label in nested:
                    continue  # inner-loop block: occurrence count skews
                latch_doms = self._doms.get(loop.body[-1], frozenset())
                if label in latch_doms:
                    aligned[label] = loop
        return aligned

    def _nested_bodies(self, stage: int) -> set[str]:
        outer = {
            label for loop in self._loops[stage] for label in loop.body
        }
        nested: set[str] = set()
        for loop in section_loops(self.view, stage):
            body = set(loop.body)
            if body <= outer and not any(
                body == set(o.body) for o in self._loops[stage]
            ):
                nested.update(body)
        return nested

    # -- event collection ---------------------------------------------

    def _collect_accesses(self) -> list[AccessInfo]:
        buffers = self.view.program.smem_buffers
        looped = {
            stage: {
                label for loop in loops for label in loop.body
            }
            for stage, loops in self._loops.items()
        }
        accesses: list[AccessInfo] = []
        for site in self.sites.smem_accesses:
            event = self._pos.get(id(site.instr))
            if event is None:
                continue  # unreachable block
            accesses.append(AccessInfo(
                event=event,
                stage=site.stage,
                block=site.block,
                instr_repr=repr(site.instr),
                is_write=site.is_write,
                group=site.buffer,
                phase=_resolve_phase(site, buffers),
                address=site.address,
                once=site.block not in looped.get(site.stage, set()),
            ))
        return accesses

    def _event_of(self, instr_id: int) -> Event:
        return self._pos[instr_id]

    def _chain_eligible(self, event: Event) -> bool:
        """May ``event`` have cross-block program-order edges out?"""
        return event.block in self._aligned

    # -- graph assembly ------------------------------------------------

    def build(self, credit_depth: int | None = None) -> _EventGraph:
        graph = _EventGraph()
        interesting = self._interesting_events()
        for event in interesting:
            graph.add_node(event)
        self._add_program_order(graph, interesting)
        self._add_barrier_edges(graph)
        self._add_sync_edges(graph)
        self._add_queue_edges(graph, credit_depth)
        return graph

    def _interesting_events(self) -> list[Event]:
        ids: set[Event] = {a.event for a in self.accesses}
        for bsites in self._barrier_events.values():
            for bsite in bsites:
                ids.add(self._event_of(id(bsite.instr)))
        for qsites in self._queue_events.values():
            for qsite in qsites:
                ids.add(self._event_of(id(qsite.instr)))
        return sorted(ids)

    def _add_program_order(
        self, graph: _EventGraph, events: list[Event]
    ) -> None:
        by_stage: dict[int, list[Event]] = {}
        for event in events:
            by_stage.setdefault(event.stage, []).append(event)
        for stage, stage_events in sorted(by_stage.items()):
            stage_events.sort()
            # Same-block chains are always sound (same execution
            # counts, instruction order).
            by_block: dict[str, list[Event]] = {}
            for event in stage_events:
                by_block.setdefault(event.block, []).append(event)
            for chain in by_block.values():
                for u, v in zip(chain, chain[1:]):
                    graph.add_edge(u, v, 0)
            # Cross-block: consecutive chain-eligible events.  An edge
            # u →0→ v claims u@i hb v@i, which needs u to execute at
            # least as often and earlier — guaranteed for latch
            # dominators of the same/earlier loop, and for
            # once-blocks dominating the destination.
            spine = [e for e in stage_events
                     if self._chain_eligible(e)]
            for u, v in zip(spine, spine[1:]):
                if u.block == v.block:
                    continue
                u_loop = self._aligned.get(u.block)
                if u_loop is None:
                    u_doms_v = u.block in self._doms.get(
                        v.block, frozenset()
                    )
                    if not u_doms_v:
                        continue
                graph.add_edge(u, v, 0)
            # Guarded events (inner-loop or conditional sites) are
            # bracketed at outer-iteration granularity: every one of
            # their executions inside iteration i falls after the
            # nearest preceding spine event's i-th occurrence and
            # before the nearest following spine event's i-th
            # occurrence — and, inside a loop, before anything in
            # iteration i+1.
            in_loop: dict[str, NaturalLoop] = {
                label: loop
                for loop in self._loops[stage]
                for label in loop.body
            }
            for event in stage_events:
                if self._chain_eligible(event):
                    continue
                prev = [e for e in spine if e < event]
                if prev:
                    u = prev[-1]
                    u_loop = self._aligned.get(u.block)
                    if u_loop is not None or u.block in self._doms.get(
                        event.block, frozenset()
                    ):
                        graph.add_edge(u, event, 0)
                following = [e for e in spine if event < e]
                if following:
                    graph.add_edge(event, following[0], 0)
                loop = in_loop.get(event.block)
                if loop is not None:
                    loop_spine = [
                        e for e in spine
                        if self._aligned.get(e.block) == loop
                    ]
                    if loop_spine:
                        graph.add_edge(event, loop_spine[0], 1)
            # Loop backedges: last aligned event → first, one
            # iteration later.
            by_loop: dict[NaturalLoop, list[Event]] = {}
            for event in stage_events:
                loop = self._aligned.get(event.block)
                if loop is not None:
                    by_loop.setdefault(loop, []).append(event)
            for loop_events in by_loop.values():
                loop_events.sort()
                graph.add_edge(loop_events[-1], loop_events[0], 1)

    def _barrier_delta(self, barrier_id: str) -> int | None:
        """δ for arrive→wait edges, or None when inexpressible.

        Requires the initial credit to be a whole number of
        generations (C % E == 0): with partial credit the n-th wait
        can pass on a strict subset of a generation's arrivals, so no
        per-site happens-before edge exists.
        """
        expected = 1
        initial = 0
        if self.spec is not None:
            expected = self.spec.barrier_expected.get(barrier_id, 1)
            initial = self.spec.barrier_initial.get(barrier_id, 0)
        if expected <= 0 or initial % expected != 0:
            return None
        return initial // expected

    def _add_barrier_edges(self, graph: _EventGraph) -> None:
        by_id: dict[str, tuple[list[BarrierSite], list[BarrierSite]]]
        by_id = {}
        for bsite in self._barrier_events["arrive"]:
            by_id.setdefault(bsite.barrier_id, ([], []))[0].append(bsite)
        for bsite in self._barrier_events["wait"]:
            by_id.setdefault(bsite.barrier_id, ([], []))[1].append(bsite)
        for barrier_id in sorted(by_id):
            arrives, waits = by_id[barrier_id]
            if not arrives or not waits:
                continue
            # Generation counting needs every arrive site to fire
            # exactly once per iteration (or once ever): a guarded
            # arrive breaks the cumulative-threshold argument.
            if not all(
                self._chain_eligible(self._event_of(id(a.instr)))
                for a in arrives
            ):
                continue
            # The per-site edge arrive@i hb wait@(i+δ) also needs the
            # arrivals of one iteration to make exactly one generation
            # (Σ site warps == expected).  An over-subscribed barrier
            # — e.g. a ring slot credited from an extra site — reaches
            # the wait threshold early, so no per-site edge holds;
            # dropping them lets the window analysis surface the
            # over-credited accesses as racy.
            if (
                self.spec is not None
                and barrier_id in self.spec.barrier_expected
            ):
                per_iter = 0
                for a in arrives:
                    if not 0 <= a.stage < len(self.spec.warps_per_stage):
                        per_iter = -1
                        break
                    per_iter += len(self.spec.warps_per_stage[a.stage])
                if per_iter != self.spec.barrier_expected[barrier_id]:
                    continue
            delta = self._barrier_delta(barrier_id)
            if delta is None:
                continue
            for arrive in arrives:
                for wait in waits:
                    # A guarded wait's n-th execution may be behind
                    # its iteration index, needing fewer arrivals
                    # than the edge claims — skip it.
                    wait_event = self._event_of(id(wait.instr))
                    if not self._chain_eligible(wait_event):
                        continue
                    graph.add_edge(
                        self._event_of(id(arrive.instr)),
                        wait_event,
                        delta,
                    )

    def _add_sync_edges(self, graph: _EventGraph) -> None:
        by_id: dict[str, dict[int, list[Event]]] = {}
        guarded_ids: set[str] = set()
        for bsite in self._barrier_events["sync"]:
            event = self._event_of(id(bsite.instr))
            if not self._chain_eligible(event):
                guarded_ids.add(bsite.barrier_id)
                continue
            by_id.setdefault(bsite.barrier_id, {}).setdefault(
                bsite.stage, []
            ).append(event)
        for barrier_id in sorted(by_id):
            if barrier_id in guarded_ids:
                continue  # phase counting would skew
            per_stage = by_id[barrier_id]
            counts = {len(evts) for evts in per_stage.values()}
            if len(per_stage) < 2 or len(counts) != 1:
                continue
            stages = sorted(per_stage)
            for stage_events in per_stage.values():
                stage_events.sort()
            count = counts.pop()
            for k in range(count):
                kth = [per_stage[s][k] for s in stages]
                for a in kth:
                    for b in kth:
                        if a is not b:
                            graph.add_edge(a, b, 0)

    def _add_queue_edges(
        self, graph: _EventGraph, credit_depth: int | None
    ) -> None:
        """FIFO data and capacity-credit edges, single-warp lanes only.

        Queues are per-(queue, stage-warp) lanes, so their edges order
        only same-lane occurrences; they are sound as all-warp claims
        exactly when both endpoint stages run one warp.
        """
        if self.spec is None:
            return
        by_queue: dict[int, tuple[list[QueueSite], list[QueueSite]]] = {}
        for qsite in self._queue_events["push"]:
            by_queue.setdefault(qsite.queue_id, ([], []))[0].append(qsite)
        for qsite in self._queue_events["pop"]:
            by_queue.setdefault(qsite.queue_id, ([], []))[1].append(qsite)
        for queue_id in sorted(by_queue):
            pushes, pops = by_queue[queue_id]
            if not pushes or not pops:
                continue
            if any(s.bulk for s in pushes + pops):
                continue  # data-dependent entry counts
            push_stages = {s.stage for s in pushes}
            pop_stages = {s.stage for s in pops}
            if len(push_stages) != 1 or len(pop_stages) != 1:
                continue  # Q001/Q002 territory
            sp, sc = push_stages.pop(), pop_stages.pop()
            if sp < 0 or sc < 0:
                continue
            if max(sp, sc) >= self.spec.num_stages:
                continue  # R006 territory: stage without a spec slot
            if len(self.spec.warps_in_stage(sp)) != 1 or (
                len(self.spec.warps_in_stage(sc)) != 1
            ):
                continue
            push_events = sorted(
                self._event_of(id(s.instr)) for s in pushes
            )
            pop_events = sorted(
                self._event_of(id(s.instr)) for s in pops
            )
            if len(push_events) != len(pop_events):
                continue  # Q004 territory: unbalanced per iteration
            if not all(
                self._chain_eligible(e)
                for e in push_events + pop_events
            ):
                continue  # guarded endpoint: occurrence counts skew
            c = len(push_events)
            capacity = credit_depth if credit_depth is not None else (
                self._queue_capacity(queue_id)
            )
            for k, push in enumerate(push_events):
                for m, pop in enumerate(pop_events):
                    # FIFO: entry i·c+k is popped at the consumer's
                    # occurrence i (site m=k), or i+1 for earlier
                    # pop sites.
                    graph.add_edge(push, pop, 0 if k <= m else 1)
                    # Credit: pushing entry (j+δ)·c+k needs
                    # (j+δ)c+k+1−K pops, i.e. the consumer past
                    # occurrence j of site m once δc ≥ K+m−k.
                    delta = -(-(capacity + m - k) // c)  # ceil div
                    graph.add_edge(pop, push, max(delta, 0))

    def _queue_capacity(self, queue_id: int) -> int:
        assert self.spec is not None
        try:
            queue = self.spec.queue_by_id(queue_id)
        except Exception:
            return 1
        return max(1, queue.size)


def _outermost_loops(loops: list[NaturalLoop]) -> list[NaturalLoop]:
    """Drop loops properly contained in another loop's body."""
    outer: list[NaturalLoop] = []
    for loop in loops:
        body = set(loop.body)
        if any(
            body < set(other.body) for other in loops if other != loop
        ):
            continue
        outer.append(loop)
    return outer


def _resolve_phase(
    site: SmemAccess, buffers: Mapping[str, tuple[int, int]]
) -> PhaseInfo:
    """Phase of one access within its buffer group.

    Order: an explicit ``smem_phase`` tag (with ``smem_phases`` for a
    rotating modulo-N schedule), then the physical ring-slot copy the
    address lands in, else unknown.  Ring copies follow the buffering
    pass's naming: slot 0 is the bare buffer, slot 1 is ``name__db``,
    slot k>=2 is ``name__db<k>``.
    """
    group = site.buffer
    copies: list[str] = []
    if group is not None and group in buffers:
        copies = [group]
        k = 1
        while True:
            partner = f"{group}__db" if k == 1 else f"{group}__db{k}"
            if partner not in buffers:
                break
            copies.append(partner)
            k += 1
    period = max(1, len(copies))

    attrs = site.instr.attrs
    tagged_phase = attrs.get("smem_phase")
    tagged_period = attrs.get("smem_phases")
    if isinstance(tagged_period, int) and tagged_period > 1:
        period = tagged_period
    if isinstance(tagged_phase, int):
        return PhaseInfo(
            period=period,
            index=tagged_phase % period,
            rotating=isinstance(tagged_period, int) and tagged_period > 1,
        )
    if site.address is not None and copies:
        for idx, name in enumerate(copies):
            base, words = buffers[name]
            if base <= site.address < base + words:
                return PhaseInfo(period=period, index=idx)
    if period == 1:
        return PhaseInfo(period=1, index=0)
    return PhaseInfo(period=period, index=None)
