"""Worklist dataflow framework: lattices, transfers, fixpoint solver.

A :class:`DataflowProblem` is a directed graph plus a join-semilattice
of facts and an *edge* transfer function.  The solver computes the
least fixpoint of

    value[n]  =  initial(n)  ⊔  ⊔ { transfer(u, n, value[u]) : u → n }

(edges reversed for :attr:`Direction.BACKWARD`) by chaotic iteration
with a FIFO worklist.  Edge transfers subsume the classic block-level
formulation — fold the source block's transfer into every outgoing
edge — and additionally express edge-weighted problems such as the
happens-before engine's min-plus shift propagation (:mod:`.hb`).

Termination requires the usual conditions: monotone transfers and a
lattice with no infinite ascending chains from the initial values.
The two stock lattices below guarantee both — :class:`MinShiftLattice`
clamps unbounded descent to ``-inf``, and :class:`MeetSetLattice`
intersects finite sets downward from an implicit universe.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generic, Hashable, Mapping, TypeVar

N = TypeVar("N", bound=Hashable)
V = TypeVar("V")
T = TypeVar("T", bound=Hashable)


class Direction(enum.Enum):
    """Which way facts flow relative to the graph's edges."""

    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass(frozen=True)
class MinShiftLattice:
    """Min-plus lattice over iteration shifts: ``float`` = int ∪ ±inf.

    ``join`` is ``min`` (smaller shift = stronger ordering claim) and
    the identity/bottom element is ``+inf`` ("no path").  ``add``
    implements the transfer arithmetic: summing edge shifts along a
    path, absorbing at ``±inf`` and clamping runaway descent (a
    negative cycle) to ``-inf`` so fixpoints always terminate.
    """

    clamp: int = 1 << 20

    def bottom(self) -> float:
        return float("inf")

    def join(self, a: float, b: float) -> float:
        return a if a <= b else b

    def leq(self, a: float, b: float) -> bool:
        """True when ``b`` already subsumes ``a`` (a ≥ b here)."""
        return a >= b

    def add(self, value: float, shift: float) -> float:
        if value == float("inf") or shift == float("inf"):
            return float("inf")
        total = value + shift
        if total < -self.clamp:
            return float("-inf")
        return total


@dataclass(frozen=True)
class MeetSetLattice(Generic[T]):
    """Intersection lattice over finite sets with an implicit universe.

    ``None`` is the top/identity element ("every fact holds", used for
    not-yet-visited predecessors in optimistic forward analyses such as
    definite assignment and dominators); joining intersects.
    """

    def bottom(self) -> frozenset[T] | None:
        return None

    def join(
        self, a: frozenset[T] | None, b: frozenset[T] | None
    ) -> frozenset[T] | None:
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def leq(
        self, a: frozenset[T] | None, b: frozenset[T] | None
    ) -> bool:
        """True when ``b`` already subsumes ``a`` (a ⊇ b here)."""
        if b is None:
            return a is None
        if a is None:
            return True
        return a >= b


@dataclass(frozen=True)
class DataflowProblem(Generic[N, V]):
    """One dataflow instance: graph, lattice, transfers, seeds."""

    nodes: tuple[N, ...]
    successors: Mapping[N, tuple[N, ...]]
    bottom: Callable[[], V]
    join: Callable[[V, V], V]
    leq: Callable[[V, V], bool]
    transfer: Callable[[N, N, V], V]
    initial: Mapping[N, V] = field(default_factory=dict)
    direction: Direction = Direction.FORWARD


def solve(problem: DataflowProblem[N, V]) -> dict[N, V]:
    """Least-fixpoint chaotic iteration over ``problem``.

    Returns the final fact at every node.  Nodes unreachable from any
    seeded initial value keep the lattice bottom.
    """
    edges: dict[N, list[N]] = {n: [] for n in problem.nodes}
    if problem.direction is Direction.FORWARD:
        for src, dsts in problem.successors.items():
            edges[src] = list(dsts)
    else:
        for src, dsts in problem.successors.items():
            for dst in dsts:
                edges[dst].append(src)

    values: dict[N, V] = {n: problem.bottom() for n in problem.nodes}
    worklist: deque[N] = deque()
    queued: set[N] = set()
    for node, value in problem.initial.items():
        values[node] = problem.join(values[node], value)
        if node not in queued:
            worklist.append(node)
            queued.add(node)

    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        value = values[node]
        for succ in edges[node]:
            contribution = problem.transfer(node, succ, value)
            if problem.leq(contribution, values[succ]):
                continue
            values[succ] = problem.join(values[succ], contribution)
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)
    return values


def dominators(
    entry: N,
    nodes: tuple[N, ...],
    successors: Mapping[N, tuple[N, ...]],
) -> dict[N, frozenset[N]]:
    """Dominator sets for every node reachable from ``entry``.

    Expressed as an instance of the framework: facts are "the set of
    nodes on every path from the entry", joined by intersection, with
    each edge contributing its destination.  Nodes unreachable from
    ``entry`` map to the empty set.
    """
    lattice: MeetSetLattice[N] = MeetSetLattice()

    def transfer(
        src: N, dst: N, value: frozenset[N] | None
    ) -> frozenset[N] | None:
        if value is None:
            return None
        return value | {dst}

    problem = DataflowProblem(
        nodes=nodes,
        successors=successors,
        bottom=lattice.bottom,
        join=lattice.join,
        leq=lattice.leq,
        transfer=transfer,
        initial={entry: frozenset({entry})},
    )
    solution = solve(problem)
    return {
        node: value if value is not None else frozenset()
        for node, value in solution.items()
    }
