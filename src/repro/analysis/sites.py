"""Site collection: where queues, barriers and SMEM are touched.

One linear walk over the reachable blocks of each stage section gathers
everything the protocol passes need: queue push/pop sites (including
bulk pushes by WASP-TMA configuration instructions, whose entry count is
data-dependent), barrier arrive/wait/sync sites (including the implicit
arrive a ``TMA.TILE`` performs on completion via ``attrs['barrier']``),
and shared-memory accesses with their target buffer resolved statically
where possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfg import ProgramView
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import Immediate, QueueRef

_TMA_OPCODES = (Opcode.TMA_TILE, Opcode.TMA_STREAM, Opcode.TMA_GATHER)

#: Source-operand position of the SMEM address per opcode.
_SMEM_ADDR_POS = {
    Opcode.LDS: 0,
    Opcode.STS: 0,
    Opcode.LDGSTS: 1,
    Opcode.TMA_TILE: 1,
}


@dataclass(frozen=True)
class QueueSite:
    """One static queue push or pop."""

    queue_id: int
    stage: int
    block: str
    instr: Instruction
    is_push: bool
    bulk: bool  # TMA configuration: pushes a data-dependent entry count


@dataclass(frozen=True)
class BarrierSite:
    """One static barrier operation (or implicit TMA completion arrive)."""

    barrier_id: str
    stage: int
    block: str
    instr: Instruction
    kind: str  # "arrive" | "wait" | "sync"


@dataclass(frozen=True)
class SmemAccess:
    """One static shared-memory access with its resolved target."""

    stage: int
    block: str
    instr: Instruction
    is_write: bool
    buffer: str | None       # resolved buffer name, None if unresolvable
    address: int | None      # statically known word address, if immediate


@dataclass
class PipelineSites:
    """Everything the protocol passes consume, from one walk."""

    queue_sites: list[QueueSite] = field(default_factory=list)
    barrier_sites: list[BarrierSite] = field(default_factory=list)
    smem_accesses: list[SmemAccess] = field(default_factory=list)

    # -- queue views -----------------------------------------------------

    def queue_ids(self) -> set[int]:
        return {s.queue_id for s in self.queue_sites}

    def pushes(self, queue_id: int) -> list[QueueSite]:
        return [s for s in self.queue_sites
                if s.queue_id == queue_id and s.is_push]

    def pops(self, queue_id: int) -> list[QueueSite]:
        return [s for s in self.queue_sites
                if s.queue_id == queue_id and not s.is_push]

    # -- barrier views ---------------------------------------------------

    def barrier_ids(self, kind: str | None = None) -> set[str]:
        return {
            s.barrier_id for s in self.barrier_sites
            if kind is None or s.kind == kind
        }

    def barrier_stages(self, barrier_id: str, kind: str) -> set[int]:
        return {
            s.stage for s in self.barrier_sites
            if s.barrier_id == barrier_id and s.kind == kind
        }

    def sync_ids_by_stage(self) -> dict[int, set[str]]:
        by_stage: dict[int, set[str]] = {}
        for site in self.barrier_sites:
            if site.kind == "sync":
                by_stage.setdefault(site.stage, set()).add(site.barrier_id)
        return by_stage


def collect_sites(view: ProgramView) -> PipelineSites:
    """Walk every reachable block once and gather all protocol sites."""
    sites = PipelineSites()
    buffers = view.program.smem_buffers
    for stage, section in view.sections.items():
        for block in section.blocks:
            if block.label not in view.reachable:
                continue
            for instr in block.instructions:
                _collect_queue_ops(sites, stage, block.label, instr)
                _collect_barrier_ops(sites, stage, block.label, instr)
                _collect_smem_access(
                    sites, stage, block.label, instr, buffers
                )
    return sites


def _collect_queue_ops(
    sites: PipelineSites, stage: int, block: str, instr: Instruction
) -> None:
    bulk = instr.opcode in _TMA_OPCODES
    if isinstance(instr.dst, QueueRef):
        sites.queue_sites.append(
            QueueSite(instr.dst.queue_id, stage, block, instr,
                      is_push=True, bulk=bulk)
        )
    for ref in instr.queue_pops():
        sites.queue_sites.append(
            QueueSite(ref.queue_id, stage, block, instr,
                      is_push=False, bulk=bulk)
        )


def _collect_barrier_ops(
    sites: PipelineSites, stage: int, block: str, instr: Instruction
) -> None:
    if instr.opcode is Opcode.BAR_ARRIVE:
        kind = "arrive"
    elif instr.opcode is Opcode.BAR_WAIT:
        kind = "wait"
    elif instr.opcode is Opcode.BAR_SYNC:
        kind = "sync"
    else:
        # TMA transfers arrive a barrier on completion (machine model).
        tma_barrier = instr.attrs.get("barrier")
        if instr.opcode in _TMA_OPCODES and tma_barrier:
            sites.barrier_sites.append(
                BarrierSite(str(tma_barrier), stage, block, instr, "arrive")
            )
        return
    assert instr.barrier_id is not None
    sites.barrier_sites.append(
        BarrierSite(instr.barrier_id, stage, block, instr, kind)
    )


def _collect_smem_access(
    sites: PipelineSites,
    stage: int,
    block: str,
    instr: Instruction,
    buffers: dict[str, tuple[int, int]],
) -> None:
    pos = _SMEM_ADDR_POS.get(instr.opcode)
    if pos is None:
        return
    info = instr.info
    is_write = info.writes_shared
    if not is_write and not info.reads_shared:
        return
    address: int | None = None
    operand = instr.srcs[pos] if pos < len(instr.srcs) else None
    if isinstance(operand, Immediate) and isinstance(operand.value, int):
        address = operand.value
    buffer = _resolve_buffer(instr, address, buffers)
    sites.smem_accesses.append(
        SmemAccess(stage, block, instr, is_write, buffer, address)
    )


def _resolve_buffer(
    instr: Instruction,
    address: int | None,
    buffers: dict[str, tuple[int, int]],
) -> str | None:
    """Which declared buffer an access targets, or ``None`` if unknown.

    Resolution order: the builder/compiler's ``smem_buffer`` attribute
    (survives double buffering — copy-B accesses keep their original
    buffer name, which conservatively groups both copies under one
    name), then an immediate address inside a declared buffer's range.
    Programs with SMEM but no declared buffers fall into a single
    anonymous region so cross-stage analysis still applies.
    """
    tagged = instr.attrs.get("smem_buffer")
    if isinstance(tagged, str) and tagged in buffers:
        return tagged
    if address is not None:
        for name, (base, words) in buffers.items():
            if base <= address < base + words:
                return name
        if not buffers:
            return "__smem__"
        return None
    if not buffers:
        return "__smem__"
    return None
