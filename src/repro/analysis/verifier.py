"""Static pipeline verifier: one entry point over the four passes.

``verify_program`` runs without executing anything: structural (CFG)
validation first, then — when the CFG is sound — the queue-protocol,
deadlock, SMEM-race and resource passes over the stage-partitioned
program view.  Programs without a :class:`ThreadBlockSpec` get the
single-stage subset (hygiene, bounds, resources, use-before-def).

``verify_or_raise`` is the compiler's opt-out post-pass: any
error-severity diagnostic raises :class:`repro.errors.VerificationError`
carrying the full report.
"""

from __future__ import annotations

from repro.analysis.cfg import build_view
from repro.analysis.deadlock import check_deadlock
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.queues import check_queues
from repro.analysis.resources import VerifyLimits, check_resources
from repro.analysis.sites import collect_sites
from repro.analysis.smem import check_smem
from repro.core.specs import ThreadBlockSpec
from repro.errors import VerificationError
from repro.isa.program import Program
from repro.telemetry.registry import TELEMETRY
from repro.telemetry.spans import span


def verify_program(
    program: Program,
    limits: VerifyLimits | None = None,
) -> DiagnosticReport:
    """Run every static-analysis pass over ``program``.

    Never raises on findings — the report carries them.  Structural
    breakage severe enough to invalidate the CFG (duplicate labels,
    unresolved branch targets) short-circuits the protocol passes,
    since stage partitioning would be meaningless.
    """
    with span("verifier", "verify"):
        limits = limits or VerifyLimits()
        report = DiagnosticReport()

        structural = program.structural_diagnostics()
        report.extend(structural)
        if any(d.rule in ("WASP-C001", "WASP-C002", "WASP-C004")
               for d in structural):
            return _finish(report)

        view = build_view(program)
        sites = collect_sites(view)
        spec = program.tb_spec if isinstance(
            program.tb_spec, ThreadBlockSpec
        ) else None

        report.extend(check_queues(view, sites, spec))
        report.extend(check_deadlock(view, sites, spec))
        report.extend(check_smem(view, sites, spec))
        report.extend(check_resources(view, spec, limits))
        return _finish(report)


def _finish(report: DiagnosticReport) -> DiagnosticReport:
    """Normalize (sort + dedup) and count rule firings."""
    report = report.normalized()
    if TELEMETRY.enabled:
        for diag in report:
            TELEMETRY.counter(
                "verifier_rule_firings_total",
                labels={"rule": diag.rule},
                help="Diagnostics emitted per static-verifier rule.",
            ).inc()
    return report


def verify_or_raise(
    program: Program,
    limits: VerifyLimits | None = None,
) -> DiagnosticReport:
    """Verify and raise :class:`VerificationError` on any error finding."""
    report = verify_program(program, limits)
    errors = report.errors
    if errors:
        raise VerificationError(
            f"{program.name!r} failed static pipeline verification "
            f"with {len(errors)} error(s); first: {errors[0].format()}",
            diagnostics=list(report),
        )
    return report


def structural_error(diag: Diagnostic) -> VerificationError:
    """A :class:`VerificationError` wrapping one structural diagnostic."""
    return VerificationError(diag.format(), diagnostics=[diag])
