"""The model's public face: predictions with explanations.

``predict_traces`` runs the coupled-dataflow walk plus the closed-form
bound report and assembles a :class:`Prediction`: predicted cycles and
steady-state throughput, the bottleneck stage, a human-readable
explanation chain walked over the stage→queue digraph, and a stall mix
in the PR 2 profiler's taxonomy.  ``predict_kernel`` adds the
WASP-vs-baseline view: it predicts both the unspecialized program on
the same hardware and the configured pipeline, yielding a predicted
speedup without a single simulated cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.perfmodel.bounds import (
    BoundReport,
    MemoryLevelMix,
    compute_bounds,
    compute_stage_work,
    queue_digraph,
)
from repro.analysis.perfmodel.dataflow import DataflowWalk
from repro.fexec.trace import KernelTrace
from repro.profiling.stalls import (
    StallCause,
    dominant_cause,
    dominant_stage,
    stall_mix,
)
from repro.sim.config import GPUConfig
from repro.sim.occupancy import Occupancy
from repro.telemetry.spans import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.configs import EvalConfig
    from repro.experiments.runner import TraceCache
    from repro.workloads.base import Kernel

#: Schema tag stamped into every serialized prediction.
PREDICTION_SCHEMA = "repro-perfmodel-prediction-v1"


@dataclass
class Prediction:
    """Execution-free performance estimate for one kernel+config."""

    kernel_name: str
    cycles: float
    #: Predicted instructions per cycle at steady state.
    throughput: float
    bottleneck_stage: int | None
    bottleneck_cause: str | None
    #: Explanation chain, outermost constraint first.
    explanation: list[str] = field(default_factory=list)
    #: Cause -> share of predicted stalled time (PR 2 taxonomy).
    stall_mix: dict[str, float] = field(default_factory=dict)
    #: (stage, cause name) -> predicted stalled cycles.
    stage_stalls: dict[tuple[int, str], float] = field(
        default_factory=dict
    )
    bounds: BoundReport = field(default_factory=BoundReport)
    #: Raw (stage, StallCause) stalls for mix comparison helpers.
    raw_stalls: dict[tuple[int, StallCause], float] = field(
        default_factory=dict
    )

    def to_json(self) -> dict[str, object]:
        return {
            "schema": PREDICTION_SCHEMA,
            "kernel": self.kernel_name,
            "cycles": round(self.cycles, 2),
            "throughput": round(self.throughput, 4),
            "bottleneck_stage": self.bottleneck_stage,
            "bottleneck_cause": self.bottleneck_cause,
            "explanation": list(self.explanation),
            "stall_mix": {
                cause: round(share, 4)
                for cause, share in sorted(self.stall_mix.items())
            },
            "bounds": self.bounds.to_json(),
        }


@dataclass
class KernelPrediction:
    """Baseline and pipelined predictions plus the predicted speedup."""

    kernel_name: str
    config_name: str
    predicted: Prediction
    baseline: Prediction
    used_specialized: bool

    @property
    def predicted_speedup(self) -> float:
        if self.predicted.cycles <= 0:
            return 1.0
        return self.baseline.cycles / self.predicted.cycles

    def to_json(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "config": self.config_name,
            "specialized": self.used_specialized,
            "predicted": self.predicted.to_json(),
            "baseline": self.baseline.to_json(),
            "predicted_speedup": round(self.predicted_speedup, 4),
        }


def predict_traces(
    traces: list[KernelTrace],
    gpu: GPUConfig,
    occupancy: Occupancy | None = None,
    kernel_name: str = "",
) -> Prediction:
    """Run the model over functional traces; no simulation involved."""
    with span("perfmodel", "dataflow_walk"):
        walk = DataflowWalk(gpu, traces, occupancy=occupancy)
        cycles = walk.run()

    stats = walk.memory.stats
    mix = MemoryLevelMix(
        l1_hits=stats.l1_hits,
        l2_hits=stats.l2_hits,
        dram_accesses=stats.dram_accesses,
    )
    traffic = walk.channel_stats()
    residency = {
        qid: agg.mean_residency for qid, agg in traffic.items()
    }
    channels = {qid: agg.channels for qid, agg in traffic.items()}
    work = compute_stage_work(traces, walk.smem_queue)
    with span("perfmodel", "bounds"):
        bounds = compute_bounds(
            work,
            gpu.service_rates(),
            walk.spec,
            level_mix=mix,
            queue_residency=residency,
            queue_channels=channels,
        )

    stage = dominant_stage(walk.stalls)
    cause = dominant_cause(walk.stalls, stage)
    total_issues = sum(walk.issues_by_stage.values())
    throughput = total_issues / cycles if cycles > 0 else 0.0

    explanation = _explain(walk, bounds, stage, cause, cycles)

    return Prediction(
        kernel_name=kernel_name or traces[0].kernel_name,
        cycles=cycles,
        throughput=throughput,
        bottleneck_stage=stage,
        bottleneck_cause=cause.value if cause is not None else None,
        explanation=explanation,
        stall_mix={
            c.value: share for c, share in stall_mix(walk.stalls).items()
        },
        stage_stalls={
            (s, c.value): v for (s, c), v in walk.stalls.items()
        },
        bounds=bounds,
        raw_stalls=dict(walk.stalls),
    )


def _explain(
    walk: DataflowWalk,
    bounds: BoundReport,
    stage: int | None,
    cause: StallCause | None,
    cycles: float,
) -> list[str]:
    """Build the explanation chain over the stage→queue digraph."""
    chain: list[str] = []
    binding = bounds.binding()
    if binding is not None:
        tightness = binding.cycles / cycles if cycles > 0 else 0.0
        chain.append(
            f"tightest closed-form bound: {binding.name} at "
            f"{binding.cycles:.0f} cycles ({binding.detail}); "
            f"model predicts {cycles:.0f}, so the bound accounts for "
            f"{tightness:.0%} of predicted time"
        )
    if stage is None or cause is None:
        chain.append(
            "no predicted stalls: the kernel issues back-to-back "
            "(issue-bound)"
        )
        return chain

    per_stage: dict[int, float] = {}
    for (s, _c), v in walk.stalls.items():
        per_stage[s] = per_stage.get(s, 0.0) + v
    stage_total = per_stage.get(stage, 0.0)
    chain.append(
        f"bottleneck stage {stage}: {stage_total:.0f} predicted stall "
        f"cycles, dominated by {cause.value}"
    )

    edges = queue_digraph(walk.spec)
    visited = {stage}
    current: int | None = stage
    current_cause: StallCause | None = cause
    for _hop in range(8):
        if current is None or current_cause is None:
            break
        if current_cause is StallCause.QUEUE_EMPTY:
            feeders = [
                (qid, src) for qid, src, dst in edges if dst == current
            ]
            if not feeders:
                chain.append(
                    f"stage {current} starves on queue data with no "
                    "producer edge in the spec"
                )
                break
            qid, producer = feeders[0]
            chain.append(
                f"stage {current} starves on queue {qid}; producer is "
                f"stage {producer}"
            )
            if producer in visited:
                chain.append(
                    "producer/consumer coupling is cyclic; stopping"
                )
                break
            visited.add(producer)
            current = producer
            current_cause = dominant_cause(walk.stalls, producer)
            if current_cause is None:
                chain.append(
                    f"stage {producer} has no predicted stalls: it is "
                    "issue/throughput-limited at the source"
                )
                break
        elif current_cause is StallCause.QUEUE_FULL:
            drains = [
                (qid, dst) for qid, src, dst in edges if src == current
            ]
            if not drains:
                chain.append(
                    f"stage {current} back-pressures on a queue with "
                    "no consumer edge in the spec"
                )
                break
            qid, consumer = drains[0]
            chain.append(
                f"stage {current} is back-pressured by queue {qid}; "
                f"consumer is stage {consumer}"
            )
            if consumer in visited:
                chain.append(
                    "producer/consumer coupling is cyclic; stopping"
                )
                break
            visited.add(consumer)
            current = consumer
            current_cause = dominant_cause(walk.stalls, consumer)
            if current_cause is None:
                chain.append(
                    f"stage {consumer} has no predicted stalls: it "
                    "drains as fast as it issues"
                )
                break
        elif current_cause is StallCause.SCOREBOARD:
            chain.append(_memory_story(walk, current))
            break
        elif current_cause is StallCause.MSHR:
            chain.append(
                f"stage {current} exhausts the per-warp "
                "outstanding-load limit "
                f"({walk.gpu.max_outstanding_loads_per_warp}): memory "
                "level parallelism, not bandwidth, is the cap"
            )
            break
        elif current_cause is StallCause.BARRIER_WAIT:
            chain.append(
                f"stage {current} waits on barrier arrivals "
                "(arrive/wait or thread-block sync coupling)"
            )
            break
        else:
            chain.append(
                f"stage {current} dominated by {current_cause.value}"
            )
            break
    return chain


def _memory_story(walk: DataflowWalk, stage: int) -> str:
    stats = walk.memory.stats
    total = stats.total_sectors
    if total <= 0:
        return (
            f"stage {stage} stalls on scoreboard dependences with no "
            "global traffic (compute chain latency)"
        )
    dram_frac = stats.dram_accesses / total
    elapsed = max(1.0, walk.cycles)
    dram_util = walk.memory.dram_utilization(elapsed)
    if dram_util >= 0.85:
        return (
            f"stage {stage} waits on loads; DRAM is "
            f"{dram_util:.0%} busy — bandwidth-bound "
            f"({stats.dram_accesses} of {total} sectors go to DRAM)"
        )
    level = "DRAM" if dram_frac > 0.05 else (
        "L2" if stats.l2_hits > 0 else "L1"
    )
    return (
        f"stage {stage} waits on loads; DRAM only {dram_util:.0%} "
        f"busy — exposed {level} latency, not bandwidth "
        f"({stats.l1_hits} L1 hits / {stats.l2_hits} L2 / "
        f"{stats.dram_accesses} DRAM)"
    )


def predict_kernel(
    kernel: "Kernel",
    config: "EvalConfig",
    cache: "TraceCache | None" = None,
) -> KernelPrediction:
    """Predict a kernel under an evaluation config, plus its baseline.

    Mirrors :func:`repro.experiments.runner.run_kernel`'s compile/trace
    choices (content-addressed cache, per-kernel opt-in) but decides
    specialization by *predicted* cycles — no simulation runs.
    """
    # Imported here: experiments imports sim/compiler; the perfmodel
    # must stay importable without the experiments layer.
    from repro.errors import CompilerError, ResourceError
    from repro.experiments.runner import (
        GLOBAL_CACHE,
        _compiler_options_for,
        _gpu_for,
    )

    store = cache if cache is not None else GLOBAL_CACHE
    gpu = _gpu_for(kernel, config)
    original = store.original(kernel)
    baseline = predict_traces(
        original.traces, gpu, kernel_name=kernel.name
    )

    predicted = baseline
    used_specialized = False
    options = _compiler_options_for(kernel, config)
    if config.compiler is not None and options is not None:
        try:
            compiled = store.specialized(kernel, options)
        except CompilerError:
            compiled = None
        if compiled is not None:
            try:
                specialized = predict_traces(
                    compiled.traces, gpu, kernel_name=kernel.name
                )
            except ResourceError:
                specialized = None
            if (
                specialized is not None
                and specialized.cycles < baseline.cycles
            ):
                predicted = specialized
                used_specialized = True

    return KernelPrediction(
        kernel_name=kernel.name,
        config_name=config.name,
        predicted=predicted,
        baseline=baseline,
        used_specialized=used_specialized,
    )
