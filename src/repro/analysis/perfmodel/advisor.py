"""Analytical pipeline-options advisor (``repro advise``).

Enumerates candidate pipeline configurations — queue depths, stage
splits, TMA offload on/off — and ranks them by *predicted* cycles from
the static performance model, without simulating any of them.  The
winning candidate becomes a suggestion only when its predicted gain
over the defaults clears :data:`SUGGESTION_MARGIN`; the margin absorbs
model error so small predicted wins inside the noise band never turn
into configuration churn.

With ``simulate=True`` (the CLI default) the advisor additionally
*verifies* its suggestion: the default and the suggested configuration
each get one simulator run, and a suggestion that simulates slower
than the defaults is withheld (reported as ``rejected_suggestion`` in
the artifact).  The model's documented blind spots — divergent gather
tails above all — can inflate a predicted gain, and the verification
gate is what makes "acting on a suggestion is never slower than the
defaults" a property the benchmark suite can assert on every registry
workload rather than a statistical hope.

Each kernel's row also carries the model's predicted-vs-simulated error
for the default configuration: one cheap simulation per kernel keeps
every advise artifact an implicit calibration sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.analysis.perfmodel.model import Prediction, predict_traces
from repro.core.compiler import WaspCompilerOptions
from repro.core.compiler.pipeline import options_delta
from repro.sim.config import GPUConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.configs import EvalConfig
    from repro.experiments.runner import TraceCache
    from repro.workloads.base import Kernel

#: JSON schema tag of the advise report artifact.
ADVICE_SCHEMA = "repro-advise-report-v1"

#: Minimum predicted relative gain before a non-default candidate is
#: suggested.  Sized against the calibrated model error (mean ~2%,
#: tail ~10% on the registry): small predicted wins inside the noise
#: band are not worth a configuration change, and suggesting only
#: clear wins keeps "never slower than the defaults when simulated"
#: true in practice.
SUGGESTION_MARGIN = 0.05

#: Queue depths enumerated per kernel (entries per warp channel).
QUEUE_DEPTHS = (8, 16, 32, 64)

#: ``max_stages`` splits enumerated per kernel.
STAGE_SPLITS = (2, 4, 16)


@dataclass
class Candidate:
    """One enumerated configuration with its prediction."""

    label: str
    options: WaspCompilerOptions
    rfq_size: int
    prediction: Prediction | None = None
    specialized: bool = False
    error: str = ""

    def to_json(
        self, default_options: WaspCompilerOptions
    ) -> dict[str, object]:
        data: dict[str, object] = {
            "label": self.label,
            "options_delta": options_delta(default_options, self.options),
            "rfq_size": self.rfq_size,
            "specialized": self.specialized,
        }
        if self.prediction is not None:
            data["predicted_cycles"] = round(self.prediction.cycles, 2)
        if self.error:
            data["error"] = self.error
        return data


@dataclass
class KernelAdvice:
    """Ranked candidates and the gated suggestion for one kernel."""

    kernel_name: str
    default_options: WaspCompilerOptions
    default_prediction: Prediction
    baseline_prediction: Prediction
    #: Ranked cheapest-first by predicted cycles.
    candidates: list[Candidate] = field(default_factory=list)
    suggestion: Candidate | None = None
    #: Simulated cycles of the default configuration (calibration).
    simulated_cycles: float | None = None
    #: Simulated cycles under the suggestion (the verification gate).
    simulated_suggested_cycles: float | None = None
    #: A candidate that cleared the margin analytically but simulated
    #: slower than the defaults — withheld, kept for transparency.
    rejected_suggestion: Candidate | None = None

    @property
    def default_cycles(self) -> float:
        return min(
            self.default_prediction.cycles, self.baseline_prediction.cycles
        )

    @property
    def predicted_gain(self) -> float:
        """Relative improvement of the suggestion over the defaults."""
        if self.suggestion is None or self.suggestion.prediction is None:
            return 0.0
        best = self.suggestion.prediction.cycles
        default = self.default_cycles
        if default <= 0:
            return 0.0
        return 1.0 - best / default

    @property
    def predicted_error(self) -> float | None:
        """|predicted - simulated| / simulated for the default config."""
        if self.simulated_cycles is None or self.simulated_cycles <= 0:
            return None
        return (
            abs(self.default_cycles - self.simulated_cycles)
            / self.simulated_cycles
        )

    def to_json(self) -> dict[str, object]:
        data: dict[str, object] = {
            "kernel": self.kernel_name,
            "default": {
                "options": self.default_options.to_json(),
                "predicted_cycles": round(self.default_cycles, 2),
                "bottleneck_stage": (
                    self.default_prediction.bottleneck_stage
                ),
                "bottleneck_cause": (
                    self.default_prediction.bottleneck_cause
                ),
                "explanation": list(self.default_prediction.explanation),
            },
            "candidates": [
                c.to_json(self.default_options) for c in self.candidates
            ],
            "suggestion": (
                self.suggestion.to_json(self.default_options)
                if self.suggestion is not None
                else None
            ),
            "predicted_gain": round(self.predicted_gain, 4),
        }
        if self.simulated_cycles is not None:
            data["simulated_cycles"] = round(self.simulated_cycles, 2)
            error = self.predicted_error
            data["predicted_error"] = (
                round(error, 4) if error is not None else None
            )
        if self.simulated_suggested_cycles is not None:
            data["simulated_suggested_cycles"] = round(
                self.simulated_suggested_cycles, 2
            )
        if self.rejected_suggestion is not None:
            data["rejected_suggestion"] = self.rejected_suggestion.to_json(
                self.default_options
            )
        return data


@dataclass
class AdviceReport:
    """The full ``repro advise`` artifact for one workload."""

    workload: str
    config_name: str
    kernels: list[KernelAdvice] = field(default_factory=list)

    def to_json(self) -> dict[str, object]:
        return {
            "schema": ADVICE_SCHEMA,
            "workload": self.workload,
            "config": self.config_name,
            "kernels": [k.to_json() for k in self.kernels],
        }


def enumerate_candidates(
    default: WaspCompilerOptions, gpu: GPUConfig
) -> list[Candidate]:
    """The candidate grid: queue depths, stage splits, TMA toggle.

    One axis varies at a time (the model is cheap but the grid is for
    explainability: each candidate's label names the single knob it
    turns).  The default configuration is always candidate zero.
    """
    candidates = [
        Candidate(
            label="default", options=default, rfq_size=gpu.rfq_size
        )
    ]
    # The simulator reads channel capacity from ``gpu.rfq_size`` for
    # both queue implementations (SMEM queues model the same protocol
    # with bandwidth overhead), so a depth candidate changes both the
    # compiler's queue_size and the mirrored hardware capacity.
    for depth in QUEUE_DEPTHS:
        if depth == default.queue_size:
            continue
        candidates.append(Candidate(
            label=f"queue_size={depth}",
            options=replace(default, queue_size=depth),
            rfq_size=depth,
        ))
    for stages in STAGE_SPLITS:
        if stages == default.max_stages:
            continue
        candidates.append(Candidate(
            label=f"max_stages={stages}",
            options=replace(default, max_stages=stages),
            rfq_size=gpu.rfq_size,
        ))
    if gpu.features.wasp_tma:
        toggled = not default.enable_tma_offload
        candidates.append(Candidate(
            label=f"enable_tma_offload={toggled}",
            options=replace(default, enable_tma_offload=toggled),
            rfq_size=gpu.rfq_size,
        ))
    return candidates


def advise_kernel(
    kernel: "Kernel",
    config: "EvalConfig",
    cache: "TraceCache | None" = None,
    margin: float = SUGGESTION_MARGIN,
    simulate: bool = True,
) -> KernelAdvice:
    """Rank candidate configurations for one kernel by predicted cycles."""
    from repro.errors import CompilerError, ResourceError
    from repro.experiments.runner import (
        GLOBAL_CACHE,
        _compiler_options_for,
        _gpu_for,
        run_kernel,
    )

    store = cache if cache is not None else GLOBAL_CACHE
    gpu = _gpu_for(kernel, config)
    default_options = _compiler_options_for(
        kernel, config
    ) or WaspCompilerOptions()

    original = store.original(kernel)
    baseline = predict_traces(
        original.traces, gpu, kernel_name=kernel.name
    )

    candidates = enumerate_candidates(default_options, gpu)
    default_prediction = baseline
    for candidate in candidates:
        cand_gpu = replace(gpu, rfq_size=candidate.rfq_size)
        try:
            entry = store.specialized(kernel, candidate.options)
        except CompilerError as exc:
            candidate.error = f"compile failed: {exc}"
            candidate.prediction = baseline
            continue
        if entry is None:
            # Does not specialize under these options: the kernel runs
            # unchanged, so the candidate predicts the baseline.
            candidate.prediction = baseline
            continue
        try:
            pipelined = predict_traces(
                entry.traces, cand_gpu, kernel_name=kernel.name
            )
        except (ResourceError, ValueError) as exc:
            candidate.error = f"model failed: {exc}"
            candidate.prediction = baseline
            continue
        # Per-kernel opt-in, applied analytically.
        if pipelined.cycles < baseline.cycles:
            candidate.prediction = pipelined
            candidate.specialized = True
        else:
            candidate.prediction = baseline
        if candidate.label == "default":
            default_prediction = pipelined

    candidates.sort(
        key=lambda c: (
            c.prediction.cycles if c.prediction else float("inf")
        )
    )

    advice = KernelAdvice(
        kernel_name=kernel.name,
        default_options=default_options,
        default_prediction=default_prediction,
        baseline_prediction=baseline,
        candidates=candidates,
    )

    best = candidates[0]
    if (
        best.label != "default"
        and best.prediction is not None
        and not best.error
        and advice.default_cycles > 0
        and (1.0 - best.prediction.cycles / advice.default_cycles)
        >= margin
    ):
        advice.suggestion = best

    if simulate:
        result = run_kernel(kernel, config, store)
        advice.simulated_cycles = result.cycles
        if advice.suggestion is not None:
            suggested = run_kernel(
                kernel, apply_suggestion(config, advice), store
            )
            advice.simulated_suggested_cycles = suggested.cycles
            if suggested.cycles > result.cycles:
                # The model over-promised (its documented blind spots
                # can inflate a gain): withhold the suggestion.
                advice.rejected_suggestion = advice.suggestion
                advice.suggestion = None
    return advice


def advise_workload(
    name: str,
    config: "EvalConfig",
    scale: float = 1.0,
    cache: "TraceCache | None" = None,
    margin: float = SUGGESTION_MARGIN,
    simulate: bool = True,
) -> AdviceReport:
    """Run the advisor over every kernel of one registry workload."""
    from repro.workloads import get_benchmark

    benchmark = get_benchmark(name, scale=scale)
    report = AdviceReport(workload=name, config_name=config.name)
    for kernel in benchmark.kernels:
        report.kernels.append(
            advise_kernel(
                kernel,
                config,
                cache=cache,
                margin=margin,
                simulate=simulate,
            )
        )
    return report


def apply_suggestion(
    config: "EvalConfig", advice: KernelAdvice
) -> "EvalConfig":
    """The config the suggestion describes (identity when none)."""
    if advice.suggestion is None:
        return config
    suggestion = advice.suggestion
    return replace(
        config,
        compiler=suggestion.options,
        gpu=replace(config.gpu, rfq_size=suggestion.rfq_size),
    )
