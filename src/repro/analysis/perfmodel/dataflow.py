"""Coupled-dataflow walk: the performance model's timing engine.

The model predicts cycles without running the cycle-stepped simulator.
It walks each warp's functional trace in *dependence order* — a
heap-scheduled PERT traversal over the dependence graph formed by
register scoreboards, queue push/pop edges (with capacity
backpressure, i.e. Little's law materialised per channel), barrier
edges, the per-warp outstanding-load limit, and TMA completions —
while replaying memory requests through the *real* simulator
components (:class:`repro.sim.memory.MemorySystem` caches and
token-bucket bandwidth servers, the timed barrier classes).  What it
deliberately drops is per-cycle issue arbitration: every warp issues
the moment its dependences allow, as if the SM had unbounded issue
slots.  That makes the walk linear in trace length instead of linear
in cycles, and exact whenever the kernel is bound by dependences,
bandwidth, queue capacity, or barriers rather than by issue-port
contention (``ISSUE_PORT``/``NO_ELIGIBLE`` are the model's blind
spots; see DESIGN.md §6d).

Determinism requirement: the bandwidth servers are deterministic FIFO
queues and must see nondecreasing submission times.  The walk
guarantees this by never executing an actor whose computed start time
lies beyond the earliest heap entry — it re-queues the actor at its
start time instead (strict re-push).  Stall attribution survives
re-queues through a separate ``charge_from`` mark per actor: the gap
``start - charge_from`` is charged to the binding dependence once the
instruction finally executes, no matter how many re-queues or
wait-list parks happened in between.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.fexec.trace import DynamicInstr, KernelTrace, WarpTrace
from repro.isa.opcodes import FuncUnit, Opcode
from repro.profiling.stalls import StallCause
from repro.sim.barriers import TimedArriveWait, TimedSyncBarrier
from repro.sim.config import GPUConfig, QueueImpl
from repro.sim.memory import MemorySystem
from repro.sim.occupancy import Occupancy, compute_occupancy
from repro.sim.sm import _SMEM_POP_EXTRA, _SMEM_PUSH_EXTRA

_INF = float("inf")

_GATHER_OPS = (Opcode.TMA_TILE, Opcode.TMA_STREAM, Opcode.TMA_GATHER)


@dataclass
class ChannelState:
    """One queue channel's history during the walk.

    ``ready`` holds the data-ready time of every entry ever pushed (in
    push order); ``pop_times`` the issue time of every pop.  Capacity
    backpressure is resolved against this history: push number ``k``
    must wait for pop number ``k - capacity``.  Residency statistics
    feed the Little's-law bound report.
    """

    capacity: int
    ready: list[float] = field(default_factory=list)
    pop_times: list[float] = field(default_factory=list)
    pushes: int = 0
    pops: int = 0
    reserved: int = 0
    wait_push: list["WarpActor | TmaActor"] = field(default_factory=list)
    wait_pop: list["WarpActor | TmaActor"] = field(default_factory=list)
    push_times: list[float] = field(default_factory=list)

    def can_push(self) -> bool:
        return (self.pushes + self.reserved - self.pops) < self.capacity

    def occupied_residency(self) -> float:
        """Total slot-cycles entries spent in the channel."""
        total = 0.0
        for index, popped in enumerate(self.pop_times):
            if index < len(self.push_times):
                total += max(0.0, popped - self.push_times[index])
        return total


@dataclass
class ChannelTraffic:
    """Aggregated per-queue traffic over all slices and thread blocks."""

    queue_id: int
    capacity: int
    channels: int = 0
    pushes: int = 0
    pops: int = 0
    #: Total slot-cycles occupied by entries (push to pop), summed over
    #: channels; divided by entries it is the mean residency Little's
    #: law needs.
    residency: float = 0.0

    @property
    def mean_residency(self) -> float:
        return self.residency / self.pops if self.pops else 0.0


@dataclass
class TBState:
    """Shared structures of one resident thread block."""

    trace: KernelTrace
    start: float
    channels: dict[tuple[int, int], ChannelState] = field(
        default_factory=dict
    )
    arrive_wait: dict[str, TimedArriveWait] = field(default_factory=dict)
    sync: dict[str, TimedSyncBarrier] = field(default_factory=dict)
    #: (kind, barrier id) -> parked actors; kind is "aw" or "sync".
    barrier_waiters: dict[tuple[str, str], list["WarpActor"]] = field(
        default_factory=dict
    )
    live: int = 0

    def channel(
        self, queue_id: int, slice_id: int, capacity: int
    ) -> ChannelState:
        key = (queue_id, slice_id)
        chan = self.channels.get(key)
        if chan is None:
            chan = self.channels[key] = ChannelState(capacity)
        return chan


@dataclass
class WarpActor:
    """One warp's walk state."""

    tb: TBState
    instrs: list[DynamicInstr]
    stage: int
    slice_id: int
    key: int
    t: float
    charge_from: float
    pc: int = 0
    scoreboard: dict[int, float] = field(default_factory=dict)
    outstanding: list[float] = field(default_factory=list)
    sync_marked: bool = False
    async_done: float = 0.0
    extra: int = 0
    #: Cause recorded when the actor parks on a wait-list; charged when
    #: the instruction finally executes (the re-entry check may no
    #: longer see the resolved condition as binding).
    park_cause: StallCause | None = None


@dataclass
class TmaActor:
    """A submitted TMA job walking its vectors through memory."""

    tb: TBState
    job: dict[str, object]
    chan: ChannelState | None
    barrier: TimedArriveWait | None
    stage: int
    key: int
    t: float
    barrier_id: str | None = None
    vec: int = 0
    phase2: list[tuple[float, int]] = field(default_factory=list)
    last_completion: float = 0.0


class DataflowWalk:
    """Run the coupled-dataflow traversal over one kernel's traces."""

    def __init__(
        self,
        gpu: GPUConfig,
        traces: list[KernelTrace],
        occupancy: Occupancy | None = None,
    ) -> None:
        if not traces:
            raise ValueError("no thread blocks to model")
        self.gpu = gpu
        self.traces = traces
        first = traces[0]
        self.spec = first.tb_spec
        self.warp_width = first.warp_width
        self.occupancy = occupancy or compute_occupancy(
            gpu,
            self.spec,
            num_warps=first.num_warps,
            program_registers=first.program_registers,
            smem_words=first.smem_words,
            warp_width=first.warp_width,
        )
        self.memory = MemorySystem(gpu)
        self.smem_queue = gpu.features.queue_impl is QueueImpl.SMEM
        self._heap: list[tuple[float, int, WarpActor | TmaActor]] = []
        self._nkey = 0
        self._pending = list(traces)
        self._all_tbs: list[TBState] = []
        self._live_tbs = 0
        self.max_t = 0.0
        #: (pipe stage, cause) -> predicted critical-chain gap cycles.
        self.stalls: dict[tuple[int, StallCause], float] = {}
        #: pipe stage -> issue-slot demand (instructions + SMEM-queue
        #: bookkeeping slots), for the issue roofline.
        self.issues_by_stage: dict[int, float] = {}
        #: pipe stage -> TMA vectors its jobs moved (offloaded traffic).
        self.tma_vectors_by_stage: dict[int, int] = {}
        self.cycles = 0.0
        self._ran = False

    # -- public API ------------------------------------------------------

    def run(self) -> float:
        """Walk every trace; returns (and stores) predicted cycles."""
        if self._ran:
            return self.cycles
        self._ran = True
        limit = self.occupancy.max_resident_tbs
        while self._pending and self._live_tbs < limit:
            self._admit(0.0)
        while self._heap:
            t, _, actor = heapq.heappop(self._heap)
            if isinstance(actor, TmaActor):
                self._step_tma(actor, t)
            else:
                self._step_warp(actor, t)
        self.cycles = max(self.max_t, self.memory.drain_time())
        return self.cycles

    def channel_stats(self) -> dict[int, "ChannelTraffic"]:
        """Per-queue traffic totals after :meth:`run` (summed over the
        per-slice channels of every thread block)."""
        merged: dict[int, ChannelTraffic] = {}
        for tb in self._all_tbs:
            for (queue_id, _slice), chan in tb.channels.items():
                agg = merged.get(queue_id)
                if agg is None:
                    agg = merged[queue_id] = ChannelTraffic(
                        queue_id=queue_id, capacity=chan.capacity
                    )
                agg.channels += 1
                agg.pushes += chan.pushes
                agg.pops += chan.pops
                agg.residency += chan.occupied_residency()
        return merged

    # -- scheduling ------------------------------------------------------

    def _push(self, actor: WarpActor | TmaActor, t: float) -> None:
        self._nkey += 1
        heapq.heappush(self._heap, (t, self._nkey, actor))

    def _wake(
        self, waiters: list[WarpActor | TmaActor], t: float
    ) -> None:
        while waiters:
            actor = waiters.pop()
            self._push(actor, max(actor.t, t))

    def _admit(self, start: float) -> None:
        trace = self._pending.pop(0)
        tb = TBState(trace=trace, start=start)
        self._all_tbs.append(tb)
        spec = trace.tb_spec
        for warp_trace in trace.warps:
            slice_id = self._slice_of(spec, warp_trace)
            self._nkey += 1
            actor = WarpActor(
                tb=tb,
                instrs=warp_trace.instrs,
                stage=warp_trace.pipe_stage_id,
                slice_id=slice_id,
                key=self._nkey,
                t=start,
                charge_from=start,
            )
            if actor.instrs:
                tb.live += 1
                self._push(actor, start)
        self._live_tbs += 1
        if tb.live == 0:
            self._finish_tb(tb, start)

    @staticmethod
    def _slice_of(spec: object, warp_trace: WarpTrace) -> int:
        if spec is None:
            return warp_trace.warp_id
        stage = spec.stage_of_warp(warp_trace.warp_id)  # type: ignore[attr-defined]
        warps = spec.warps_in_stage(stage)  # type: ignore[attr-defined]
        return list(warps).index(warp_trace.warp_id)

    def _finish_tb(self, tb: TBState, t: float) -> None:
        self._live_tbs -= 1
        if self._pending and self._live_tbs < self.occupancy.max_resident_tbs:
            self._admit(t)

    # -- accounting ------------------------------------------------------

    def _charge(self, stage: int, cause: StallCause, amount: float) -> None:
        if amount > 0.0:
            key = (stage, cause)
            self.stalls[key] = self.stalls.get(key, 0.0) + amount

    def _count_issue(self, stage: int, slots: float = 1.0) -> None:
        self.issues_by_stage[stage] = (
            self.issues_by_stage.get(stage, 0.0) + slots
        )

    # -- barrier helpers -------------------------------------------------

    def _aw_barrier(self, tb: TBState, barrier_id: str) -> TimedArriveWait:
        barrier = tb.arrive_wait.get(barrier_id)
        if barrier is None:
            spec = tb.trace.tb_spec
            expected = 1
            initial = 0
            if spec is not None:
                expected = spec.barrier_expected.get(barrier_id, 1)
                initial = spec.barrier_initial.get(barrier_id, 0)
            barrier = TimedArriveWait(
                barrier_id, expected=expected, initial_credit=initial
            )
            tb.arrive_wait[barrier_id] = barrier
        return barrier

    def _sync_barrier(self, tb: TBState, barrier_id: str) -> TimedSyncBarrier:
        barrier = tb.sync.get(barrier_id)
        if barrier is None:
            barrier = TimedSyncBarrier(
                barrier_id, num_warps=tb.trace.num_warps
            )
            tb.sync[barrier_id] = barrier
        return barrier

    def _bar_waiters(
        self, tb: TBState, key: tuple[str, str]
    ) -> list[WarpActor]:
        return tb.barrier_waiters.setdefault(key, [])

    # -- warp stepping ---------------------------------------------------

    def _step_warp(self, w: WarpActor, tmin: float) -> None:
        gpu = self.gpu
        t0 = max(w.t, tmin)
        if w.extra > 0:
            # SMEM-queue bookkeeping occupies real issue slots.
            self._count_issue(w.stage, float(w.extra))
            w.t = t0 + w.extra
            w.extra = 0
            t0 = w.t
            w.charge_from = max(w.charge_from, t0)
        if w.pc >= len(w.instrs):
            self._retire_warp(w)
            return
        di = w.instrs[w.pc]

        # Resolve every dependence to the earliest legal start, keeping
        # the *binding* one for attribution.
        start = t0
        cause: StallCause | None = None

        ready = t0
        for reg in di.src_regs:
            at = w.scoreboard.get(reg)
            if at is not None and at > ready:
                ready = at
        if ready > start:
            start = ready
            cause = StallCause.SCOREBOARD

        chan_pop: ChannelState | None = None
        if di.queue_pop is not None:
            chan_pop = w.tb.channel(
                di.queue_pop, w.slice_id, gpu.rfq_size
            )
            index = chan_pop.pops
            if chan_pop.pushes <= index:
                # Producer has not pushed this entry yet: park until it
                # does.  charge_from survives the park.
                w.t = start
                w.park_cause = StallCause.QUEUE_EMPTY
                chan_pop.wait_pop.append(w)
                return
            head = chan_pop.ready[index]
            if head > start:
                start = head
                cause = StallCause.QUEUE_EMPTY

        chan_push: ChannelState | None = None
        if di.queue_push is not None:
            chan_push = w.tb.channel(
                di.queue_push, w.slice_id, gpu.rfq_size
            )
            if not chan_push.can_push():
                slot_index = (
                    chan_push.pushes + chan_push.reserved
                    - chan_push.capacity
                )
                if len(chan_push.pop_times) > slot_index:
                    freed = chan_push.pop_times[slot_index]
                    if freed > start:
                        start = freed
                        cause = StallCause.QUEUE_FULL
                else:
                    w.t = start
                    w.park_cause = StallCause.QUEUE_FULL
                    chan_push.wait_push.append(w)
                    return

        if di.opcode is Opcode.LDG:
            live = [x for x in w.outstanding if x > start]
            if len(live) >= gpu.max_outstanding_loads_per_warp:
                live.sort()
                need = live[
                    len(live) - gpu.max_outstanding_loads_per_warp
                ]
                if need > start:
                    start = need
                    cause = StallCause.MSHR
            w.outstanding = [x for x in w.outstanding if x > start]

        if di.opcode is Opcode.BAR_WAIT:
            barrier = self._aw_barrier(w.tb, di.barrier_id)
            count = barrier.wait_counts.get(w.key, 0) + 1
            needed = count * barrier.expected - barrier.initial_credit
            if needed > len(barrier.arrival_times):
                w.t = start
                w.park_cause = StallCause.BARRIER_WAIT
                self._bar_waiters(w.tb, ("aw", di.barrier_id)).append(w)
                return
            if needed > 0:
                pass_time = barrier.arrival_times[needed - 1]
                if pass_time > start:
                    start = pass_time
                    cause = StallCause.BARRIER_WAIT

        if di.opcode is Opcode.BAR_SYNC:
            barrier = self._sync_barrier(w.tb, di.barrier_id)
            if not w.sync_marked:
                # Arrival is recorded at the first attempt, matching
                # the simulator's semantics.
                barrier.arrive(w.key, start)
                w.sync_marked = True
                self._wake_sync(w.tb, di.barrier_id, start)
            phase = barrier.warp_phase.get(w.key, 0)
            arrivals = barrier.phase_arrivals.get(phase, [])
            if len(arrivals) < barrier.num_warps:
                w.t = start
                w.park_cause = StallCause.BARRIER_WAIT
                self._bar_waiters(
                    w.tb, ("sync", di.barrier_id)
                ).append(w)
                return
            pass_time = max(arrivals)
            if pass_time > start:
                start = pass_time
                cause = StallCause.BARRIER_WAIT

        # Strict re-push: executing now would submit memory requests at
        # ``start`` while earlier heap entries still owe earlier
        # submissions.  Defer; the gap is charged at execution via
        # charge_from, so nothing is lost or double-counted.
        if self._heap and start > self._heap[0][0]:
            w.t = start
            self._push(w, start)
            return

        if cause is None and start > w.charge_from:
            cause = w.park_cause or StallCause.SCOREBOARD
        if cause is not None:
            self._charge(w.stage, cause, start - w.charge_from)
        w.park_cause = None
        self._exec_instr(w, di, start, chan_pop, chan_push)

    def _wake_sync(self, tb: TBState, barrier_id: str, t: float) -> None:
        waiters = tb.barrier_waiters.get(("sync", barrier_id))
        if waiters:
            generic: list[WarpActor | TmaActor] = list(waiters)
            waiters.clear()
            self._wake(generic, t)

    def _retire_warp(self, w: WarpActor) -> None:
        w.tb.live -= 1
        if w.tb.live == 0:
            self._finish_tb(w.tb, w.t)

    def _exec_instr(
        self,
        w: WarpActor,
        di: DynamicInstr,
        now: float,
        chan_pop: ChannelState | None,
        chan_push: ChannelState | None,
    ) -> None:
        gpu = self.gpu
        completion = now + gpu.int_latency
        if di.unit is FuncUnit.FP:
            completion = now + gpu.fp_latency
        elif di.unit is FuncUnit.TENSOR:
            completion = now + gpu.tensor_latency

        op = di.opcode
        if op is Opcode.LDG:
            completion = self.memory.access_global(now, di.sectors)
            w.outstanding.append(completion)
            if chan_push is not None:
                entry_ready = completion
                if self.smem_queue:
                    entry_ready = self.memory.access_smem(
                        completion, self.warp_width
                    )
                    w.extra += _SMEM_PUSH_EXTRA
                chan_push.ready.append(entry_ready)
                chan_push.push_times.append(now)
                chan_push.pushes += 1
                self._wake(chan_push.wait_pop, now)
        elif op is Opcode.STG:
            self.memory.access_global(now, di.sectors)
        elif op is Opcode.LDGSTS:
            landed = self.memory.access_global(now, di.sectors)
            landed = self.memory.access_smem(landed, di.smem_words)
            w.async_done = max(w.async_done, landed)
        elif op in (Opcode.LDS, Opcode.STS):
            completion = self.memory.access_smem(now, di.smem_words)
        elif op in _GATHER_OPS:
            self._submit_tma(w, di, now)
        elif op is Opcode.BAR_ARRIVE:
            barrier = self._aw_barrier(w.tb, di.barrier_id)
            barrier.arrive(max(now, w.async_done))
            self._wake_barrier(w.tb, di.barrier_id, now)
        elif op is Opcode.BAR_WAIT:
            barrier = self._aw_barrier(w.tb, di.barrier_id)
            barrier.record_wait(w.key)
        elif op is Opcode.BAR_SYNC:
            barrier = self._sync_barrier(w.tb, di.barrier_id)
            barrier.record_pass(w.key)
            w.sync_marked = False

        if di.queue_pop is not None and chan_pop is not None:
            head = chan_pop.ready[chan_pop.pops]
            chan_pop.pops += 1
            chan_pop.pop_times.append(now)
            self._wake(chan_pop.wait_push, now)
            data_ready = max(now, head)
            if self.smem_queue:
                data_ready = self.memory.access_smem(
                    data_ready, self.warp_width
                )
                w.extra += _SMEM_POP_EXTRA
            completion = max(completion, data_ready + gpu.int_latency)

        if chan_push is not None and op is not Opcode.LDG:
            chan_push.ready.append(completion)
            chan_push.push_times.append(now)
            chan_push.pushes += 1
            self._wake(chan_push.wait_pop, now)

        for reg in di.dst_regs:
            w.scoreboard[reg] = completion

        self._count_issue(w.stage)
        w.pc += 1
        w.t = now + 1.0
        w.charge_from = w.t
        self.max_t = max(self.max_t, w.t)
        if w.pc >= len(w.instrs) and w.extra == 0:
            self._retire_warp(w)
        else:
            self._push(w, w.t)

    def _wake_barrier(self, tb: TBState, barrier_id: str, t: float) -> None:
        waiters = tb.barrier_waiters.get(("aw", barrier_id))
        if waiters:
            generic: list[WarpActor | TmaActor] = list(waiters)
            waiters.clear()
            self._wake(generic, t)

    # -- TMA actors ------------------------------------------------------

    def _submit_tma(self, w: WarpActor, di: DynamicInstr, now: float) -> None:
        job = dict(di.tma_job or {})
        chan: ChannelState | None = None
        queue_id = job.get("queue")
        if queue_id is not None:
            chan = w.tb.channel(
                int(queue_id),  # type: ignore[arg-type]
                w.slice_id,
                self.gpu.rfq_size,
            )
        barrier_id = job.get("barrier")
        barrier = (
            self._aw_barrier(w.tb, str(barrier_id))
            if barrier_id is not None
            else None
        )
        vectors = job.get("vector_sectors") or []
        self.tma_vectors_by_stage[w.stage] = (
            self.tma_vectors_by_stage.get(w.stage, 0)
            + len(vectors)  # type: ignore[arg-type]
        )
        if not vectors:
            if barrier is not None:
                barrier.arrive(now)
                self._wake_barrier(w.tb, str(barrier_id), now)
            return
        self._nkey += 1
        actor = TmaActor(
            tb=w.tb,
            job=job,
            chan=chan,
            barrier=barrier,
            stage=w.stage,
            key=self._nkey,
            t=now,
            barrier_id=(
                str(barrier_id) if barrier_id is not None else None
            ),
            last_completion=now,
        )
        w.tb.live += 1
        self._push(actor, now)

    def _step_tma(self, a: TmaActor, tmin: float) -> None:
        job = a.job
        rate = self.gpu.tma_vectors_per_cycle
        vectors = job.get("vector_sectors") or []
        data_vectors = job.get("data_vector_sectors")
        smem_words = int(job.get("smem_words") or 0)
        per_vec_smem = 0
        if smem_words and vectors:
            per_vec_smem = max(
                1, smem_words // len(vectors)  # type: ignore[arg-type]
            )
        t = max(a.t, tmin)
        if a.phase2 and a.phase2[0][0] <= t:
            index_ready, vec = a.phase2.pop(0)
            sectors = tuple(
                data_vectors[vec]  # type: ignore[index]
            )
            completion = self.memory.access_global(index_ready, sectors)
            self._finish_tma_vector(a, completion, per_vec_smem, True)
            self._requeue_tma(a, t)
            return
        if a.vec < len(vectors):  # type: ignore[arg-type]
            if a.chan is not None and not a.chan.can_push():
                slot_index = (
                    a.chan.pushes + a.chan.reserved - a.chan.capacity
                )
                if len(a.chan.pop_times) > slot_index:
                    a.t = max(t, a.chan.pop_times[slot_index])
                    self._push(a, a.t)
                else:
                    a.t = t
                    a.chan.wait_push.append(a)
                return
            sectors = tuple(vectors[a.vec])  # type: ignore[index]
            completion = self.memory.access_global(t, sectors)
            if data_vectors is not None:
                if a.chan is not None:
                    a.chan.reserved += 1
                a.phase2.append((completion, a.vec))
                a.phase2.sort()
            else:
                self._finish_tma_vector(a, completion, per_vec_smem, False)
            a.vec += 1
            a.t = t + 1.0 / rate
            self._requeue_tma(a, a.t)
            return
        if a.phase2:
            a.t = a.phase2[0][0]
            self._push(a, a.t)
            return
        if a.barrier is not None:
            a.barrier.arrive(a.last_completion)
            if a.barrier_id is not None:
                self._wake_barrier(a.tb, a.barrier_id, a.last_completion)
        self.max_t = max(self.max_t, a.last_completion)
        a.tb.live -= 1
        if a.tb.live == 0:
            self._finish_tb(a.tb, a.last_completion)

    def _requeue_tma(self, a: TmaActor, t: float) -> None:
        vectors = a.job.get("vector_sectors") or []
        nxt = _INF
        if a.vec < len(vectors):  # type: ignore[arg-type]
            nxt = a.t
        if a.phase2:
            nxt = min(nxt, a.phase2[0][0])
        if nxt is _INF:
            nxt = a.t
        a.t = nxt
        self._push(a, nxt)

    def _finish_tma_vector(
        self,
        a: TmaActor,
        completion: float,
        per_vec_smem: int,
        reserved: bool,
    ) -> None:
        if per_vec_smem:
            completion = self.memory.access_smem(completion, per_vec_smem)
        if a.chan is not None:
            if reserved:
                a.chan.reserved -= 1
            a.chan.ready.append(completion)
            a.chan.push_times.append(completion)
            a.chan.pushes += 1
            self._wake(a.chan.wait_pop, completion)
        a.last_completion = max(a.last_completion, completion)
