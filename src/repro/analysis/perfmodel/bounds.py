"""Closed-form per-stage bounds: issue, memory, and queue coupling.

Three families of lower bounds on kernel cycles, all derived from the
same :class:`repro.sim.config.ServiceRates` the simulator runs on:

* **Issue roofline** — a stage that must place ``n`` instructions
  (plus SMEM-queue bookkeeping slots) through ``P`` issue slots needs
  at least ``n / P`` cycles; the kernel needs at least the total over
  stages (stages share the slots).
* **Memory rooflines** — token-bucket bandwidth servers are
  deterministic queues, so traffic ``T`` through a server of rate
  ``r`` needs at least ``T / r`` cycles.  One roofline per server
  (L2 sectors, DRAM sectors, SMEM words, TMA vectors).  The traffic
  split across cache levels comes from the dataflow walk's replay of
  the real caches (or worst-case all-DRAM when no walk is available).
* **Queue-coupling bound (Little's law)** — a queue channel holding at
  most ``C`` entries, each resident ``W`` cycles on average between
  push and pop, sustains at most ``C / W`` items per cycle; moving
  ``N`` items therefore needs at least ``N·W / C`` cycles.  ``W`` is
  measured by the walk (production-to-consumption residency); the
  bound names the queue edge in the stage→queue digraph so the
  explanation chain can point from a starved consumer to its producer.

The kernel-level prediction is the dataflow walk itself; these bounds
exist to *explain* it — the binding bound (largest lower bound) names
the resource the kernel is up against, and per-stage bounds localise
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.specs import ThreadBlockSpec
from repro.fexec.trace import KernelTrace
from repro.isa.opcodes import Opcode
from repro.sim.config import ServiceRates
from repro.sim.sm import _SMEM_POP_EXTRA, _SMEM_PUSH_EXTRA


@dataclass
class StageWork:
    """Static work counts of one pipeline stage, over all TBs/warps."""

    stage: int
    instructions: int = 0
    issue_slots: float = 0.0  # instructions + SMEM-queue bookkeeping
    global_sectors: int = 0
    smem_words: int = 0
    tma_vectors: int = 0
    queue_pushes: dict[int, int] = field(default_factory=dict)
    queue_pops: dict[int, int] = field(default_factory=dict)


def compute_stage_work(
    traces: list[KernelTrace], smem_queue: bool
) -> dict[int, StageWork]:
    """Count per-stage issue and traffic demand from functional traces."""
    work: dict[int, StageWork] = {}
    for trace in traces:
        for warp in trace.warps:
            stage = work.setdefault(
                warp.pipe_stage_id, StageWork(stage=warp.pipe_stage_id)
            )
            for di in warp.instrs:
                stage.instructions += 1
                slots = 1.0
                stage.global_sectors += len(di.sectors)
                if di.smem_words:
                    stage.smem_words += di.smem_words
                if di.queue_push is not None:
                    stage.queue_pushes[di.queue_push] = (
                        stage.queue_pushes.get(di.queue_push, 0) + 1
                    )
                    if smem_queue:
                        slots += _SMEM_PUSH_EXTRA
                        stage.smem_words += trace.warp_width
                if di.queue_pop is not None:
                    stage.queue_pops[di.queue_pop] = (
                        stage.queue_pops.get(di.queue_pop, 0) + 1
                    )
                    if smem_queue:
                        slots += _SMEM_POP_EXTRA
                        stage.smem_words += trace.warp_width
                stage.issue_slots += slots
                if di.opcode in (
                    Opcode.TMA_TILE,
                    Opcode.TMA_STREAM,
                    Opcode.TMA_GATHER,
                ):
                    job = di.tma_job or {}
                    vectors = job.get("vector_sectors") or []
                    stage.tma_vectors += len(vectors)
                    for vec in vectors:
                        stage.global_sectors += len(vec)
                    smem = int(job.get("smem_words") or 0)
                    stage.smem_words += smem
    return work


@dataclass(frozen=True)
class Bound:
    """One named lower bound on kernel cycles, with its derivation."""

    name: str
    cycles: float
    detail: str

    def to_json(self) -> dict[str, object]:
        return {
            "name": self.name,
            "cycles": round(self.cycles, 2),
            "detail": self.detail,
        }


@dataclass
class StageBounds:
    """The bound set of one pipeline stage."""

    stage: int
    issue: Bound
    memory: list[Bound] = field(default_factory=list)
    queues: list[Bound] = field(default_factory=list)

    def binding(self) -> Bound:
        """The largest lower bound — what this stage is up against."""
        candidates = [self.issue, *self.memory, *self.queues]
        return max(candidates, key=lambda b: b.cycles)

    def to_json(self) -> dict[str, object]:
        return {
            "stage": self.stage,
            "issue": self.issue.to_json(),
            "memory": [b.to_json() for b in self.memory],
            "queues": [b.to_json() for b in self.queues],
            "binding": self.binding().to_json(),
        }


@dataclass
class BoundReport:
    """All bounds for one kernel under one configuration."""

    stages: dict[int, StageBounds] = field(default_factory=dict)
    kernel: list[Bound] = field(default_factory=list)

    def binding(self) -> Bound | None:
        if not self.kernel:
            return None
        return max(self.kernel, key=lambda b: b.cycles)

    def to_json(self) -> dict[str, object]:
        binding = self.binding()
        return {
            "stages": [
                self.stages[s].to_json() for s in sorted(self.stages)
            ],
            "kernel": [b.to_json() for b in self.kernel],
            "binding": binding.to_json() if binding else None,
        }


@dataclass(frozen=True)
class MemoryLevelMix:
    """Observed (or assumed) split of global sectors across levels."""

    l1_hits: int
    l2_hits: int
    dram_accesses: int

    @property
    def total(self) -> int:
        return self.l1_hits + self.l2_hits + self.dram_accesses


def queue_digraph(
    spec: ThreadBlockSpec | None,
) -> list[tuple[int, int, int]]:
    """The stage→queue digraph: ``(queue_id, src_stage, dst_stage)``.

    The same edges the deadlock pass cycles-checks; re-derived from the
    spec here because the analysis passes work on programs while the
    model works on traces.
    """
    if spec is None:
        return []
    return [
        (q.queue_id, q.src_stage, q.dst_stage) for q in spec.queues
    ]


def compute_bounds(
    work: dict[int, StageWork],
    rates: ServiceRates,
    spec: ThreadBlockSpec | None,
    level_mix: MemoryLevelMix | None = None,
    queue_residency: dict[int, float] | None = None,
    queue_channels: dict[int, int] | None = None,
) -> BoundReport:
    """Derive the full bound report from static work and service rates.

    ``level_mix`` splits global-sector traffic across L1/L2/DRAM (from
    the walk's cache replay; all-DRAM worst case when absent) and is
    applied proportionally to each stage's sector count.
    ``queue_residency`` maps queue id to mean entry residency W in
    cycles (walk-measured; one int-op latency as the static floor),
    ``queue_channels`` to the number of parallel per-slice channels.
    """
    report = BoundReport()
    l2_frac = 1.0
    dram_frac = 1.0
    if level_mix is not None and level_mix.total > 0:
        past_l1 = level_mix.l2_hits + level_mix.dram_accesses
        l2_frac = past_l1 / level_mix.total
        dram_frac = level_mix.dram_accesses / level_mix.total

    edges = queue_digraph(spec)
    consumers = {qid: dst for qid, _src, dst in edges}

    kernel_issue_slots = 0.0
    kernel_l2 = 0.0
    kernel_dram = 0.0
    kernel_smem = 0.0
    kernel_tma = 0.0

    for stage_id in sorted(work):
        stage = work[stage_id]
        issue_cycles = stage.issue_slots / rates.issue_slots
        issue = Bound(
            name=f"issue[stage {stage_id}]",
            cycles=issue_cycles,
            detail=(
                f"{stage.issue_slots:.0f} issue slots / "
                f"{rates.issue_slots} per cycle"
            ),
        )
        kernel_issue_slots += stage.issue_slots

        memory: list[Bound] = []
        l2_sectors = stage.global_sectors * l2_frac
        dram_sectors = stage.global_sectors * dram_frac
        kernel_l2 += l2_sectors
        kernel_dram += dram_sectors
        if l2_sectors > 0:
            memory.append(Bound(
                name=f"l2-bandwidth[stage {stage_id}]",
                cycles=l2_sectors / rates.l2_sectors_per_cycle,
                detail=(
                    f"{l2_sectors:.0f} post-L1 sectors / "
                    f"{rates.l2_sectors_per_cycle} per cycle"
                ),
            ))
        if dram_sectors > 0:
            memory.append(Bound(
                name=f"dram-bandwidth[stage {stage_id}]",
                cycles=dram_sectors / rates.dram_sectors_per_cycle,
                detail=(
                    f"{dram_sectors:.0f} DRAM sectors / "
                    f"{rates.dram_sectors_per_cycle} per cycle"
                ),
            ))
        if stage.smem_words > 0:
            kernel_smem += stage.smem_words
            memory.append(Bound(
                name=f"smem-bandwidth[stage {stage_id}]",
                cycles=stage.smem_words / rates.smem_words_per_cycle,
                detail=(
                    f"{stage.smem_words} SMEM words / "
                    f"{rates.smem_words_per_cycle:.0f} per cycle"
                ),
            ))
        if stage.tma_vectors > 0:
            kernel_tma += stage.tma_vectors
            memory.append(Bound(
                name=f"tma-issue[stage {stage_id}]",
                cycles=stage.tma_vectors / rates.tma_vectors_per_cycle,
                detail=(
                    f"{stage.tma_vectors} TMA vectors / "
                    f"{rates.tma_vectors_per_cycle} per cycle"
                ),
            ))

        queues: list[Bound] = []
        for queue_id, pushes in sorted(stage.queue_pushes.items()):
            residency = float(rates.int_latency)
            if queue_residency and queue_id in queue_residency:
                residency = max(residency, queue_residency[queue_id])
            channels = 1
            if queue_channels and queue_id in queue_channels:
                channels = max(1, queue_channels[queue_id])
            per_channel = pushes / channels
            cycles = per_channel * residency / rates.rfq_size
            consumer = consumers.get(queue_id)
            queues.append(Bound(
                name=f"queue-coupling[q{queue_id}]",
                cycles=cycles,
                detail=(
                    f"Little's law: {per_channel:.0f} items/channel x "
                    f"{residency:.0f}-cycle residency / "
                    f"{rates.rfq_size} entries"
                    + (
                        f" (feeds stage {consumer})"
                        if consumer is not None
                        else ""
                    )
                ),
            ))

        report.stages[stage_id] = StageBounds(
            stage=stage_id, issue=issue, memory=memory, queues=queues
        )

    report.kernel.append(Bound(
        name="issue",
        cycles=kernel_issue_slots / rates.issue_slots,
        detail=(
            f"{kernel_issue_slots:.0f} issue slots / "
            f"{rates.issue_slots} per cycle"
        ),
    ))
    if kernel_l2 > 0:
        report.kernel.append(Bound(
            name="l2-bandwidth",
            cycles=kernel_l2 / rates.l2_sectors_per_cycle,
            detail=(
                f"{kernel_l2:.0f} post-L1 sectors / "
                f"{rates.l2_sectors_per_cycle} per cycle"
            ),
        ))
    if kernel_dram > 0:
        report.kernel.append(Bound(
            name="dram-bandwidth",
            cycles=kernel_dram / rates.dram_sectors_per_cycle,
            detail=(
                f"{kernel_dram:.0f} DRAM sectors / "
                f"{rates.dram_sectors_per_cycle} per cycle"
            ),
        ))
    if kernel_smem > 0:
        report.kernel.append(Bound(
            name="smem-bandwidth",
            cycles=kernel_smem / rates.smem_words_per_cycle,
            detail=(
                f"{kernel_smem:.0f} SMEM words / "
                f"{rates.smem_words_per_cycle:.0f} per cycle"
            ),
        ))
    if kernel_tma > 0:
        report.kernel.append(Bound(
            name="tma-issue",
            cycles=kernel_tma / rates.tma_vectors_per_cycle,
            detail=(
                f"{kernel_tma:.0f} TMA vectors / "
                f"{rates.tma_vectors_per_cycle} per cycle"
            ),
        ))
    return report
