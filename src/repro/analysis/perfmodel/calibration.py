"""Calibration: the model against the simulator, row by row.

The performance model is only useful while its predictions track the
simulator it abstracts.  This module produces the evidence: a
:class:`CalibrationRow` per (kernel, configuration) comparing predicted
against simulated cycles, bottleneck-stage agreement, and the
total-variation distance between the two stall mixes.  The test suite
asserts the headline tolerances (every registry kernel within
:data:`CYCLE_TOLERANCE`, at least :data:`AGREEMENT_FLOOR` bottleneck
agreement); sweep and advise artifacts embed the same rows so every
cached experiment doubles as a calibration sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.perfmodel.model import Prediction, predict_traces
from repro.profiling.stalls import dominant_stage, mix_distance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.configs import EvalConfig
    from repro.experiments.runner import TraceCache
    from repro.workloads.base import Kernel

#: Maximum |predicted - simulated| / simulated per kernel (ISSUE
#: acceptance: +-25%; the registry currently calibrates to ~10% max).
CYCLE_TOLERANCE = 0.25

#: Minimum fraction of kernels whose predicted bottleneck stage matches
#: the simulator's dominant stall attribution.
AGREEMENT_FLOOR = 0.90


@dataclass
class CalibrationRow:
    """One predicted-vs-simulated comparison."""

    name: str
    config_name: str
    predicted_cycles: float
    simulated_cycles: float
    predicted_stage: int | None
    simulated_stage: int | None
    stall_mix_distance: float

    @property
    def error(self) -> float:
        """Relative cycle error against the simulator."""
        if self.simulated_cycles <= 0:
            return 0.0
        return (
            abs(self.predicted_cycles - self.simulated_cycles)
            / self.simulated_cycles
        )

    @property
    def bottleneck_agrees(self) -> bool:
        return self.predicted_stage == self.simulated_stage

    def to_json(self) -> dict[str, object]:
        return {
            "name": self.name,
            "config": self.config_name,
            "predicted_cycles": round(self.predicted_cycles, 2),
            "simulated_cycles": round(self.simulated_cycles, 2),
            "error": round(self.error, 4),
            "predicted_stage": self.predicted_stage,
            "simulated_stage": self.simulated_stage,
            "bottleneck_agrees": self.bottleneck_agrees,
            "stall_mix_distance": round(self.stall_mix_distance, 4),
        }


@dataclass
class CalibrationReport:
    """Aggregate over many rows, with the headline statistics."""

    rows: list[CalibrationRow] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.error for r in self.rows) / len(self.rows)

    @property
    def max_error(self) -> float:
        return max((r.error for r in self.rows), default=0.0)

    @property
    def agreement(self) -> float:
        if not self.rows:
            return 1.0
        agreed = sum(1 for r in self.rows if r.bottleneck_agrees)
        return agreed / len(self.rows)

    def within(self, tolerance: float = CYCLE_TOLERANCE) -> int:
        return sum(1 for r in self.rows if r.error <= tolerance)

    def to_json(self) -> dict[str, object]:
        return {
            "rows": [r.to_json() for r in self.rows],
            "mean_error": round(self.mean_error, 4),
            "max_error": round(self.max_error, 4),
            "agreement": round(self.agreement, 4),
            "within_tolerance": self.within(),
            "total": len(self.rows),
        }


def calibrate_kernel(
    kernel: "Kernel",
    config: "EvalConfig",
    cache: "TraceCache | None" = None,
) -> tuple[CalibrationRow, Prediction]:
    """Compare model and simulator on one kernel under one config.

    Both sides see the *same* traces: whichever variant (specialized or
    plain) the simulator's per-kernel opt-in selected is the one the
    model predicts, so the row isolates timing-model error from
    variant-selection differences.
    """
    from repro.experiments.runner import (
        GLOBAL_CACHE,
        _compiler_options_for,
        _gpu_for,
        run_kernel,
    )

    store = cache if cache is not None else GLOBAL_CACHE
    result = run_kernel(kernel, config, store)
    gpu = _gpu_for(kernel, config)
    if result.used_specialized:
        options = _compiler_options_for(kernel, config)
        entry = store.specialized(kernel, options)
        traces = entry.traces if entry is not None else []
    else:
        traces = store.original(kernel).traces
    prediction = predict_traces(traces, gpu, kernel_name=kernel.name)
    row = CalibrationRow(
        name=kernel.name,
        config_name=config.name,
        predicted_cycles=prediction.cycles,
        simulated_cycles=result.cycles,
        predicted_stage=prediction.bottleneck_stage,
        simulated_stage=dominant_stage(result.sim.stall_cycles),
        stall_mix_distance=mix_distance(
            prediction.raw_stalls, result.sim.stall_cycles
        ),
    )
    return row, prediction


def calibrate_registry(
    config: "EvalConfig",
    scale: float = 0.25,
    cache: "TraceCache | None" = None,
    workloads: list[str] | None = None,
) -> CalibrationReport:
    """Calibrate over every kernel of the workload registry."""
    from repro.workloads import all_benchmarks, get_benchmark

    names = workloads if workloads is not None else all_benchmarks()
    report = CalibrationReport()
    for name in names:
        benchmark = get_benchmark(name, scale=scale)
        for kernel in benchmark.kernels:
            row, _ = calibrate_kernel(kernel, config, cache)
            report.rows.append(row)
    return report


def calibrate_fuzz_seed(
    seed_spec: dict,
    config: "EvalConfig",
    cache: "TraceCache | None" = None,
) -> CalibrationRow:
    """Calibrate on one fuzz-corpus spec (JSON form, replayable)."""
    from repro.fuzz.generator import build_kernel
    from repro.fuzz.spec import FuzzSpec

    spec = FuzzSpec.from_json(seed_spec)
    kernel = build_kernel(spec)
    row, _ = calibrate_kernel(kernel, config, cache)
    row.name = f"seed={spec.seed}"
    return row
