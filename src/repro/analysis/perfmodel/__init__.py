"""Static, execution-free performance model (``repro advise``).

Predicts per-kernel cycles, the bottleneck pipeline stage with an
explanation chain, a stall mix comparable to the PR 2 profiler's
taxonomy, and the WASP-vs-baseline speedup — all without running the
cycle-level simulator.  Layers:

* :mod:`repro.analysis.perfmodel.dataflow` — the timing engine: a
  heap-scheduled dependence-order walk of the functional traces that
  replays memory through the simulator's own caches and token-bucket
  bandwidth servers.
* :mod:`repro.analysis.perfmodel.bounds` — closed-form lower bounds
  (issue roofline, per-server bandwidth rooflines, Little's-law queue
  coupling) derived from the shared
  :class:`repro.sim.config.ServiceRates`; these explain the walk's
  prediction rather than replace it.
* :mod:`repro.analysis.perfmodel.model` — the public prediction API.
* :mod:`repro.analysis.perfmodel.advisor` — candidate enumeration and
  the gated configuration suggestion behind ``repro advise``.
* :mod:`repro.analysis.perfmodel.calibration` — predicted-vs-simulated
  rows; the test suite holds the model to its stated tolerances.

Assumptions and blind spots are documented in DESIGN.md §6d.
"""

from repro.analysis.perfmodel.advisor import (
    ADVICE_SCHEMA,
    AdviceReport,
    Candidate,
    KernelAdvice,
    QUEUE_DEPTHS,
    STAGE_SPLITS,
    SUGGESTION_MARGIN,
    advise_kernel,
    advise_workload,
    apply_suggestion,
    enumerate_candidates,
)
from repro.analysis.perfmodel.bounds import (
    Bound,
    BoundReport,
    MemoryLevelMix,
    StageBounds,
    StageWork,
    compute_bounds,
    compute_stage_work,
    queue_digraph,
)
from repro.analysis.perfmodel.calibration import (
    AGREEMENT_FLOOR,
    CYCLE_TOLERANCE,
    CalibrationReport,
    CalibrationRow,
    calibrate_fuzz_seed,
    calibrate_kernel,
    calibrate_registry,
)
from repro.analysis.perfmodel.dataflow import ChannelTraffic, DataflowWalk
from repro.analysis.perfmodel.model import (
    KernelPrediction,
    PREDICTION_SCHEMA,
    Prediction,
    predict_kernel,
    predict_traces,
)

__all__ = [
    "ADVICE_SCHEMA",
    "AGREEMENT_FLOOR",
    "AdviceReport",
    "Bound",
    "BoundReport",
    "CYCLE_TOLERANCE",
    "CalibrationReport",
    "CalibrationRow",
    "Candidate",
    "ChannelTraffic",
    "DataflowWalk",
    "KernelAdvice",
    "KernelPrediction",
    "MemoryLevelMix",
    "PREDICTION_SCHEMA",
    "Prediction",
    "QUEUE_DEPTHS",
    "STAGE_SPLITS",
    "SUGGESTION_MARGIN",
    "StageBounds",
    "StageWork",
    "advise_kernel",
    "advise_workload",
    "apply_suggestion",
    "calibrate_fuzz_seed",
    "calibrate_kernel",
    "calibrate_registry",
    "compute_bounds",
    "compute_stage_work",
    "enumerate_candidates",
    "predict_kernel",
    "predict_traces",
    "queue_digraph",
]
