"""Sanitizer-vs-static race differential (``repro racediff``).

The trust chain for the happens-before engine mirrors the one
``repro corediff`` builds for the event-driven core: run the same
program through two independent implementations and require agreement.
Here the two implementations are

* the **static** engine (:mod:`repro.analysis.dataflow.hb`), which
  classifies every cross-stage SMEM access pair from the event graph
  alone, and
* the **dynamic** vector-clock sanitizer
  (:mod:`repro.fexec.sanitizer`), which observes one concrete
  execution with real addresses.

The checked direction is *no static false negatives*: every race the
sanitizer observes must be statically flagged — either as a WASP-S
race on the same buffer group and stage pair, or excused because the
static pass already reported it could not resolve an access in one of
the stages involved (WASP-S003).  The static engine is allowed to be
more conservative than one execution (races need not manifest
dynamically), so the reverse direction is not checked.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any

from repro.analysis.dataflow.hb import HBAnalysis, analyze_program
from repro.errors import ReproError
from repro.fexec.machine import run_kernel
from repro.fexec.sanitizer import SanitizerRace

RACEDIFF_SCHEMA = "repro-racediff-report-v1"

_COPY_SUFFIX = re.compile(r"__db\d*$")


def _canon_group(group: str) -> str:
    """Collapse a circular-buffer ring copy onto its base buffer group."""
    return _COPY_SUFFIX.sub("", group)


@dataclass
class RaceDiff:
    """Static-vs-sanitizer agreement for one program variant."""

    label: str
    num_static: int = 0
    num_dynamic: int = 0
    excused_stages: tuple[int, ...] = ()
    missing: list[str] = field(default_factory=list)
    skipped: str | None = None

    @property
    def ok(self) -> bool:
        return not self.missing

    def to_json(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "num_static": self.num_static,
            "num_dynamic": self.num_dynamic,
            "excused_stages": list(self.excused_stages),
            "missing": list(self.missing),
            "skipped": self.skipped,
            "ok": self.ok,
        }


def diff_races(
    label: str,
    program: Any,
    image: Any,
    launch: Any,
    analysis: HBAnalysis | None = None,
) -> RaceDiff:
    """Compare sanitizer-observed races against the static verdicts."""
    if analysis is None:
        analysis = analyze_program(program)
    static_pairs = {
        (_canon_group(group), pair)
        for group, pair in analysis.racy_stage_pairs()
    }
    excused = tuple(sorted(
        {stage for _, stage in analysis.skipped_stage_groups()}
    ))
    diff = RaceDiff(
        label=label,
        num_static=len(static_pairs),
        excused_stages=excused,
    )
    try:
        result = run_kernel(
            program, image, launch, collect_trace=False, sanitize=True
        )
    except ReproError as exc:
        # Deadlocks and runtime faults are the fuzz oracle's domain;
        # without a completed execution there is nothing to compare.
        diff.skipped = f"{type(exc).__name__}: {exc}"
        return diff
    diff.num_dynamic = len(result.races)
    for race in result.races:
        if _is_covered(race, static_pairs, excused):
            continue
        diff.missing.append(race.format())
    return diff


def _is_covered(
    race: SanitizerRace,
    static_pairs: set[tuple[str, frozenset[int]]],
    excused_stages: tuple[int, ...],
) -> bool:
    if (_canon_group(race.group), race.stage_pair) in static_pairs:
        return True
    # S003: the static pass declared an access in this stage
    # unresolvable, so races involving it are already surfaced.
    return (
        race.first_stage in excused_stages
        or race.second_stage in excused_stages
    )


def racediff_spec(spec: Any) -> list[RaceDiff]:
    """Race differential for every specializing OPTION_SETS variant of
    one fuzz spec."""
    from repro.core.compiler import WaspCompiler
    from repro.errors import CompilerError
    from repro.fuzz.generator import build_kernel
    from repro.fuzz.oracle import OPTION_SETS

    kernel = build_kernel(spec)
    diffs: list[RaceDiff] = []
    for name, options in OPTION_SETS:
        try:
            compiled = WaspCompiler(options).compile(
                kernel.program, num_warps=kernel.launch.num_warps
            )
        except (CompilerError, ReproError):
            continue
        if not compiled.specialized:
            continue
        launch = replace(
            kernel.launch,
            num_warps=kernel.launch.num_warps * compiled.num_stages,
        )
        diffs.append(diff_races(
            f"seed{spec.seed}:{name}",
            compiled.program,
            kernel.image_factory(),
            launch,
        ))
    return diffs


def racediff_registry_kernel(kernel: Any, eval_config: Any) -> list[RaceDiff]:
    """Race differential for one registry kernel under one sweep config."""
    from repro.errors import CompilerError, ResourceError
    from repro.experiments.runner import WaspCompiler, _compiler_options_for

    options = _compiler_options_for(kernel, eval_config)
    if options is None:
        return []
    try:
        compiled = WaspCompiler(options).compile(
            kernel.program, num_warps=kernel.launch.num_warps
        )
    except (CompilerError, ResourceError):
        return []
    if not compiled.specialized:
        return []
    launch = replace(
        kernel.launch,
        num_warps=kernel.launch.num_warps * compiled.num_stages,
    )
    return [diff_races(
        f"{kernel.name}:{eval_config.name}",
        compiled.program,
        kernel.image_factory(),
        launch,
    )]
