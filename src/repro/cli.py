"""Command-line interface: regenerate any paper artifact from the shell.

Examples::

    python -m repro list
    python -m repro fig14 --scale 0.5
    python -m repro table2 --benchmarks pointnet lonestar_bfs
    python -m repro fig18 --scale 0.25
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

_ARTIFACTS = {
    "table2": "Table II — median/max kernel speedups",
    "fig3": "Figure 3 — pointnet utilization timeline",
    "fig14": "Figure 14 — overall speedup (4 configurations)",
    "fig15": "Figure 15 — progressive WASP hardware features",
    "fig16": "Figure 16 — register footprint",
    "fig17": "Figure 17 — scheduling policies",
    "fig18": "Figure 18 — RFQ size sweep",
    "fig19": "Figure 19 — dynamic instruction breakdown",
    "fig20": "Figure 20 — bandwidth sensitivity",
    "fig21": "Figure 21 — L2 utilization",
    "table4": "Table IV — WASP area overhead",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WASP (HPCA 2024) reproduction: regenerate paper "
                    "tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["list", "all"],
        help="which artifact to regenerate ('list' shows descriptions)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="workload scale factor (1.0 = full size; default 0.5)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="benchmark subset (default: all twenty)",
    )
    return parser


def _run_one(artifact: str, scale: float, benchmarks) -> None:
    module = importlib.import_module(f"repro.experiments.{artifact}")
    start = time.time()
    if artifact == "table4":
        result = module.run()
    elif artifact == "fig3":
        result = module.run(scale=scale)
    else:
        result = module.run(scale=scale, benchmarks=benchmarks)
    print(result.to_text())
    print(f"\n[{artifact} regenerated in {time.time() - start:.1f}s]")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        width = max(len(k) for k in _ARTIFACTS)
        for key in sorted(_ARTIFACTS):
            print(f"  {key.ljust(width)}  {_ARTIFACTS[key]}")
        return 0
    if args.artifact == "all":
        for key in sorted(_ARTIFACTS):
            _run_one(key, args.scale, args.benchmarks)
            print()
        return 0
    _run_one(args.artifact, args.scale, args.benchmarks)
    return 0


if __name__ == "__main__":
    sys.exit(main())
