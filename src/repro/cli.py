"""Command-line interface: regenerate any paper artifact from the shell.

Examples::

    python -m repro list
    python -m repro fig14 --scale 0.5 --jobs 4
    python -m repro table2 --benchmarks pointnet lonestar_bfs
    python -m repro fig18 --scale 0.25 --no-cache
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time

_ARTIFACTS = {
    "table2": "Table II — median/max kernel speedups",
    "fig3": "Figure 3 — pointnet utilization timeline",
    "fig14": "Figure 14 — overall speedup (4 configurations)",
    "fig15": "Figure 15 — progressive WASP hardware features",
    "fig16": "Figure 16 — register footprint",
    "fig17": "Figure 17 — scheduling policies",
    "fig18": "Figure 18 — RFQ size sweep",
    "fig19": "Figure 19 — dynamic instruction breakdown",
    "fig20": "Figure 20 — bandwidth sensitivity",
    "fig21": "Figure 21 — L2 utilization",
    "table4": "Table IV — WASP area overhead",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WASP (HPCA 2024) reproduction: regenerate paper "
                    "tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["list", "all"],
        help="which artifact to regenerate ('list' shows descriptions)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="workload scale factor (1.0 = full size; default 0.5)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="benchmark subset (default: all twenty)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="trace cache directory (default: REPRO_CACHE_DIR or "
             ".repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent on-disk trace cache",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="delete all persisted trace cache entries before running",
    )
    return parser


def _run_one(artifact: str, args: argparse.Namespace) -> None:
    from repro.experiments.parallel import last_report
    from repro.experiments.reporting import format_cache_report

    module = importlib.import_module(f"repro.experiments.{artifact}")
    start = time.time()
    if artifact == "table4":
        result = module.run()
    elif artifact == "fig3":
        result = module.run(scale=args.scale, jobs=args.jobs)
    else:
        result = module.run(
            scale=args.scale, benchmarks=args.benchmarks, jobs=args.jobs
        )
    print(result.to_text())
    print(f"\n[{artifact} regenerated in {time.time() - start:.1f}s]")
    report = last_report()
    if report is not None:
        print(format_cache_report(report))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        width = max(len(k) for k in _ARTIFACTS)
        for key in sorted(_ARTIFACTS):
            print(f"  {key.ljust(width)}  {_ARTIFACTS[key]}")
        return 0

    from repro.experiments.runner import configure_global_cache
    from repro.fexec.trace_store import TraceStore

    if args.clear_cache:
        store = TraceStore(args.cache_dir)
        removed = store.clear()
        print(
            f"[cleared {removed} cached trace entries from "
            f"{store.cache_dir}]"
        )
    configure_global_cache(
        cache_dir=args.cache_dir, enabled=not args.no_cache
    )

    if args.artifact == "all":
        for key in sorted(_ARTIFACTS):
            _run_one(key, args)
            print()
        return 0
    _run_one(args.artifact, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
