"""Command-line interface: regenerate any paper artifact from the shell.

Examples::

    python -m repro list
    python -m repro fig14 --scale 0.5 --jobs 4
    python -m repro table2 --benchmarks pointnet lonestar_bfs
    python -m repro fig18 --scale 0.25 --no-cache
    python -m repro profile gemm --trace-out trace.json
    python -m repro fig14 --profile --trace-out fig14.json
    python -m repro lint --all --json-out lint.json
    python -m repro lint pointnet bert
    python -m repro validate --all --options standard --depths 2,4,8
    python -m repro validate --corpus
    python -m repro fuzz --seeds 200 --jobs 4
    python -m repro fuzz --seeds 50 --inject drop-push --expect-failures
    python -m repro fuzz --corpus
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
import time

_ARTIFACTS = {
    "table2": "Table II — median/max kernel speedups",
    "fig3": "Figure 3 — pointnet utilization timeline",
    "fig14": "Figure 14 — overall speedup (4 configurations)",
    "fig15": "Figure 15 — progressive WASP hardware features",
    "fig16": "Figure 16 — register footprint",
    "fig17": "Figure 17 — scheduling policies",
    "fig18": "Figure 18 — RFQ size sweep",
    "fig19": "Figure 19 — dynamic instruction breakdown",
    "fig20": "Figure 20 — bandwidth sensitivity",
    "fig21": "Figure 21 — L2 utilization",
    "table4": "Table IV — WASP area overhead",
}


def _add_metrics_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable telemetry and write a repro-metrics-v1 JSON "
             "snapshot of the run",
    )
    parser.add_argument(
        "--metrics-prom", default=None, metavar="PATH",
        help="also write the metrics snapshot in Prometheus text "
             "exposition format",
    )


def _metrics_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "metrics_out", None)
        or getattr(args, "metrics_prom", None)
    )


def _enable_metrics(args: argparse.Namespace) -> None:
    """Turn the registry on before any instrumented work runs."""
    if _metrics_requested(args):
        from repro.telemetry.registry import TELEMETRY

        TELEMETRY.enable()


def _write_metrics(args: argparse.Namespace, command: str) -> None:
    """Emit the end-of-run snapshot for ``--metrics-out`` flags."""
    if not _metrics_requested(args):
        return
    from repro.telemetry.registry import TELEMETRY
    from repro.telemetry.snapshot import (
        build_metrics_document,
        write_metrics_outputs,
    )
    from repro.telemetry.spans import SPANS

    doc = build_metrics_document(
        TELEMETRY.snapshot(), command=command, spans=SPANS
    )
    write_metrics_outputs(
        doc, getattr(args, "metrics_out", None),
        getattr(args, "metrics_prom", None),
    )
    if getattr(args, "metrics_out", None):
        print(f"[wrote {len(doc['metrics'])} metric series to "
              f"{args.metrics_out}]")
    if getattr(args, "metrics_prom", None):
        print(f"[wrote Prometheus metrics to {args.metrics_prom}]")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", default=None,
        help="trace cache directory (default: REPRO_CACHE_DIR or "
             ".repro_cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent on-disk trace cache",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="delete all persisted trace cache entries before running",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WASP (HPCA 2024) reproduction: regenerate paper "
                    "tables and figures.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(_ARTIFACTS) + ["list", "all"],
        help="which artifact to regenerate ('list' shows descriptions; "
             "see also the 'profile' subcommand)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="workload scale factor (1.0 = full size; default 0.5)",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=None,
        help="benchmark subset (default: all twenty)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the sweep (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the sweep's aggregate stall-cause breakdown",
    )
    parser.add_argument(
        "--profile-json", default=None, metavar="PATH",
        help="write the sweep's stall/cache statistics as JSON",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace of a representative workload (the "
             "sweep's first benchmark under WASP_GPU) for Perfetto",
    )
    _add_metrics_flags(parser)
    _add_cache_flags(parser)
    return parser


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile one workload's pipeline: stall-cause "
                    "attribution, queue occupancy, and an optional "
                    "Chrome trace for Perfetto.",
    )
    parser.add_argument(
        "benchmark",
        help="registered benchmark name (see 'repro list' artifacts, "
             "e.g. pointnet, gemm, spmv1_g3)",
    )
    parser.add_argument(
        "--kernel", default=None,
        help="kernel within the benchmark (default: every kernel)",
    )
    parser.add_argument(
        "--config", default="WASP_GPU",
        help="evaluation configuration name (default: WASP_GPU)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload scale factor (default 0.25: profiling favours "
             "small runs)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON loadable in "
             "https://ui.perfetto.dev",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the stall/queue profile as machine-readable JSON",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=None,
        help="event ring-buffer size (oldest events drop beyond this)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="also run the vector-clock SMEM race sanitizer over each "
             "kernel's functional execution and report observed races",
    )
    _add_metrics_flags(parser)
    _add_cache_flags(parser)
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static pipeline verification: compile each kernel "
                    "and run the queue-protocol, deadlock, SMEM-race and "
                    "resource passes without executing anything.  Exits "
                    "non-zero when any error-severity diagnostic fires.",
    )
    parser.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names to lint (default with --all or no names: "
             "every registered benchmark)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="lint every registered benchmark (explicit form of the "
             "no-argument default, for scripts)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload scale factor (default 0.25; findings are "
             "scale-independent for all current workloads)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the full diagnostic report as JSON (CI archives "
             "this as an artifact)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log (GitHub "
             "code scanning / IDE SARIF viewers)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings too, not only on errors",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list kernels that verified clean",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="also run the translation validator on each compile and "
             "merge its WASP-T findings into the report",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="lint the committed fuzz-corpus kernels (tests/corpus/) "
             "instead of the benchmark registry",
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="corpus directory (default: tests/corpus/)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the WASP-C/Q/D/S/R/T rule catalogue (id, severity, "
             "description) and exit without linting anything",
    )
    return parser


def build_validate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro validate",
        description="Translation validation: prove each WASP compile "
                    "equivalent to its source kernel without executing "
                    "either — symbolic effect summaries, ring-slot "
                    "residue matching, and queue value threading.  "
                    "Exits non-zero on any not-equivalent verdict OR "
                    "any abstention (an uncertified compile is a "
                    "finding, never a silent pass).",
    )
    parser.add_argument(
        "benchmarks", nargs="*",
        help="benchmark names to validate (default with --all or no "
             "names: every registered benchmark)",
    )
    parser.add_argument(
        "--all", action="store_true",
        help="validate every registered benchmark (explicit form of "
             "the no-argument default, for scripts)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload scale factor (default 0.25; verdicts are "
             "scale-independent for all current workloads)",
    )
    parser.add_argument(
        "--depths", default="2", metavar="D[,D…]",
        help="comma-separated circular-buffer ring depths to validate "
             "at (default: 2; CI sweeps 2,4,8)",
    )
    parser.add_argument(
        "--options", default="full", metavar="SET[,SET…]",
        help="comma-separated compiler option sets to cross with "
             "--depths: sw-queues, full, two-stage, tiny-queues, or "
             "'standard' for all four (default: full)",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="validate the committed fuzz corpus (tests/corpus/) "
             "instead of the registry; injected-corruption entries "
             "must be statically flagged not-equivalent",
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="corpus directory (default: tests/corpus/)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the full validation report as JSON (CI archives "
             "this as an artifact)",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list compiles that certified equivalent",
    )
    return parser


def build_advise_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro advise",
        description="Analytical pipeline advisor: predict each kernel's "
                    "cycles with the static performance model, enumerate "
                    "candidate configurations (queue depths, stage "
                    "splits, TMA on/off), and suggest an options delta "
                    "only when the predicted gain clears the margin.  "
                    "No candidate is simulated; one simulation of the "
                    "default configuration calibrates each row.",
    )
    parser.add_argument(
        "benchmarks", nargs="+",
        help="registered benchmark name(s) to advise on",
    )
    parser.add_argument(
        "--config", default="WASP_GPU",
        help="evaluation configuration name (default: WASP_GPU)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload scale factor (default 0.25)",
    )
    parser.add_argument(
        "--margin", type=float, default=None,
        help="minimum predicted relative gain before suggesting a "
             "non-default configuration (default: the calibrated "
             "SUGGESTION_MARGIN)",
    )
    parser.add_argument(
        "--no-simulate", action="store_true",
        help="skip the per-kernel calibration simulation (pure static "
             "mode; rows carry no predicted-vs-simulated error)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the advise report as JSON "
             "(schema repro-advise-report-v1)",
    )
    _add_metrics_flags(parser)
    _add_cache_flags(parser)
    return parser


def run_advise(argv: list[str]) -> int:
    """``repro advise <workload>``: analytical configuration advice."""
    args = build_advise_parser().parse_args(argv)
    _configure_cache(args)
    _enable_metrics(args)

    from repro.analysis.perfmodel import SUGGESTION_MARGIN, advise_workload
    from repro.workloads.registry import all_benchmarks

    known = set(all_benchmarks())
    unknown = [n for n in args.benchmarks if n not in known]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {unknown}; choose from: "
            + ", ".join(sorted(known))
        )
    config = _named_config(args.config)
    margin = args.margin if args.margin is not None else SUGGESTION_MARGIN

    start = time.time()
    reports = []
    for name in args.benchmarks:
        report = advise_workload(
            name,
            config,
            scale=args.scale,
            margin=margin,
            simulate=not args.no_simulate,
        )
        reports.append(report)
        print(_advise_text(report))
    if args.json_out:
        doc = (
            reports[0].to_json()
            if len(reports) == 1
            else {
                "schema": "repro-advise-report-v1",
                "reports": [r.to_json() for r in reports],
            }
        )
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
        print(f"[wrote advise JSON to {args.json_out}]")
    total = sum(len(r.kernels) for r in reports)
    print(f"[advised {total} kernel(s) in {time.time() - start:.1f}s]")
    _write_metrics(args, "advise")
    return 0


def _advise_text(report) -> str:
    """Human-readable rendering of one workload's advice."""
    lines = [f"advise: {report.workload} [{report.config_name}]"]
    for advice in report.kernels:
        lines.append(f"  {advice.kernel_name}:")
        lines.append(
            f"    predicted {advice.default_cycles:.0f} cycles; "
            f"bottleneck stage "
            f"{advice.default_prediction.bottleneck_stage} "
            f"({advice.default_prediction.bottleneck_cause or 'none'})"
        )
        if advice.simulated_cycles is not None:
            error = advice.predicted_error
            lines.append(
                f"    simulated {advice.simulated_cycles:.0f} cycles "
                f"(model error {error:.1%})"
            )
        for line in advice.default_prediction.explanation:
            lines.append(f"      {line}")
        if advice.suggestion is None:
            lines.append("    suggestion: keep the default options")
            if advice.rejected_suggestion is not None:
                from repro.core.compiler.pipeline import options_delta

                delta = options_delta(
                    advice.default_options,
                    advice.rejected_suggestion.options,
                )
                lines.append(
                    f"      (withheld {delta}: predicted faster but "
                    f"simulated {advice.simulated_suggested_cycles:.0f} "
                    f"cycles, slower than the default)"
                )
        else:
            from repro.core.compiler.pipeline import options_delta

            delta = options_delta(
                advice.default_options, advice.suggestion.options
            )
            lines.append(
                f"    suggestion: {delta} "
                f"(predicted {advice.predicted_gain:.1%} faster)"
            )
            if advice.simulated_suggested_cycles is not None:
                lines.append(
                    f"      verified: simulated "
                    f"{advice.simulated_suggested_cycles:.0f} cycles "
                    f"under the suggestion"
                )
    return "\n".join(lines)


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential fuzzing: random pipeline kernels run "
                    "unspecialized and after WaspCompiler stage-splitting "
                    "must produce bit-identical memory, consistent "
                    "instruction accounting, and obey the simulator's "
                    "metamorphic timing invariants.  Failing seeds are "
                    "shrunk to minimal repros.  Exits non-zero on any "
                    "failure (inverted by --expect-failures).",
    )
    parser.add_argument(
        "--seeds", type=int, default=100,
        help="number of seeds to fuzz (default 100)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed; the run covers seed-base .. seed-base+seeds-1",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or 1); results are "
             "identical for any value",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without minimizing them first",
    )
    parser.add_argument(
        "--no-metamorphic", action="store_true",
        help="skip the simulator timing invariants (differential "
             "functional oracle only)",
    )
    parser.add_argument(
        "--inject", default=None, metavar="MUTATION",
        help="corrupt every specialized program with a named mutation "
             "(drop-pop, drop-push, arrive-to-wait) — the oracle "
             "self-test; combine with --expect-failures",
    )
    parser.add_argument(
        "--expect-failures", action="store_true",
        help="invert the exit code: succeed only when failures were "
             "caught (CI uses this to prove the oracle detects "
             "injected bugs)",
    )
    parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop dispatching new seeds after this much wall-clock "
             "time (the nightly CI budget)",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="replay every committed corpus entry instead of fuzzing "
             "fresh seeds",
    )
    parser.add_argument(
        "--save-corpus", action="store_true",
        help="persist (minimized) failures as corpus entries",
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="corpus directory (default: tests/corpus/)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the fuzz report as machine-readable JSON",
    )
    _add_metrics_flags(parser)
    _add_cache_flags(parser)
    return parser


def run_fuzz_cli(argv: list[str]) -> int:
    """``repro fuzz``: the differential fuzzing harness."""
    args = build_fuzz_parser().parse_args(argv)
    _configure_cache(args)
    _enable_metrics(args)

    from pathlib import Path

    from repro.fuzz import run_fuzz
    from repro.fuzz.mutate import MUTATIONS

    if args.inject is not None and args.inject not in MUTATIONS:
        raise SystemExit(
            f"unknown mutation {args.inject!r}; choose from: "
            + ", ".join(sorted(MUTATIONS))
        )
    corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None

    if args.corpus:
        return _replay_corpus(corpus_dir, args.json_out)

    report = run_fuzz(
        seeds=args.seeds,
        seed_base=args.seed_base,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        inject=args.inject,
        metamorphic=not args.no_metamorphic,
        time_budget=args.time_budget,
        save_corpus=args.save_corpus,
        corpus_dir=corpus_dir,
    )
    print("\n".join(report.summary_lines()))
    for path in report.corpus_paths:
        print(f"[saved corpus entry {path}]")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"[wrote fuzz JSON to {args.json_out}]")
    _write_metrics(args, "fuzz")
    failed = bool(report.failures) or report.seeds_run == 0
    if args.expect_failures:
        if failed:
            print("[expected failures: oracle caught the injected bug]")
            return 0
        print("[expected failures but every seed passed — the oracle "
              "missed the injected bug]")
        return 1
    return 1 if failed else 0


def _replay_corpus(corpus_dir, json_out: str | None) -> int:
    """Replay every committed corpus entry against its expectation."""
    from repro.fuzz.corpus import load_corpus, replay_entry

    entries = load_corpus(corpus_dir)
    if not entries:
        print("corpus: no entries found")
        return 0
    bad = 0
    docs = []
    start = time.time()
    for entry in entries:
        failures = replay_entry(entry)
        if entry.expect == "pass":
            ok = not failures
            detail = "; ".join(f.summary() for f in failures)
        else:
            want = entry.expect.split(":", 1)[1]
            ok = any(f.check == want for f in failures)
            detail = f"expected a {want} failure, got " + (
                ", ".join(sorted({f.check for f in failures})) or "a pass"
            )
        status = "ok" if ok else "VIOLATED"
        print(f"  {entry.name}: {status}" + ("" if ok else f" ({detail})"))
        docs.append({"entry": entry.name, "ok": ok,
                     "failures": [f.to_json() for f in failures]})
        bad += 0 if ok else 1
    print(f"corpus: {len(entries) - bad}/{len(entries)} entries hold "
          f"({time.time() - start:.1f}s)")
    if json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump({"entries": docs}, handle, indent=2)
        print(f"[wrote corpus JSON to {json_out}]")
    return 1 if bad else 0


def build_corediff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro corediff",
        description="Reference-vs-event SM core differential: replay "
                    "the fuzz corpus and/or the kernel registry through "
                    "both simulator cores and demand bit-identical "
                    "results (CI's core-differential gate).",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="diff the committed fuzz corpus specs (default: corpus "
             "and registry when neither flag is given)",
    )
    parser.add_argument(
        "--registry", action="store_true",
        help="diff every registry kernel under the standard "
             "evaluation configs",
    )
    parser.add_argument(
        "--seeds", type=int, default=0, metavar="N",
        help="additionally diff N freshly generated fuzz specs",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, metavar="B",
        help="first seed for --seeds (default 0)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="registry problem-size scale (default 0.25)",
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="corpus directory (default: tests/corpus/)",
    )
    _add_depths_flag(parser)
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the per-comparison report as JSON",
    )
    _add_metrics_flags(parser)
    _add_cache_flags(parser)
    return parser


def _add_depths_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--depths", default="2", metavar="N[,N...]",
        help="circular-buffer pipeline depths for the registry sweep "
             "(comma-separated, default 2; deeper rings re-derive "
             "every compiler-enabled config)",
    )


def _depth_configs(configs: list, depths: list[int]) -> list:
    """Expand evaluation configs across circular-buffer depths.

    Depth 2 keeps the configs verbatim (the historical sweep); deeper
    rings re-derive each compiler-enabled config with
    ``pipeline_depth=d``.  Baseline-style configs have no compiler to
    deepen and only appear at depth 2.
    """
    from dataclasses import replace

    out = []
    for depth in depths:
        for config in configs:
            if depth == 2:
                out.append(config)
            elif config.compiler is not None:
                out.append(replace(
                    config,
                    name=f"{config.name}@d{depth}",
                    compiler=replace(
                        config.compiler, pipeline_depth=depth
                    ),
                ))
    return out


def run_corediff(argv: list[str]) -> int:
    """``repro corediff``: the event-core exactness gate."""
    args = build_corediff_parser().parse_args(argv)
    _configure_cache(args)
    _enable_metrics(args)

    from pathlib import Path

    from repro.fuzz.spec import generate_spec
    from repro.sim.differential import diff_registry_kernel, diff_spec

    do_corpus = args.corpus or not (args.corpus or args.registry
                                    or args.seeds)
    do_registry = args.registry or not (args.corpus or args.registry
                                        or args.seeds)
    start = time.time()
    diffs = []

    if do_corpus:
        from repro.fuzz.corpus import load_corpus

        corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None
        entries = load_corpus(corpus_dir)
        for entry in entries:
            diffs.extend(diff_spec(entry.spec))
        print(f"[corpus: {len(entries)} entries diffed]")

    for seed in range(args.seed_base, args.seed_base + args.seeds):
        diffs.extend(diff_spec(generate_spec(seed)))
    if args.seeds:
        print(f"[seeds: {args.seeds} specs diffed]")

    if do_registry:
        from repro.experiments.configs import standard_configs
        from repro.workloads.registry import all_benchmarks, get_benchmark

        configs = _depth_configs(
            standard_configs(),
            [int(d) for d in args.depths.split(",")],
        )
        count = 0
        for name in all_benchmarks():
            bench = get_benchmark(name, scale=args.scale)
            for kernel in bench.kernels:
                for config in configs:
                    diffs.extend(diff_registry_kernel(kernel, config))
                    count += 1
        print(f"[registry: {count} kernel/config pairs diffed]")

    bad = [d for d in diffs if not d.ok]
    for diff in bad:
        print(f"MISMATCH {diff.label}")
        for line in diff.mismatches:
            print(f"  {line}")
    ref_wall = sum(d.ref_wall_s for d in diffs)
    event_wall = sum(d.event_wall_s for d in diffs)
    print(_corediff_perf_text(diffs))
    print(
        f"corediff: {len(diffs) - len(bad)}/{len(diffs)} comparisons "
        f"bit-identical ({time.time() - start:.1f}s; reference "
        f"{ref_wall:.2f}s vs event {event_wall:.2f}s"
        + (f", event {ref_wall / event_wall:.2f}x faster overall)"
           if event_wall > 0 else ")")
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "comparisons": [d.to_json() for d in diffs],
                    "ref_wall_s": round(ref_wall, 4),
                    "event_wall_s": round(event_wall, 4),
                    "overall_speedup": round(
                        ref_wall / event_wall, 3
                    ) if event_wall > 0 else 0.0,
                },
                handle, indent=2,
            )
        print(f"[wrote corediff JSON to {args.json_out}]")
    _write_metrics(args, "corediff")
    return 1 if bad or not diffs else 0


def _corediff_perf_text(diffs) -> str:
    """Per-kernel wall-time table: the slowest event-core comparisons
    with the per-comparison speedup over the reference core."""
    from repro.experiments.reporting import format_table

    slowest = sorted(
        diffs, key=lambda d: d.event_wall_s, reverse=True
    )[:10]
    rows = [
        [
            d.label,
            f"{d.ref_wall_s * 1e3:.1f}",
            f"{d.event_wall_s * 1e3:.1f}",
            f"{d.speedup:.2f}x",
            d.event_issued,
            d.event_events,
        ]
        for d in slowest
    ]
    return format_table(
        ["comparison", "ref ms", "event ms", "speedup", "issued",
         "events"],
        rows,
        title="Per-core wall time (slowest 10 comparisons)",
    )


def build_racediff_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro racediff",
        description="Static-vs-dynamic race differential: run the fuzz "
                    "corpus and/or the kernel registry with the "
                    "vector-clock SMEM sanitizer attached and require "
                    "every observed race to be flagged by the static "
                    "happens-before engine (CI's race-analysis trust "
                    "gate, the analysis counterpart of corediff).",
    )
    parser.add_argument(
        "--corpus", action="store_true",
        help="diff the committed fuzz corpus specs (default: corpus "
             "and registry when neither flag is given)",
    )
    parser.add_argument(
        "--registry", action="store_true",
        help="diff every registry kernel under the standard "
             "evaluation configs",
    )
    parser.add_argument(
        "--seeds", type=int, default=0, metavar="N",
        help="additionally diff N freshly generated fuzz specs",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, metavar="B",
        help="first seed for --seeds (default 0)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="registry problem-size scale (default 0.25)",
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="corpus directory (default: tests/corpus/)",
    )
    _add_depths_flag(parser)
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the per-comparison report as JSON",
    )
    _add_metrics_flags(parser)
    _add_cache_flags(parser)
    return parser


def run_racediff(argv: list[str]) -> int:
    """``repro racediff``: the sanitizer-vs-static race gate."""
    args = build_racediff_parser().parse_args(argv)
    _configure_cache(args)
    _enable_metrics(args)

    from pathlib import Path

    from repro.analysis.racediff import (
        RACEDIFF_SCHEMA,
        racediff_registry_kernel,
        racediff_spec,
    )
    from repro.fuzz.spec import generate_spec

    do_corpus = args.corpus or not (args.corpus or args.registry
                                    or args.seeds)
    do_registry = args.registry or not (args.corpus or args.registry
                                        or args.seeds)
    start = time.time()
    diffs = []

    if do_corpus:
        from repro.fuzz.corpus import load_corpus

        corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None
        entries = load_corpus(corpus_dir)
        # Injected-corruption entries replay a deliberately broken
        # program; the fuzz oracle owns those expectations.
        specs = [e.spec for e in entries if e.inject is None]
        for spec in specs:
            diffs.extend(racediff_spec(spec))
        print(f"[corpus: {len(specs)} specs diffed]")

    for seed in range(args.seed_base, args.seed_base + args.seeds):
        diffs.extend(racediff_spec(generate_spec(seed)))
    if args.seeds:
        print(f"[seeds: {args.seeds} specs diffed]")

    if do_registry:
        from repro.experiments.configs import standard_configs
        from repro.workloads.registry import all_benchmarks, get_benchmark

        configs = _depth_configs(
            standard_configs(),
            [int(d) for d in args.depths.split(",")],
        )
        count = 0
        for name in all_benchmarks():
            bench = get_benchmark(name, scale=args.scale)
            for kernel in bench.kernels:
                for config in configs:
                    diffs.extend(
                        racediff_registry_kernel(kernel, config)
                    )
                    count += 1
        print(f"[registry: {count} kernel/config pairs diffed]")

    bad = [d for d in diffs if not d.ok]
    for diff in bad:
        print(f"STATIC FALSE NEGATIVE {diff.label}")
        for line in diff.missing:
            print(f"  {line}")
    skipped = sum(1 for d in diffs if d.skipped)
    dynamic = sum(d.num_dynamic for d in diffs)
    print(
        f"racediff: {len(diffs) - len(bad)}/{len(diffs)} comparisons "
        f"agree ({dynamic} dynamic race(s) observed, {skipped} "
        f"skipped; {time.time() - start:.1f}s)"
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "schema": RACEDIFF_SCHEMA,
                    "comparisons": [d.to_json() for d in diffs],
                },
                handle, indent=2,
            )
        print(f"[wrote racediff JSON to {args.json_out}]")
    _write_metrics(args, "racediff")
    return 1 if bad or not diffs else 0


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Telemetry smoke run: execute a small sweep with "
                    "the metrics registry enabled and emit the "
                    "repro-metrics-v1 snapshot (JSON and/or Prometheus "
                    "text format).  Covers the event core, cache, "
                    "process-pool and pass-timing metric families.",
    )
    parser.add_argument(
        "--benchmarks", nargs="*", default=["pointnet"],
        help="benchmarks to sweep for the snapshot (default: pointnet)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.25,
        help="workload scale factor (default 0.25)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or 1); invariant "
             "counters are identical for any value",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the repro-metrics-v1 JSON snapshot here",
    )
    parser.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="write the Prometheus text exposition here",
    )
    _add_cache_flags(parser)
    return parser


def run_metrics(argv: list[str]) -> int:
    """``repro metrics``: telemetry-enabled smoke sweep + snapshot."""
    args = build_metrics_parser().parse_args(argv)
    _configure_cache(args)

    from repro.experiments.configs import standard_configs
    from repro.experiments.parallel import run_sweep
    from repro.telemetry.registry import TELEMETRY
    from repro.telemetry.snapshot import (
        build_metrics_document,
        missing_families,
        render_prometheus,
        validate_metrics_document,
        write_metrics_outputs,
    )
    from repro.telemetry.spans import SPANS
    from repro.workloads.registry import all_benchmarks

    known = set(all_benchmarks())
    unknown = [n for n in args.benchmarks if n not in known]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s) {unknown}; choose from: "
            + ", ".join(sorted(known))
        )

    TELEMETRY.enable()
    start = time.time()
    configs = [
        c for c in standard_configs()
        if c.name in ("BASELINE", "WASP_GPU")
    ] or standard_configs()[:1]
    run_sweep(args.benchmarks, args.scale, configs, jobs=args.jobs)

    doc = build_metrics_document(
        TELEMETRY.snapshot(), command="metrics", spans=SPANS
    )
    problems = validate_metrics_document(doc)
    problems += [
        f"missing required metric family {prefix}*"
        for prefix in missing_families(doc)
    ]
    write_metrics_outputs(doc, args.json_out, args.prom_out)
    if args.json_out:
        print(f"[wrote metrics JSON to {args.json_out}]")
    if args.prom_out:
        print(f"[wrote Prometheus metrics to {args.prom_out}]")
    if not args.json_out and not args.prom_out:
        print(render_prometheus(doc), end="")
    print(
        f"metrics: {len(doc['metrics'])} series, "
        f"{doc['spans']['count']} spans across "
        f"{len(doc['spans']['subsystems'])} subsystems "
        f"({time.time() - start:.1f}s)"
    )
    for problem in problems:
        print(f"INVALID: {problem}")
    return 1 if problems else 0


def build_bench_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench report",
        description="Perf-trajectory dashboard: read every committed "
                    "BENCH_*.json (plus an optional freshly measured "
                    "run) and render a per-benchmark regression table "
                    "on calibration-normalized wall-clock.",
    )
    parser.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory holding the BENCH_*.json files (default: .)",
    )
    parser.add_argument(
        "--current", default=None, metavar="PATH",
        help="a freshly measured perf-harness document to diff "
             "against the committed baseline (write one with "
             "'python -m benchmarks.perf.run --output PATH')",
    )
    parser.add_argument(
        "--baseline", default="BENCH_core", metavar="STEM",
        help="committed file to diff against (default: BENCH_core)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="normalized regression threshold (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="write the repro-bench-report-v1 document as JSON",
    )
    return parser


def run_bench_report(argv: list[str]) -> int:
    """``repro bench report``: the perf-trajectory dashboard."""
    args = build_bench_report_parser().parse_args(argv)

    from repro.telemetry.trajectory import (
        build_bench_report,
        render_bench_report,
    )

    current = None
    if args.current:
        with open(args.current, "r", encoding="utf-8") as handle:
            current = json.load(handle)
    report = build_bench_report(
        directory=args.dir,
        current=current,
        baseline_name=args.baseline,
        tolerance=args.tolerance,
    )
    if not report["rows"]:
        print(f"bench report: no BENCH_*.json files under {args.dir}")
        return 1
    print(render_bench_report(report))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"[wrote bench report JSON to {args.json_out}]")
    return 1 if report["summary"]["regressions"] else 0


def run_lint(argv: list[str]) -> int:
    """``repro lint [benchmarks…]``: registry-wide static verification."""
    args = build_lint_parser().parse_args(argv)

    if args.list_rules:
        from repro.analysis.diagnostics import rules_table_lines

        print("\n".join(rules_table_lines()))
        return 0

    start = time.time()
    if args.corpus:
        from pathlib import Path

        from repro.analysis.lint import lint_corpus

        corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None
        result = lint_corpus(corpus_dir, validate=args.validate)
    else:
        from repro.analysis.lint import lint_benchmarks
        from repro.workloads.registry import all_benchmarks

        known = set(all_benchmarks())
        names = (
            None if args.all or not args.benchmarks else args.benchmarks
        )
        if names:
            unknown = [n for n in names if n not in known]
            if unknown:
                raise SystemExit(
                    f"unknown benchmark(s) {unknown}; choose from: "
                    + ", ".join(sorted(known))
                )
        result = lint_benchmarks(
            names, scale=args.scale, validate=args.validate
        )
    print(result.to_text(verbose=args.verbose))
    print(f"[linted {len(result.kernels)} kernel(s) in "
          f"{time.time() - start:.1f}s]")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=2)
        print(f"[wrote lint JSON to {args.json_out}]")
    if args.sarif:
        from repro.analysis.sarif import sarif_from_lint

        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(sarif_from_lint(result), handle, indent=2)
        print(f"[wrote SARIF log to {args.sarif}]")
    if not result.clean:
        return 1
    if args.strict and result.num_warnings:
        return 1
    return 0


def run_validate(argv: list[str]) -> int:
    """``repro validate``: execution-free equivalence certificates."""
    args = build_validate_parser().parse_args(argv)

    start = time.time()
    if args.corpus:
        from pathlib import Path

        from repro.analysis.lint import validate_corpus

        corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None
        result = validate_corpus(corpus_dir)
    else:
        from repro.analysis.lint import (
            standard_option_sets,
            validate_benchmarks,
        )
        from repro.workloads.registry import all_benchmarks

        known = set(all_benchmarks())
        names = (
            None if args.all or not args.benchmarks else args.benchmarks
        )
        if names:
            unknown = [n for n in names if n not in known]
            if unknown:
                raise SystemExit(
                    f"unknown benchmark(s) {unknown}; choose from: "
                    + ", ".join(sorted(known))
                )
        try:
            depths = tuple(
                int(d) for d in args.depths.split(",") if d
            )
        except ValueError:
            raise SystemExit(f"bad --depths value {args.depths!r}")
        standard = dict(standard_option_sets())
        wanted = args.options.split(",")
        if "standard" in wanted:
            wanted = list(standard)
        unknown_sets = [w for w in wanted if w not in standard]
        if unknown_sets:
            raise SystemExit(
                f"unknown option set(s) {unknown_sets}; choose from: "
                + ", ".join([*standard, "standard"])
            )
        result = validate_benchmarks(
            names,
            scale=args.scale,
            option_sets=[(w, standard[w]) for w in wanted],
            depths=depths,
        )
    print(result.to_text(verbose=args.verbose))
    print(f"[validated {len(result.kernels)} compile(s) in "
          f"{time.time() - start:.1f}s]")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=2)
        print(f"[wrote validation JSON to {args.json_out}]")
    if args.sarif:
        from repro.analysis.sarif import sarif_from_validate

        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(sarif_from_validate(result), handle, indent=2)
        print(f"[wrote SARIF log to {args.sarif}]")
    return 0 if result.clean else 1


def _configure_cache(args: argparse.Namespace) -> None:
    from repro.experiments.runner import configure_global_cache
    from repro.fexec.trace_store import TraceStore

    if args.clear_cache:
        store = TraceStore(args.cache_dir)
        removed = store.clear()
        print(
            f"[cleared {removed} cached trace entries from "
            f"{store.cache_dir}]"
        )
    configure_global_cache(
        cache_dir=args.cache_dir, enabled=not args.no_cache
    )


def _named_config(name: str):
    from repro.experiments.configs import standard_configs

    for config in standard_configs():
        if config.name == name:
            return config
    names = ", ".join(c.name for c in standard_configs())
    raise SystemExit(f"unknown config {name!r}; choose from: {names}")


def run_profile(argv: list[str]) -> int:
    """``repro profile <benchmark>``: per-kernel pipeline profiles."""
    args = build_profile_parser().parse_args(argv)
    _configure_cache(args)
    _enable_metrics(args)

    from repro.experiments.runner import GLOBAL_CACHE, profile_kernel
    from repro.profiling import report as profreport
    from repro.profiling.chrometrace import write_chrome_trace
    from repro.telemetry.spans import SPANS
    from repro.workloads import get_benchmark

    config = _named_config(args.config)
    try:
        bench = get_benchmark(args.benchmark, args.scale)
    except KeyError:
        raise SystemExit(f"unknown benchmark {args.benchmark!r}")
    kernels = bench.kernels
    if args.kernel is not None:
        kernels = [bench.kernel(args.kernel)]

    before = GLOBAL_CACHE.stats.snapshot()
    sections = []
    docs = []
    start = time.time()
    for kernel in kernels:
        result, profiler = profile_kernel(
            kernel, config, trace_capacity=args.trace_capacity
        )
        label = f"{bench.name}/{kernel.name}"
        title = (
            f"Stall breakdown: {label} [{config.name}]"
            + (" (specialized)" if result.used_specialized else "")
        )
        print(profreport.profile_text(result.sim, title=title))
        print(_verifier_summary(result, kernel))
        if args.sanitize:
            print(_sanitize_summary(kernel, config))
        if profiler.dropped_events:
            print(
                f"note: ring buffer dropped {profiler.dropped_events} "
                f"of {profiler.events_recorded} trace events "
                f"(raise --trace-capacity to keep more)"
            )
        print()
        sections.append((label, profiler))
        docs.append(
            profreport.profile_json(result.sim, config_name=config.name)
        )

    cache_delta = GLOBAL_CACHE.stats.since(before)
    if args.trace_out:
        trace = write_chrome_trace(
            args.trace_out, sections,
            metadata={"benchmark": bench.name, "config": config.name,
                      "scale": args.scale},
            spans=SPANS,
        )
        print(
            f"[wrote {len(trace['traceEvents'])} trace events to "
            f"{args.trace_out}; open in https://ui.perfetto.dev]"
        )
    if args.json_out:
        doc = {
            "schema": "repro-profile-report-v1",
            "benchmark": bench.name,
            "config": config.name,
            "scale": args.scale,
            "kernels": docs,
            "trace_cache": profreport.cache_stats_json(cache_delta),
        }
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
        print(f"[wrote profile JSON to {args.json_out}]")
    print(f"[profiled {len(kernels)} kernel(s) in "
          f"{time.time() - start:.1f}s]")
    _write_metrics(args, "profile")
    return 0


def _sanitize_summary(kernel, config) -> str:
    """Dynamic SMEM-race report for one profiled kernel.

    Re-runs the kernel functionally with the vector-clock sanitizer
    attached (the cached traces were generated without it), preferring
    the specialized program when the config's compiler produces one.
    """
    from dataclasses import replace

    from repro.errors import ReproError
    from repro.experiments.runner import (
        WaspCompiler,
        _compiler_options_for,
    )
    from repro.fexec.machine import run_kernel

    program, launch = kernel.program, kernel.launch
    options = _compiler_options_for(kernel, config)
    if options is not None:
        try:
            compiled = WaspCompiler(options).compile(
                kernel.program, num_warps=kernel.launch.num_warps
            )
        except ReproError:
            compiled = None
        if compiled is not None and compiled.specialized:
            program = compiled.program
            launch = replace(
                launch,
                num_warps=launch.num_warps * compiled.num_stages,
            )
    try:
        result = run_kernel(
            program, kernel.image_factory(), launch,
            collect_trace=False, sanitize=True,
        )
    except ReproError as exc:
        return f"sanitizer: run failed ({type(exc).__name__}: {exc})"
    if not result.races:
        return "sanitizer: no SMEM races observed"
    lines = [f"sanitizer: {len(result.races)} race(s) observed"]
    lines.extend(f"  {race.format()}" for race in result.races)
    return "\n".join(lines)


def _verifier_summary(result, kernel) -> str:
    """One-line static-verifier status for a profiled kernel.

    The compiler already verified (and would have raised) during
    compilation; re-running the passes here is cheap and also covers
    kernels that fell back to the original program.
    """
    from repro.analysis import verify_program

    compile_result = getattr(result, "compile_result", None)
    program = (
        compile_result.program if compile_result is not None
        else kernel.program
    )
    return verify_program(program).summary_line()


def _run_one(artifact: str, args: argparse.Namespace) -> None:
    from repro.experiments.parallel import last_report
    from repro.experiments.reporting import format_cache_report

    module = importlib.import_module(f"repro.experiments.{artifact}")
    start = time.time()
    if artifact == "table4":
        result = module.run()
    elif artifact == "fig3":
        result = module.run(scale=args.scale, jobs=args.jobs)
    else:
        result = module.run(
            scale=args.scale, benchmarks=args.benchmarks, jobs=args.jobs
        )
    print(result.to_text())
    print(f"\n[{artifact} regenerated in {time.time() - start:.1f}s]")
    if artifact != "table4":
        from repro.analysis.lint import lint_benchmarks

        lint = lint_benchmarks(args.benchmarks, scale=args.scale)
        line = lint.summary_line()
        if not lint.clean:
            line += "  (details: python -m repro lint)"
        print(line)
    report = last_report()
    if report is not None:
        print(format_cache_report(report))
        if getattr(args, "profile", False):
            from repro.profiling.report import sweep_stalls_text

            print(sweep_stalls_text(report))
        if getattr(args, "profile_json", None):
            from repro.profiling.report import sweep_stalls_json

            doc = sweep_stalls_json(report)
            doc["artifact"] = artifact
            with open(args.profile_json, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2)
            print(f"[wrote sweep profile JSON to {args.profile_json}]")
    if getattr(args, "trace_out", None):
        _write_representative_trace(args)


def _write_representative_trace(args: argparse.Namespace) -> None:
    """``--trace-out`` on an artifact command: trace one workload.

    Sweeps time dozens of kernel×config pairs unprofiled; a full trace
    of all of them would be unreadable, so this profiles the sweep's
    first benchmark (default: pointnet, the paper's Figure 3 subject)
    under WASP_GPU at the same scale and writes that.
    """
    from repro.experiments.runner import profile_kernel
    from repro.profiling.chrometrace import write_chrome_trace
    from repro.workloads import get_benchmark

    name = args.benchmarks[0] if args.benchmarks else "pointnet"
    bench = get_benchmark(name, args.scale)
    config = _named_config("WASP_GPU")
    sections = []
    for kernel in bench.kernels:
        _result, profiler = profile_kernel(kernel, config)
        sections.append((f"{bench.name}/{kernel.name}", profiler))
    trace = write_chrome_trace(
        args.trace_out, sections,
        metadata={"benchmark": bench.name, "config": config.name,
                  "scale": args.scale},
    )
    print(
        f"[wrote {len(trace['traceEvents'])} trace events for "
        f"{bench.name} to {args.trace_out}]"
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return run_profile(argv[1:])
    if argv and argv[0] == "lint":
        return run_lint(argv[1:])
    if argv and argv[0] == "validate":
        return run_validate(argv[1:])
    if argv and argv[0] == "fuzz":
        return run_fuzz_cli(argv[1:])
    if argv and argv[0] == "advise":
        return run_advise(argv[1:])
    if argv and argv[0] == "corediff":
        return run_corediff(argv[1:])
    if argv and argv[0] == "racediff":
        return run_racediff(argv[1:])
    if argv and argv[0] == "metrics":
        return run_metrics(argv[1:])
    if argv and argv[0] == "bench":
        if argv[1:2] == ["report"]:
            return run_bench_report(argv[2:])
        raise SystemExit("usage: repro bench report [--help]")
    args = build_parser().parse_args(argv)
    if args.artifact == "list":
        width = max(len(k) for k in _ARTIFACTS)
        for key in sorted(_ARTIFACTS):
            print(f"  {key.ljust(width)}  {_ARTIFACTS[key]}")
        print("\n  profile   Pipeline profiler "
              "(repro profile --help)")
        print("  lint      Static pipeline verifier "
              "(repro lint --help)")
        print("  validate  Translation validation certificates "
              "(repro validate --help)")
        print("  fuzz      Differential fuzzing harness "
              "(repro fuzz --help)")
        print("  advise    Analytical pipeline advisor "
              "(repro advise --help)")
        print("  corediff  Reference-vs-event core differential "
              "(repro corediff --help)")
        print("  racediff  Sanitizer-vs-static race differential "
              "(repro racediff --help)")
        print("  metrics   Telemetry snapshot smoke run "
              "(repro metrics --help)")
        print("  bench     Perf-trajectory dashboard "
              "(repro bench report --help)")
        return 0

    _configure_cache(args)
    _enable_metrics(args)

    if args.artifact == "all":
        for key in sorted(_ARTIFACTS):
            _run_one(key, args)
            print()
        _write_metrics(args, "all")
        return 0
    _run_one(args.artifact, args)
    _write_metrics(args, args.artifact)
    return 0


if __name__ == "__main__":
    sys.exit(main())
