"""WASP (HPCA 2024) reproduction.

Public API surface:

* :mod:`repro.isa` — the SASS-like kernel IR and builder DSL.
* :mod:`repro.core` — the WASP compiler and hardware models.
* :mod:`repro.fexec` — functional execution and trace generation.
* :mod:`repro.sim` — the cycle-level GPU timing simulator.
* :mod:`repro.workloads` — the 20 Table-II benchmark models.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core.compiler import WaspCompiler, WaspCompilerOptions
from repro.fexec import LaunchConfig, MemoryImage, run_kernel
from repro.isa import ProgramBuilder
from repro.sim import GPUConfig, simulate_kernel, simulate_program

__version__ = "1.0.0"

__all__ = [
    "GPUConfig",
    "LaunchConfig",
    "MemoryImage",
    "ProgramBuilder",
    "WaspCompiler",
    "WaspCompilerOptions",
    "__version__",
    "run_kernel",
    "simulate_kernel",
    "simulate_program",
]
