"""The cooperative functional machine.

Warps of a thread block are interpreted round-robin; each warp executes
until it blocks on a queue pop with no data, a barrier wait that cannot
pass yet, or finishes with ``EXIT``.  Register values are warp-wide
float64 vectors, so gather indices and coalescing behaviour are computed
from real per-lane values.

The machine emits :class:`~repro.fexec.trace.DynamicInstr` records that
the timing simulator replays (:mod:`repro.sim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DeadlockError, ExecutionError
from repro.fexec.barriers import ArriveWaitBarrier, SyncBarrier
from repro.fexec.launch import LaunchConfig
from repro.fexec.memory_image import MemoryImage, sectors_of
from repro.fexec.queues import FunctionalQueue
from repro.fexec.sanitizer import SanitizerRace, SmemSanitizer
from repro.fexec.trace import PRED_BASE, DynamicInstr, KernelTrace, WarpTrace
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.operands import (
    Immediate,
    Operand,
    Predicate,
    QueueRef,
    Register,
    SpecialReg,
    SpecialRegister,
)
from repro.isa.program import Program

_MAX_DYNAMIC_INSTRS = 5_000_000

_CMP_FUNCS = {
    "lt": np.less,
    "le": np.less_equal,
    "gt": np.greater,
    "ge": np.greater_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


def _flat_reg(op: Register | Predicate) -> int:
    if isinstance(op, Predicate):
        return PRED_BASE + op.index
    return op.index


@dataclass
class _WarpState:
    """Mutable per-warp interpreter state."""

    warp_id: int
    pipe_stage_id: int
    stage_warp_id: int
    num_stage_warps: int
    block_idx: int = 0
    instr_idx: int = 0
    done: bool = False
    regs: dict[int, np.ndarray] = field(default_factory=dict)
    trace: WarpTrace | None = None
    blocked_reason: str = ""


class FunctionalMachine:
    """Interprets one thread block of a program.

    Use :func:`run_kernel` for the common case of running every thread
    block of a launch.
    """

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        launch: LaunchConfig,
        tb_id: int = 0,
        collect_trace: bool = True,
        sanitize: bool = False,
    ) -> None:
        program.validate()
        self.program = program
        self.memory = memory
        self.launch = launch
        self.tb_id = tb_id
        self.collect_trace = collect_trace
        self.smem = np.zeros(max(1, program.smem_words), dtype=np.float64)
        self._blocks = program.blocks
        self._label_to_idx = {b.label: i for i, b in enumerate(self._blocks)}
        # Queues are per pipeline slice: warp k of stage S communicates
        # with warp k of stage S+1 (the paper's TB0_W<k>_QS0S1 naming),
        # so the channel key is (queue_id, slice index).
        self._queues: dict[tuple[int, int], FunctionalQueue] = {}
        self._aw_barriers: dict[str, ArriveWaitBarrier] = {}
        self._sync_barriers: dict[str, SyncBarrier] = {}
        self._warps = [self._make_warp(w) for w in range(launch.num_warps)]
        self._dynamic_count = 0
        self._san: SmemSanitizer | None = None
        if sanitize:
            self._san = SmemSanitizer(program, launch.num_warps, tb_id)

    # -- setup ------------------------------------------------------------

    def _spec(self):
        return self.program.tb_spec

    def _make_warp(self, warp_id: int) -> _WarpState:
        spec = self._spec()
        if spec is not None:
            stage = spec.stage_of_warp(warp_id)
            stage_warps = spec.warps_in_stage(stage)
            stage_warp_id = stage_warps.index(warp_id)
            num_stage_warps = len(stage_warps)
        else:
            stage, stage_warp_id = 0, warp_id
            num_stage_warps = self.launch.num_warps
        warp = _WarpState(
            warp_id=warp_id,
            pipe_stage_id=stage,
            stage_warp_id=stage_warp_id,
            num_stage_warps=num_stage_warps,
        )
        if self.collect_trace:
            warp.trace = WarpTrace(warp_id=warp_id, pipe_stage_id=stage)
        return warp

    def _queue(self, queue_id: int, slice_id: int) -> FunctionalQueue:
        key = (queue_id, slice_id)
        if key not in self._queues:
            self._queues[key] = FunctionalQueue(queue_id)
        return self._queues[key]

    def _aw_barrier(self, barrier_id: str) -> ArriveWaitBarrier:
        if barrier_id not in self._aw_barriers:
            expected, credit = 1, 0
            spec = self._spec()
            if spec is not None:
                expected = spec.barrier_expected.get(barrier_id, 1)
                credit = spec.barrier_initial.get(barrier_id, 0)
            self._aw_barriers[barrier_id] = ArriveWaitBarrier(
                barrier_id, expected=expected, initial_credit=credit
            )
        return self._aw_barriers[barrier_id]

    def _sync_barrier(self, barrier_id: str) -> SyncBarrier:
        if barrier_id not in self._sync_barriers:
            self._sync_barriers[barrier_id] = SyncBarrier(
                barrier_id, num_warps=self.launch.num_warps
            )
        return self._sync_barriers[barrier_id]

    # -- value evaluation ---------------------------------------------------

    def _broadcast(self, value: float) -> np.ndarray:
        return np.full(self.launch.warp_width, float(value))

    def _special_value(self, warp: _WarpState, which: SpecialReg) -> np.ndarray:
        width = self.launch.warp_width
        if which is SpecialReg.LANE_ID:
            return np.arange(width, dtype=np.float64)
        table = {
            SpecialReg.WARP_ID: warp.warp_id,
            SpecialReg.TB_ID: self.tb_id,
            SpecialReg.NUM_WARPS: self.launch.num_warps,
            SpecialReg.PIPE_STAGE_ID: warp.pipe_stage_id,
            SpecialReg.STAGE_WARP_ID: warp.stage_warp_id,
            SpecialReg.NUM_STAGE_WARPS: warp.num_stage_warps,
        }
        return self._broadcast(table[which])

    def _value(self, warp: _WarpState, op: Operand) -> np.ndarray:
        if isinstance(op, (Register, Predicate)):
            flat = _flat_reg(op)
            if flat not in warp.regs:
                warp.regs[flat] = self._broadcast(0.0)
            return warp.regs[flat]
        if isinstance(op, Immediate):
            return self._broadcast(op.value)
        if isinstance(op, SpecialRegister):
            return self._special_value(warp, op.which)
        if isinstance(op, QueueRef):
            # Caller must have checked can_pop; popping here keeps
            # evaluation order identical to operand order.
            value = self._queue(op.queue_id, warp.stage_warp_id).pop()
            if self._san is not None:
                self._san.on_pop(
                    warp.warp_id, op.queue_id, warp.stage_warp_id
                )
            return value
        raise ExecutionError(f"cannot evaluate operand {op!r}")

    def _uniform_int(self, warp: _WarpState, op: Operand) -> int:
        vec = self._value(warp, op)
        first = vec.flat[0]
        if not np.all(vec == first):
            raise ExecutionError(f"operand {op!r} must be warp-uniform")
        return int(first)

    # -- execution ----------------------------------------------------------

    def run(self) -> KernelTrace:
        """Run the thread block to completion; returns the trace."""
        while True:
            progressed = False
            all_done = True
            for warp in self._warps:
                if warp.done:
                    continue
                all_done = False
                if self._run_warp_slice(warp):
                    progressed = True
            if all_done:
                break
            if not progressed:
                reasons = {
                    w.warp_id: w.blocked_reason
                    for w in self._warps
                    if not w.done
                }
                raise DeadlockError(
                    f"kernel {self.program.name!r} deadlocked: {reasons}"
                )
        return self._build_trace()

    def _run_warp_slice(self, warp: _WarpState, max_steps: int = 256) -> bool:
        """Step ``warp`` until it blocks/finishes; True if it progressed."""
        progressed = False
        for _ in range(max_steps):
            if warp.done or not self._step(warp):
                break
            progressed = True
        return progressed

    def _fetch(self, warp: _WarpState) -> Instruction | None:
        block = self._blocks[warp.block_idx]
        if warp.instr_idx < len(block.instructions):
            return block.instructions[warp.instr_idx]
        return None

    def _advance(self, warp: _WarpState) -> None:
        warp.instr_idx += 1
        block = self._blocks[warp.block_idx]
        while warp.instr_idx >= len(block.instructions):
            # Fall through to the next block in layout order.
            warp.block_idx += 1
            warp.instr_idx = 0
            if warp.block_idx >= len(self._blocks):
                raise ExecutionError(
                    f"warp {warp.warp_id} fell off program "
                    f"{self.program.name!r}"
                )
            block = self._blocks[warp.block_idx]

    def _guard_mask(self, warp: _WarpState, instr: Instruction) -> np.ndarray:
        if instr.guard is None:
            return np.ones(self.launch.warp_width, dtype=bool)
        mask = self._value(warp, instr.guard).astype(bool)
        if instr.guard_negated:
            mask = ~mask
        return mask

    def _step(self, warp: _WarpState) -> bool:
        """Execute one instruction; False if blocked."""
        instr = self._fetch(warp)
        if instr is None:
            self._advance_from_block_end(warp)
            return True
        # Blocking checks first (no side effects before we commit).
        for queue_ref in instr.queue_pops():
            if not self._queue(queue_ref.queue_id, warp.stage_warp_id).can_pop():
                warp.blocked_reason = f"queue {queue_ref.queue_id} empty"
                return False
        if instr.opcode is Opcode.BAR_WAIT:
            barrier = self._aw_barrier(instr.barrier_id)
            if not barrier.can_pass(warp.warp_id):
                warp.blocked_reason = f"wait {instr.barrier_id}"
                return False
        if instr.opcode is Opcode.BAR_SYNC:
            barrier = self._sync_barrier(instr.barrier_id)
            barrier.mark_arrived(warp.warp_id)
            if not barrier.can_pass(warp.warp_id):
                warp.blocked_reason = f"sync {instr.barrier_id}"
                return False
        self._dynamic_count += 1
        if self._dynamic_count > _MAX_DYNAMIC_INSTRS:
            raise ExecutionError(
                f"kernel {self.program.name!r} exceeded the dynamic "
                f"instruction cap ({_MAX_DYNAMIC_INSTRS})"
            )
        self._execute(warp, instr)
        return True

    def _advance_from_block_end(self, warp: _WarpState) -> None:
        warp.instr_idx = len(self._blocks[warp.block_idx].instructions)
        self._advance(warp)

    # -- per-opcode semantics -------------------------------------------

    def _execute(self, warp: _WarpState, instr: Instruction) -> None:
        opcode = instr.opcode
        if opcode is Opcode.BRA:
            self._exec_branch(warp, instr)
            return
        if opcode is Opcode.EXIT:
            warp.done = True
            self._record(warp, instr)
            return
        if opcode in (Opcode.BAR_SYNC, Opcode.BAR_ARRIVE, Opcode.BAR_WAIT):
            self._exec_barrier(warp, instr)
            self._advance(warp)
            return
        if opcode in (Opcode.TMA_TILE, Opcode.TMA_STREAM, Opcode.TMA_GATHER):
            self._exec_tma(warp, instr)
            self._advance(warp)
            return
        self._exec_data(warp, instr)
        self._advance(warp)

    def _exec_branch(self, warp: _WarpState, instr: Instruction) -> None:
        taken = True
        if instr.guard is not None:
            mask = self._value(warp, instr.guard).astype(bool)
            if instr.guard_negated:
                mask = ~mask
            if mask.all():
                taken = True
            elif not mask.any():
                taken = False
            else:
                raise ExecutionError(
                    f"divergent branch in {self.program.name!r} "
                    f"(warp {warp.warp_id}); kernels must keep branches "
                    "warp-uniform"
                )
        self._record(warp, instr)
        if taken:
            warp.block_idx = self._label_to_idx[instr.target]
            warp.instr_idx = 0
        else:
            self._advance(warp)

    def _exec_barrier(self, warp: _WarpState, instr: Instruction) -> None:
        if instr.opcode is Opcode.BAR_ARRIVE:
            self._aw_barrier(instr.barrier_id).arrive()
            if self._san is not None:
                self._san.on_arrive(warp.warp_id, instr.barrier_id)
        elif instr.opcode is Opcode.BAR_WAIT:
            barrier = self._aw_barrier(instr.barrier_id)
            barrier.wait(warp.warp_id)
            if self._san is not None:
                self._san.on_wait_pass(
                    warp.warp_id,
                    instr.barrier_id,
                    barrier.wait_counts[warp.warp_id],
                    barrier.expected,
                    barrier.initial_credit,
                )
        else:  # BAR_SYNC: arrival already marked in _step
            sync = self._sync_barrier(instr.barrier_id)
            phase = sync.warp_phase.get(warp.warp_id, 0)
            sync.passed(warp.warp_id)
            if self._san is not None:
                self._san.on_sync_pass(
                    warp.warp_id, instr.barrier_id, phase
                )
        self._record(warp, instr)

    def _exec_data(self, warp: _WarpState, instr: Instruction) -> None:
        opcode = instr.opcode
        mask = self._guard_mask(warp, instr)
        sectors: tuple[int, ...] = ()
        smem_words = 0
        is_store = False

        if opcode is Opcode.LDG:
            addrs = self._value(warp, instr.srcs[0]).astype(np.int64)
            active = addrs[mask]
            result = np.zeros(self.launch.warp_width)
            if active.size:
                result[mask] = self.memory.load(active)
                sectors = sectors_of(active)
        elif opcode is Opcode.STG:
            addrs = self._value(warp, instr.srcs[0]).astype(np.int64)
            values = self._value(warp, instr.srcs[1])
            if mask.any():
                self.memory.store(addrs[mask], values[mask])
                sectors = sectors_of(addrs[mask])
            result = None
            is_store = True
        elif opcode is Opcode.LDS:
            addrs = self._value(warp, instr.srcs[0]).astype(np.int64)
            result = np.zeros(self.launch.warp_width)
            if mask.any():
                result[mask] = self._smem_load(addrs[mask], warp)
            smem_words = int(mask.sum())
        elif opcode is Opcode.STS:
            addrs = self._value(warp, instr.srcs[0]).astype(np.int64)
            values = self._value(warp, instr.srcs[1])
            if mask.any():
                self._smem_store(addrs[mask], values[mask], warp)
            smem_words = int(mask.sum())
            result = None
            is_store = True
        elif opcode is Opcode.LDGSTS:
            gaddrs = self._value(warp, instr.srcs[0]).astype(np.int64)
            saddrs = self._value(warp, instr.srcs[1]).astype(np.int64)
            if mask.any():
                self._smem_store(
                    saddrs[mask], self.memory.load(gaddrs[mask]), warp
                )
                sectors = sectors_of(gaddrs[mask])
            smem_words = int(mask.sum())
            result = None
            is_store = True
        else:
            result = self._alu(warp, instr, mask)

        self._writeback(warp, instr, result, mask)
        self._record(
            warp,
            instr,
            sectors=sectors,
            smem_words=smem_words,
            is_store=is_store,
        )

    def _alu(self, warp: _WarpState, instr: Instruction, mask: np.ndarray):
        opcode = instr.opcode
        vals = [self._value(warp, s) for s in instr.srcs]
        if opcode in (Opcode.IADD, Opcode.FADD):
            return vals[0] + vals[1]
        if opcode in (Opcode.IMUL, Opcode.FMUL):
            return vals[0] * vals[1]
        if opcode is Opcode.IDIV:
            divisor = np.where(vals[1] != 0, vals[1], 1.0)
            return np.floor(vals[0] / divisor)
        if opcode in (Opcode.IMAD, Opcode.FFMA, Opcode.HMMA):
            return vals[0] * vals[1] + vals[2]
        if opcode is Opcode.SHL:
            return np.floor(vals[0]) * (2.0 ** np.floor(vals[1]))
        if opcode is Opcode.SHR:
            return np.floor(np.floor(vals[0]) / (2.0 ** np.floor(vals[1])))
        if opcode is Opcode.AND:
            return (
                vals[0].astype(np.int64) & vals[1].astype(np.int64)
            ).astype(np.float64)
        if opcode is Opcode.OR:
            return (
                vals[0].astype(np.int64) | vals[1].astype(np.int64)
            ).astype(np.float64)
        if opcode is Opcode.MIN:
            return np.minimum(vals[0], vals[1])
        if opcode is Opcode.MAX:
            return np.maximum(vals[0], vals[1])
        if opcode is Opcode.MOV:
            return vals[0].copy()
        if opcode is Opcode.SEL:
            return np.where(vals[0].astype(bool), vals[1], vals[2])
        if opcode is Opcode.ISETP:
            cmp = _CMP_FUNCS[instr.attrs["cmp"]]
            return cmp(vals[0], vals[1]).astype(np.float64)
        if opcode is Opcode.REDUX:
            return np.full(self.launch.warp_width, float(vals[0].sum()))
        if opcode is Opcode.FRCP:
            with np.errstate(divide="ignore"):
                return np.where(vals[0] != 0, 1.0 / vals[0], 0.0)
        if opcode is Opcode.NOP:
            return None
        raise ExecutionError(f"unimplemented opcode {opcode}")

    def _writeback(
        self,
        warp: _WarpState,
        instr: Instruction,
        result: np.ndarray | None,
        mask: np.ndarray,
    ) -> None:
        if result is None or instr.dst is None:
            return
        if isinstance(instr.dst, QueueRef):
            self._queue(instr.dst.queue_id, warp.stage_warp_id).push(result)
            if self._san is not None:
                self._san.on_push(
                    warp.warp_id, instr.dst.queue_id, warp.stage_warp_id
                )
            return
        flat = _flat_reg(instr.dst)
        if mask.all():
            warp.regs[flat] = np.asarray(result, dtype=np.float64)
        else:
            old = warp.regs.get(flat, self._broadcast(0.0))
            warp.regs[flat] = np.where(mask, result, old)

    # -- shared memory ------------------------------------------------------

    def _smem_load(
        self, addrs: np.ndarray, warp: _WarpState | None = None
    ) -> np.ndarray:
        if addrs.min(initial=0) < 0 or addrs.max(initial=0) >= len(self.smem):
            raise ExecutionError(
                f"SMEM load out of bounds in {self.program.name!r}: "
                f"{addrs.min()}..{addrs.max()} (smem={len(self.smem)})"
            )
        if self._san is not None and warp is not None:
            self._san.on_read(
                warp.warp_id, self._san.block_stage[warp.block_idx], addrs
            )
        return self.smem[addrs]

    def _smem_store(
        self,
        addrs: np.ndarray,
        values: np.ndarray,
        warp: _WarpState | None = None,
    ) -> None:
        if addrs.min(initial=0) < 0 or addrs.max(initial=0) >= len(self.smem):
            raise ExecutionError(
                f"SMEM store out of bounds in {self.program.name!r}: "
                f"{addrs.min()}..{addrs.max()} (smem={len(self.smem)})"
            )
        if self._san is not None and warp is not None:
            self._san.on_write(
                warp.warp_id, self._san.block_stage[warp.block_idx], addrs
            )
        self.smem[addrs] = values

    # -- TMA offload --------------------------------------------------------

    def _exec_tma(self, warp: _WarpState, instr: Instruction) -> None:
        if instr.opcode is Opcode.TMA_TILE:
            job = self._tma_tile(warp, instr)
        elif instr.opcode is Opcode.TMA_STREAM:
            job = self._tma_stream(warp, instr)
        else:
            job = self._tma_gather(warp, instr)
        self._record(warp, instr, tma_job=job)

    def _tma_tile(self, warp: _WarpState, instr: Instruction) -> dict[str, Any]:
        gbase = self._uniform_int(warp, instr.srcs[0])
        sbase = self._uniform_int(warp, instr.srcs[1])
        count = self._uniform_int(warp, instr.srcs[2])
        addrs = np.arange(gbase, gbase + count, dtype=np.int64)
        self._smem_store(
            np.arange(sbase, sbase + count, dtype=np.int64),
            self.memory.load(addrs),
            warp,
        )
        barrier_id = instr.attrs.get("barrier")
        if barrier_id:
            self._aw_barrier(barrier_id).arrive()
            if self._san is not None:
                self._san.on_arrive(warp.warp_id, barrier_id)
        width = self.launch.warp_width
        vector_sectors = [
            sectors_of(addrs[k : k + width]) for k in range(0, count, width)
        ]
        return {
            "mode": "tile",
            "num_vectors": len(vector_sectors),
            "vector_sectors": vector_sectors,
            "total_sectors": sum(len(v) for v in vector_sectors),
            "smem_words": count,
            "barrier": barrier_id,
            "queue": None,
        }

    def _tma_stream(self, warp: _WarpState, instr: Instruction) -> dict[str, Any]:
        if not isinstance(instr.dst, QueueRef):
            raise ExecutionError("TMA.STREAM requires a queue destination")
        base_vec = self._value(warp, instr.srcs[0]).astype(np.int64)
        count = self._uniform_int(warp, instr.srcs[1])
        if len(instr.srcs) > 2:
            vec_stride = self._uniform_int(warp, instr.srcs[2])
        else:
            vec_stride = int(instr.attrs.get("vec_stride", self.launch.warp_width))
        queue = self._queue(instr.dst.queue_id, warp.stage_warp_id)
        vector_sectors = []
        for k in range(count):
            addrs = base_vec + k * vec_stride
            queue.push(self.memory.load(addrs))
            if self._san is not None:
                self._san.on_push(
                    warp.warp_id, instr.dst.queue_id, warp.stage_warp_id
                )
            vector_sectors.append(sectors_of(addrs))
        return {
            "mode": "stream",
            "num_vectors": count,
            "vector_sectors": vector_sectors,
            "total_sectors": sum(len(v) for v in vector_sectors),
            "smem_words": 0,
            "barrier": None,
            "queue": instr.dst.queue_id,
        }

    def _tma_gather(self, warp: _WarpState, instr: Instruction) -> dict[str, Any]:
        idx_base = self._value(warp, instr.srcs[0]).astype(np.int64)
        data_base = self._value(warp, instr.srcs[1]).astype(np.int64)
        count = self._uniform_int(warp, instr.srcs[2])
        if len(instr.srcs) > 3:
            idx_stride = self._uniform_int(warp, instr.srcs[3])
        else:
            idx_stride = int(instr.attrs.get("idx_stride", self.launch.warp_width))
        dest = instr.attrs.get("dest", "rfq")
        width = self.launch.warp_width
        lanes = np.arange(width, dtype=np.int64)
        queue = None
        if dest == "rfq":
            if not isinstance(instr.dst, QueueRef):
                raise ExecutionError("TMA.GATHER dest=rfq needs a queue dst")
            queue = self._queue(instr.dst.queue_id, warp.stage_warp_id)
        sbase = int(instr.attrs.get("sbase", 0))
        vector_sectors = []
        data_vector_sectors = []
        smem_words = 0
        for k in range(count):
            idx_addrs = idx_base + k * idx_stride
            indices = self.memory.load(idx_addrs).astype(np.int64)
            data_addrs = data_base + indices
            data = self.memory.load(data_addrs)
            if queue is not None:
                queue.push(data)
                if self._san is not None:
                    self._san.on_push(
                        warp.warp_id, queue.queue_id, warp.stage_warp_id
                    )
            else:
                self._smem_store(sbase + k * width + lanes, data, warp)
                smem_words += width
            # Both phases consume memory bandwidth: index fetch, then the
            # dependent data fetch (kept separate for two-phase timing).
            vector_sectors.append(sectors_of(idx_addrs))
            data_vector_sectors.append(sectors_of(data_addrs))
        total = sum(len(v) for v in vector_sectors)
        total += sum(len(v) for v in data_vector_sectors)
        return {
            "mode": "gather",
            "num_vectors": count,
            "vector_sectors": vector_sectors,
            "data_vector_sectors": data_vector_sectors,
            "total_sectors": total,
            "smem_words": smem_words,
            "barrier": instr.attrs.get("barrier"),
            "queue": queue.queue_id if queue is not None else None,
        }

    # -- trace emission -------------------------------------------------

    def _record(
        self,
        warp: _WarpState,
        instr: Instruction,
        sectors: tuple[int, ...] = (),
        smem_words: int = 0,
        is_store: bool = False,
        tma_job: dict[str, Any] | None = None,
    ) -> None:
        if warp.trace is None:
            return
        dst_regs: tuple[int, ...] = ()
        if isinstance(instr.dst, (Register, Predicate)):
            dst_regs = (_flat_reg(instr.dst),)
        src_regs = tuple(
            _flat_reg(op)
            for op in instr.srcs
            if isinstance(op, (Register, Predicate))
        )
        if instr.guard is not None:
            src_regs = src_regs + (_flat_reg(instr.guard),)
        queue_push = instr.dst.queue_id if isinstance(instr.dst, QueueRef) else None
        pops = instr.queue_pops()
        warp.trace.instrs.append(
            DynamicInstr(
                opcode=instr.opcode,
                unit=instr.info.unit,
                category=instr.category,
                dst_regs=dst_regs,
                src_regs=src_regs,
                queue_push=queue_push,
                queue_pop=pops[0].queue_id if pops else None,
                barrier_id=instr.barrier_id,
                sectors=sectors,
                is_store=is_store,
                smem_words=smem_words,
                tma_job=tma_job,
            )
        )

    def _aggregate_queue_lengths(self) -> dict[int, int]:
        totals: dict[int, int] = {}
        for (qid, _slice), queue in self._queues.items():
            totals[qid] = totals.get(qid, 0) + queue.total_pushed
        return totals

    def _build_trace(self) -> KernelTrace:
        trace = KernelTrace(
            kernel_name=self.program.name,
            num_warps=self.launch.num_warps,
            warp_width=self.launch.warp_width,
            warps=[w.trace for w in self._warps if w.trace is not None],
            queue_lengths=self._aggregate_queue_lengths(),
            barrier_arrivals={
                bid: b.arrivals for bid, b in self._aw_barriers.items()
            },
            tb_spec=self.program.tb_spec,
            program_registers=self.program.register_count(),
            smem_words=self.program.smem_words,
        )
        return trace


@dataclass
class ExecutionResult:
    """Traces (one per thread block) plus the mutated memory image."""

    traces: list[KernelTrace]
    memory: MemoryImage
    races: list[SanitizerRace] = field(default_factory=list)


def run_kernel(
    program: Program,
    memory: MemoryImage,
    launch: LaunchConfig,
    collect_trace: bool = True,
    sanitize: bool = False,
) -> ExecutionResult:
    """Functionally execute every thread block of a launch (serially)."""
    traces = []
    races: list[SanitizerRace] = []
    for tb_id in range(launch.num_thread_blocks):
        machine = FunctionalMachine(
            program,
            memory,
            launch,
            tb_id=tb_id,
            collect_trace=collect_trace,
            sanitize=sanitize,
        )
        traces.append(machine.run())
        if machine._san is not None:
            races.extend(machine._san.races)
    return ExecutionResult(traces=traces, memory=memory, races=races)
