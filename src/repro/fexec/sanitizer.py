"""Vector-clock SMEM race sanitizer: the dynamic half of the HB gate.

The static happens-before engine (:mod:`repro.analysis.dataflow.hb`)
proves orderings over *static* sites; this sanitizer observes one
concrete execution inside :class:`repro.fexec.machine.FunctionalMachine`
— the only layer where SMEM addresses are real — and reports every
cross-stage conflicting access pair that no synchronization ordered.
``repro racediff`` cross-checks the two layers: every race observed
here must be statically flagged (the no-false-negatives direction of
the trust chain, same shape as ``repro corediff``).

Clock discipline (FastTrack-style, warp-granular):

* each warp carries a vector clock; its own component increments at
  every *release* (BAR.ARRIVE, queue push/pop, BAR.SYNC pass);
* ``BAR.ARRIVE`` publishes the arriving warp's clock; the *n*-th
  passing ``BAR.WAIT`` joins the first ``n·expected − initial_credit``
  published clocks — exactly the arrivals without which
  :class:`~repro.fexec.barriers.ArriveWaitBarrier` could not have let
  it pass;
* ``BAR.SYNC`` is a rendezvous: every passer of phase *p* joins the
  merge of all warps' clocks at that phase;
* queue entries carry the pusher's clock to the popper (FIFO data
  edge), and the *n*-th push joins the popper's clock after pop
  *n − K* (the synthetic **credit edge** for the timing model's
  bounded queue of ``K = NamedQueueSpec.size`` entries — the
  functional queues themselves are unbounded, but the static engine
  and the simulator both enforce K, so the sanitizer must too).

Scope deliberately matches the static pass: only accesses executed
from a pipeline-stage code section count (dispatch excluded), and only
pairs from *different* stages are reported — same-stage cross-warp
races are out of scope for both layers.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.analysis.cfg import stage_of_label
from repro.core.specs import ThreadBlockSpec
from repro.isa.program import Program

#: Group name for SMEM words outside every declared buffer — matches
#: the static site collector's anonymous fallback group.
ANON_GROUP = "__smem__"

#: Circular-buffer ring copies (``name__db``, ``name__db2``, ...) share
#: their base buffer's group so verdicts align with the static pass.
_COPY_SUFFIX = re.compile(r"__db\d*$")


@dataclass(frozen=True)
class SanitizerRace:
    """One unordered cross-stage conflicting SMEM access pair."""

    group: str
    address: int
    kind: str  # "write-write" | "write-read" | "read-write"
    first_stage: int
    first_warp: int
    second_stage: int
    second_warp: int
    tb_id: int = 0

    @property
    def stage_pair(self) -> frozenset[int]:
        return frozenset((self.first_stage, self.second_stage))

    def format(self) -> str:
        return (
            f"{self.kind} race on {self.group!r} word {self.address}: "
            f"stage {self.first_stage} (warp {self.first_warp}) vs "
            f"stage {self.second_stage} (warp {self.second_warp}) "
            f"unordered (tb {self.tb_id})"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "group": self.group,
            "address": self.address,
            "kind": self.kind,
            "first_stage": self.first_stage,
            "first_warp": self.first_warp,
            "second_stage": self.second_stage,
            "second_warp": self.second_warp,
            "tb_id": self.tb_id,
        }


class SmemSanitizer:
    """Vector clocks + SMEM shadow state for one thread block."""

    def __init__(
        self, program: Program, num_warps: int, tb_id: int = 0
    ) -> None:
        self.tb_id = tb_id
        self.num_warps = num_warps
        words = max(1, program.smem_words)
        spec = program.tb_spec
        self._spec = spec if isinstance(spec, ThreadBlockSpec) else None

        #: Section stage per block index (DISPATCH = -1), so the
        #: machine can attribute each access to the stage whose code
        #: performed it — mirroring the static site collector.
        self.block_stage: list[int] = [
            stage_of_label(b.label) for b in program.blocks
        ]
        self._warp_stage = np.zeros(num_warps, dtype=np.int64)
        if self._spec is not None:
            for w in range(num_warps):
                if w < self._spec.num_warps:
                    self._warp_stage[w] = self._spec.stage_of_warp(w)

        # Vector clocks: row w is warp w's clock; own entries start at
        # 1 so tick 0 means "before everything".
        self._clocks = np.zeros((num_warps, num_warps), dtype=np.int64)
        for w in range(num_warps):
            self._clocks[w, w] = 1

        # Shadow memory: last write epoch per word, last read tick per
        # (warp, word).  A ring copy (``name__db``, ``name__db2``, ...)
        # shares its base buffer's group (see ``_COPY_SUFFIX``).
        self._last_writer = np.full(words, -1, dtype=np.int64)
        self._last_write_tick = np.zeros(words, dtype=np.int64)
        self._read_ticks = np.zeros((num_warps, words), dtype=np.int64)
        self._group_names: list[str] = []
        self._word_group = np.full(words, -1, dtype=np.int64)
        for name in sorted(program.smem_buffers):
            base, size = program.smem_buffers[name]
            group = _COPY_SUFFIX.sub("", name)
            if group not in self._group_names:
                self._group_names.append(group)
            idx = self._group_names.index(group)
            lo = max(0, base)
            hi = min(words, base + size)
            if lo < hi:
                self._word_group[lo:hi] = idx

        # Synchronization state.
        self._arrival_cummax: dict[str, list[np.ndarray]] = {}
        self._sync_rendezvous: dict[tuple[str, int], np.ndarray] = {}
        self._entry_clocks: dict[
            tuple[int, int], deque[np.ndarray]
        ] = {}
        self._pop_releases: dict[tuple[int, int], list[np.ndarray]] = {}
        self._push_counts: dict[tuple[int, int], int] = {}
        self._queue_size: dict[int, int] = {}
        if self._spec is not None:
            self._queue_size = {
                q.queue_id: max(1, q.size) for q in self._spec.queues
            }

        self.races: list[SanitizerRace] = []
        self._seen: set[tuple[str, str, int, int]] = set()

    # -- clock primitives ----------------------------------------------

    def _join(self, warp_id: int, other: np.ndarray) -> None:
        np.maximum(
            self._clocks[warp_id], other, out=self._clocks[warp_id]
        )

    def _release(self, warp_id: int) -> np.ndarray:
        """Snapshot the warp's clock, then advance its own epoch."""
        snap = self._clocks[warp_id].copy()
        self._clocks[warp_id, warp_id] += 1
        return snap

    # -- synchronization hooks -----------------------------------------

    def on_arrive(self, warp_id: int, barrier_id: str) -> None:
        snap = self._release(warp_id)
        history = self._arrival_cummax.setdefault(barrier_id, [])
        if history:
            snap = np.maximum(snap, history[-1])
        history.append(snap)

    def on_wait_pass(
        self,
        warp_id: int,
        barrier_id: str,
        wait_number: int,
        expected: int,
        initial_credit: int,
    ) -> None:
        """Join the arrivals this wait provably consumed.

        The n-th wait passes once ``initial + arrivals ≥ n·expected``,
        so the first ``n·expected − initial`` arrivals are ordered
        before it; later arrivals may have raced past.
        """
        needed = wait_number * expected - initial_credit
        history = self._arrival_cummax.get(barrier_id, [])
        if needed > 0 and history:
            index = min(needed, len(history)) - 1
            self._join(warp_id, history[index])

    def on_sync_pass(
        self, warp_id: int, barrier_id: str, phase: int
    ) -> None:
        key = (barrier_id, phase)
        rendezvous = self._sync_rendezvous.get(key)
        if rendezvous is None:
            # First passer: every warp has arrived (else it could not
            # pass) and arrived warps are blocked, so current clocks
            # are the arrival clocks.
            rendezvous = self._clocks.max(axis=0)
            self._sync_rendezvous[key] = rendezvous
        self._join(warp_id, rendezvous)
        self._clocks[warp_id, warp_id] += 1

    def on_push(
        self, warp_id: int, queue_id: int, slice_id: int
    ) -> None:
        key = (queue_id, slice_id)
        count = self._push_counts.get(key, 0)
        self._push_counts[key] = count + 1
        capacity = self._queue_size.get(queue_id)
        if capacity is not None and count >= capacity:
            releases = self._pop_releases.get(key, [])
            index = count - capacity
            if index < len(releases):
                self._join(warp_id, releases[index])
        self._entry_clocks.setdefault(key, deque()).append(
            self._release(warp_id)
        )

    def on_pop(
        self, warp_id: int, queue_id: int, slice_id: int
    ) -> None:
        key = (queue_id, slice_id)
        entries = self._entry_clocks.get(key)
        if entries:
            self._join(warp_id, entries.popleft())
        self._pop_releases.setdefault(key, []).append(
            self._release(warp_id)
        )

    # -- SMEM access hooks ---------------------------------------------

    def on_read(
        self, warp_id: int, stage: int, addrs: np.ndarray
    ) -> None:
        if stage < 0:
            return
        addrs = np.unique(np.asarray(addrs, dtype=np.int64))
        clock = self._clocks[warp_id]
        writers = self._last_writer[addrs]
        ticks = self._last_write_tick[addrs]
        conflict = (
            (writers >= 0)
            & (self._warp_stage[writers] != stage)
            & (ticks > clock[writers])
        )
        if conflict.any():
            self._report(
                "write-read", addrs, conflict, writers,
                self._warp_stage[writers], warp_id, stage,
            )
        self._read_ticks[warp_id, addrs] = clock[warp_id]

    def on_write(
        self, warp_id: int, stage: int, addrs: np.ndarray
    ) -> None:
        if stage < 0:
            return
        addrs = np.unique(np.asarray(addrs, dtype=np.int64))
        clock = self._clocks[warp_id]
        writers = self._last_writer[addrs]
        ticks = self._last_write_tick[addrs]
        conflict = (
            (writers >= 0)
            & (self._warp_stage[writers] != stage)
            & (ticks > clock[writers])
        )
        if conflict.any():
            self._report(
                "write-write", addrs, conflict, writers,
                self._warp_stage[writers], warp_id, stage,
            )
        for other in range(self.num_warps):
            if other == warp_id or self._warp_stage[other] == stage:
                continue
            read = self._read_ticks[other, addrs] > clock[other]
            if read.any():
                others = np.full(len(addrs), other, dtype=np.int64)
                self._report(
                    "read-write", addrs, read, others,
                    self._warp_stage[others], warp_id, stage,
                )
        self._last_writer[addrs] = warp_id
        self._last_write_tick[addrs] = clock[warp_id]

    def _report(
        self,
        kind: str,
        addrs: np.ndarray,
        conflict: np.ndarray,
        other_warps: np.ndarray,
        other_stages: np.ndarray,
        warp_id: int,
        stage: int,
    ) -> None:
        for pos in np.flatnonzero(conflict):
            address = int(addrs[pos])
            group_idx = int(self._word_group[address])
            group = (
                self._group_names[group_idx]
                if group_idx >= 0 else ANON_GROUP
            )
            other_stage = int(other_stages[pos])
            key = (
                group, kind,
                min(stage, other_stage), max(stage, other_stage),
            )
            if key in self._seen:
                continue
            self._seen.add(key)
            self.races.append(SanitizerRace(
                group=group,
                address=address,
                kind=kind,
                first_stage=other_stage,
                first_warp=int(other_warps[pos]),
                second_stage=stage,
                second_warp=warp_id,
                tb_id=self.tb_id,
            ))
