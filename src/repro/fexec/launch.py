"""Kernel launch configuration.

Mirrors the CUDA launch plus WASP's extended thread-block dimension
(Section III-A): ``{dim.x, dim.y, dim.z, num_pipeline_stages}``.  The
reproduction flattens thread dimensions to a warp count; the pipeline
dimension comes from the attached thread-block specification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class LaunchConfig:
    """How a kernel is launched on one SM.

    Attributes:
        num_warps: Warps per thread block.
        warp_width: Lanes per warp (32 on real GPUs; smaller widths make
            tests faster without changing pipeline behaviour).
        num_thread_blocks: Thread blocks launched (each runs the same
            program with a distinct ``TB_ID``).
        params: Kernel parameters by name; kernels read them through the
            builder-bound immediates created by workload models.
    """

    num_warps: int = 4
    warp_width: int = 32
    num_thread_blocks: int = 1

    def __post_init__(self) -> None:
        if self.num_warps <= 0:
            raise SimulationError("num_warps must be positive")
        if self.warp_width <= 0:
            raise SimulationError("warp_width must be positive")
        if self.num_thread_blocks <= 0:
            raise SimulationError("num_thread_blocks must be positive")
