"""Functional barrier state: BAR.SYNC and arrive/wait barriers.

Arrive/wait semantics follow CudaDMA (paper Section II-B): ``BAR.ARRIVE``
registers arrival and continues; the *n*-th ``BAR.WAIT`` by a warp blocks
until ``initial_credit + arrivals >= n * expected`` where ``expected`` is
the number of warps that arrive per generation.  Buffers that start empty
are modelled with an initial credit (the paper: "barrier A is initially
set as arrived").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ArriveWaitBarrier:
    """State of one named arrive/wait barrier."""

    barrier_id: str
    expected: int = 1
    initial_credit: int = 0
    arrivals: int = 0
    wait_counts: dict[int, int] = field(default_factory=dict)

    def arrive(self) -> None:
        self.arrivals += 1

    def can_pass(self, warp_id: int) -> bool:
        """Would the next wait by ``warp_id`` pass right now?"""
        n = self.wait_counts.get(warp_id, 0) + 1
        return self.initial_credit + self.arrivals >= n * self.expected

    def wait(self, warp_id: int) -> None:
        """Record a successful (passing) wait; call only if can_pass()."""
        self.wait_counts[warp_id] = self.wait_counts.get(warp_id, 0) + 1


@dataclass
class SyncBarrier:
    """Classic all-warps thread-block barrier with phase counting."""

    barrier_id: str
    num_warps: int
    phase_counts: dict[int, int] = field(default_factory=dict)
    warp_phase: dict[int, int] = field(default_factory=dict)

    def mark_arrived(self, warp_id: int) -> None:
        """Warp reaches its next sync point (idempotent per phase)."""
        phase = self.warp_phase.get(warp_id, 0)
        key = (warp_id, phase)
        if key not in self._arrived():
            self._arrived().add(key)
            self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1

    def _arrived(self) -> set:
        if not hasattr(self, "_arrived_set"):
            self._arrived_set: set = set()
        return self._arrived_set

    def can_pass(self, warp_id: int) -> bool:
        phase = self.warp_phase.get(warp_id, 0)
        return self.phase_counts.get(phase, 0) >= self.num_warps

    def passed(self, warp_id: int) -> None:
        self.warp_phase[warp_id] = self.warp_phase.get(warp_id, 0) + 1
