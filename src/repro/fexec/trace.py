"""Dynamic instruction traces.

The functional executor resolves control flow, addresses and queue
traffic, and emits one :class:`DynamicInstr` per executed instruction per
warp.  The timing simulator replays these streams, re-enforcing register,
queue and barrier dependences at cycle granularity.

Register identifiers in traces are flat integers: architectural register
``Ri`` maps to ``i`` and predicate ``Pi`` to ``PRED_BASE + i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode

PRED_BASE = 1 << 16


@dataclass(slots=True)
class DynamicInstr:
    """One executed instruction in a warp's dynamic stream.

    Attributes:
        opcode: The executed opcode.
        unit: Functional unit (drives latency/throughput in the sim).
        category: Figure-19 category tag carried over from the static
            instruction (possibly refined by the compiler).
        dst_regs: Flat ids of registers/predicates written.
        src_regs: Flat ids of registers/predicates read (incl. guard).
        queue_push: Queue id pushed to, or ``None``.
        queue_pop: Queue id popped from, or ``None``.
        barrier_id: Barrier name for BAR.* instructions.
        sectors: Distinct global-memory sector ids touched (loads/stores).
        is_store: True for global stores (no register writeback to wait on).
        smem_words: Shared-memory words moved (SMEM bandwidth model).
        tma_job: Offload descriptor for TMA configuration instructions.
    """

    opcode: Opcode
    unit: FuncUnit
    category: InstrCategory
    dst_regs: tuple[int, ...] = ()
    src_regs: tuple[int, ...] = ()
    queue_push: int | None = None
    queue_pop: int | None = None
    barrier_id: str | None = None
    sectors: tuple[int, ...] = ()
    is_store: bool = False
    smem_words: int = 0
    tma_job: dict[str, Any] | None = None


@dataclass
class WarpTrace:
    """The ordered dynamic stream of one warp, plus summary counters."""

    warp_id: int
    pipe_stage_id: int
    instrs: list[DynamicInstr] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instrs)

    def count_by_category(self) -> dict[InstrCategory, int]:
        counts: dict[InstrCategory, int] = {}
        for instr in self.instrs:
            counts[instr.category] = counts.get(instr.category, 0) + 1
        return counts

    def total_sectors(self) -> int:
        total = sum(len(i.sectors) for i in self.instrs)
        for instr in self.instrs:
            if instr.tma_job is not None:
                total += instr.tma_job.get("total_sectors", 0)
        return total


@dataclass
class KernelTrace:
    """All warp traces of one thread block execution.

    ``queue_lengths`` records how many entries flowed through each named
    queue (used for sanity checks and reporting); ``barrier_arrivals``
    counts arrive events per barrier.
    """

    kernel_name: str
    num_warps: int
    warp_width: int
    warps: list[WarpTrace] = field(default_factory=list)
    queue_lengths: dict[int, int] = field(default_factory=dict)
    barrier_arrivals: dict[str, int] = field(default_factory=dict)
    tb_spec: object | None = None
    program_registers: int = 0
    smem_words: int = 0

    def total_instructions(self) -> int:
        return sum(len(w) for w in self.warps)

    def count_by_category(self) -> dict[InstrCategory, int]:
        counts: dict[InstrCategory, int] = {}
        for warp in self.warps:
            for category, count in warp.count_by_category().items():
                counts[category] = counts.get(category, 0) + count
        return counts

    def stage_ids(self) -> list[int]:
        return sorted({w.pipe_stage_id for w in self.warps})
