"""Dynamic instruction traces.

The functional executor resolves control flow, addresses and queue
traffic, and emits one :class:`DynamicInstr` per executed instruction per
warp.  The timing simulator replays these streams, re-enforcing register,
queue and barrier dependences at cycle granularity.

Register identifiers in traces are flat integers: architectural register
``Ri`` maps to ``i`` and predicate ``Pi`` to ``PRED_BASE + i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.isa.opcodes import FuncUnit, InstrCategory, Opcode

PRED_BASE = 1 << 16


@dataclass(slots=True)
class DynamicInstr:
    """One executed instruction in a warp's dynamic stream.

    Attributes:
        opcode: The executed opcode.
        unit: Functional unit (drives latency/throughput in the sim).
        category: Figure-19 category tag carried over from the static
            instruction (possibly refined by the compiler).
        dst_regs: Flat ids of registers/predicates written.
        src_regs: Flat ids of registers/predicates read (incl. guard).
        queue_push: Queue id pushed to, or ``None``.
        queue_pop: Queue id popped from, or ``None``.
        barrier_id: Barrier name for BAR.* instructions.
        sectors: Distinct global-memory sector ids touched (loads/stores).
        is_store: True for global stores (no register writeback to wait on).
        smem_words: Shared-memory words moved (SMEM bandwidth model).
        tma_job: Offload descriptor for TMA configuration instructions.
    """

    opcode: Opcode
    unit: FuncUnit
    category: InstrCategory
    dst_regs: tuple[int, ...] = ()
    src_regs: tuple[int, ...] = ()
    queue_push: int | None = None
    queue_pop: int | None = None
    barrier_id: str | None = None
    sectors: tuple[int, ...] = ()
    is_store: bool = False
    smem_words: int = 0
    tma_job: dict[str, Any] | None = None


@dataclass
class WarpTrace:
    """The ordered dynamic stream of one warp, plus summary counters."""

    warp_id: int
    pipe_stage_id: int
    instrs: list[DynamicInstr] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instrs)

    def count_by_category(self) -> dict[InstrCategory, int]:
        counts: dict[InstrCategory, int] = {}
        for instr in self.instrs:
            counts[instr.category] = counts.get(instr.category, 0) + 1
        return counts

    def total_sectors(self) -> int:
        total = sum(len(i.sectors) for i in self.instrs)
        for instr in self.instrs:
            if instr.tma_job is not None:
                total += instr.tma_job.get("total_sectors", 0)
        return total


@dataclass
class KernelTrace:
    """All warp traces of one thread block execution.

    ``queue_lengths`` records how many entries flowed through each named
    queue (used for sanity checks and reporting); ``barrier_arrivals``
    counts arrive events per barrier.
    """

    kernel_name: str
    num_warps: int
    warp_width: int
    warps: list[WarpTrace] = field(default_factory=list)
    queue_lengths: dict[int, int] = field(default_factory=dict)
    barrier_arrivals: dict[str, int] = field(default_factory=dict)
    tb_spec: object | None = None
    program_registers: int = 0
    smem_words: int = 0

    def total_instructions(self) -> int:
        return sum(len(w) for w in self.warps)

    def count_by_category(self) -> dict[InstrCategory, int]:
        counts: dict[InstrCategory, int] = {}
        for warp in self.warps:
            for category, count in warp.count_by_category().items():
                counts[category] = counts.get(category, 0) + count
        return counts

    def stage_ids(self) -> list[int]:
        return sorted({w.pipe_stage_id for w in self.warps})


# -- serialization ----------------------------------------------------------
#
# Traces persist across processes in the content-addressed cache
# (``repro.fexec.trace_store``).  The format is deliberately primitive —
# JSON-compatible lists/dicts with enums stored by value — so payloads
# stay readable and survive refactors of the dataclasses above.  Bump
# ``TRACE_FORMAT_VERSION`` whenever the encoding (or the semantics of
# trace generation) changes; stale files are then regenerated instead of
# misread.

TRACE_FORMAT_VERSION = 1


def encode_traces(traces: list[KernelTrace]) -> list[dict]:
    """Encode kernel traces as JSON-compatible primitives."""
    return [_encode_kernel_trace(t) for t in traces]


def decode_traces(payload: list[dict]) -> list[KernelTrace]:
    """Rebuild kernel traces from :func:`encode_traces` output.

    Raises ``KeyError``/``ValueError``/``TypeError`` on malformed
    payloads; callers treat any failure as a cache miss.
    """
    return [_decode_kernel_trace(t) for t in payload]


def _encode_kernel_trace(trace: KernelTrace) -> dict:
    return {
        "kernel_name": trace.kernel_name,
        "num_warps": trace.num_warps,
        "warp_width": trace.warp_width,
        "warps": [
            {
                "warp_id": w.warp_id,
                "pipe_stage_id": w.pipe_stage_id,
                "instrs": [_encode_instr(i) for i in w.instrs],
            }
            for w in trace.warps
        ],
        "queue_lengths": {str(k): v for k, v in trace.queue_lengths.items()},
        "barrier_arrivals": dict(trace.barrier_arrivals),
        "tb_spec": _encode_tb_spec(trace.tb_spec),
        "program_registers": trace.program_registers,
        "smem_words": trace.smem_words,
    }


def _decode_kernel_trace(data: dict) -> KernelTrace:
    return KernelTrace(
        kernel_name=data["kernel_name"],
        num_warps=data["num_warps"],
        warp_width=data["warp_width"],
        warps=[
            WarpTrace(
                warp_id=w["warp_id"],
                pipe_stage_id=w["pipe_stage_id"],
                instrs=[_decode_instr(i) for i in w["instrs"]],
            )
            for w in data["warps"]
        ],
        queue_lengths={int(k): v for k, v in data["queue_lengths"].items()},
        barrier_arrivals=dict(data["barrier_arrivals"]),
        tb_spec=_decode_tb_spec(data["tb_spec"]),
        program_registers=data["program_registers"],
        smem_words=data["smem_words"],
    )


def _encode_instr(instr: DynamicInstr) -> list:
    # Positional encoding keeps large payloads compact.
    return [
        instr.opcode.value,
        instr.unit.value,
        instr.category.value,
        list(instr.dst_regs),
        list(instr.src_regs),
        instr.queue_push,
        instr.queue_pop,
        instr.barrier_id,
        list(instr.sectors),
        int(instr.is_store),
        instr.smem_words,
        _encode_tma_job(instr.tma_job),
    ]


def _decode_instr(data: list) -> DynamicInstr:
    (opcode, unit, category, dst_regs, src_regs, queue_push, queue_pop,
     barrier_id, sectors, is_store, smem_words, tma_job) = data
    return DynamicInstr(
        opcode=Opcode(opcode),
        unit=FuncUnit(unit),
        category=InstrCategory(category),
        dst_regs=tuple(dst_regs),
        src_regs=tuple(src_regs),
        queue_push=queue_push,
        queue_pop=queue_pop,
        barrier_id=barrier_id,
        sectors=tuple(sectors),
        is_store=bool(is_store),
        smem_words=smem_words,
        tma_job=_decode_tma_job(tma_job),
    )


_TMA_SECTOR_KEYS = ("vector_sectors", "data_vector_sectors")


def _encode_tma_job(job: dict[str, Any] | None) -> dict | None:
    if job is None:
        return None
    encoded = dict(job)
    for key in _TMA_SECTOR_KEYS:
        if key in encoded:
            encoded[key] = [list(v) for v in encoded[key]]
    return encoded


def _decode_tma_job(job: dict | None) -> dict[str, Any] | None:
    if job is None:
        return None
    decoded = dict(job)
    for key in _TMA_SECTOR_KEYS:
        if key in decoded:
            decoded[key] = [tuple(v) for v in decoded[key]]
    return decoded


def _encode_tb_spec(spec) -> dict | None:
    if spec is None:
        return None
    return {
        "num_stages": spec.num_stages,
        "warps_per_stage": [list(ws) for ws in spec.warps_per_stage],
        "stage_registers": list(spec.stage_registers),
        "queues": [
            {
                "queue_id": q.queue_id,
                "src_stage": q.src_stage,
                "dst_stage": q.dst_stage,
                "size": q.size,
            }
            for q in spec.queues
        ],
        "smem_words": spec.smem_words,
        "barrier_expected": dict(spec.barrier_expected),
        "barrier_initial": dict(spec.barrier_initial),
    }


def _decode_tb_spec(data: dict | None):
    if data is None:
        return None
    from repro.core.specs import NamedQueueSpec, ThreadBlockSpec

    return ThreadBlockSpec(
        num_stages=data["num_stages"],
        warps_per_stage=[list(ws) for ws in data["warps_per_stage"]],
        stage_registers=list(data["stage_registers"]),
        queues=[
            NamedQueueSpec(
                queue_id=q["queue_id"],
                src_stage=q["src_stage"],
                dst_stage=q["dst_stage"],
                size=q["size"],
            )
            for q in data["queues"]
        ],
        smem_words=data["smem_words"],
        barrier_expected=dict(data["barrier_expected"]),
        barrier_initial=dict(data["barrier_initial"]),
    )
