"""Persistent content-addressed store for functional traces.

Functional trace generation dominates the cost of every figure
reproduction, and the traces themselves are pure functions of (program,
launch, initial memory image, compiler options).  This module persists
them on disk under their content hash so they survive across processes:
benchmark files, CI jobs and CLI invocations all reuse one another's
work, and the cache directory can be shipped as a CI artifact.

Layout: one gzip-compressed JSON file per entry,
``<cache_dir>/<digest>.json.gz``, wrapped in a versioned envelope.  Any
read failure — missing file, corrupt gzip/JSON, format-version or key
mismatch — is treated as a miss so a bad cache can only cost time,
never correctness.

Environment knobs:

``REPRO_CACHE_DIR``
    Cache directory (default ``.repro_cache`` in the working directory).
``REPRO_CACHE``
    Set to ``0``/``off``/``false`` to disable persistence entirely.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import time
from pathlib import Path

from repro.fexec.trace import (
    TRACE_FORMAT_VERSION,
    KernelTrace,
    decode_traces,
    encode_traces,
)
from repro.telemetry.registry import TELEMETRY

DEFAULT_CACHE_DIR = ".repro_cache"
_DISABLE_VALUES = {"0", "off", "false", "no"}


def _tel_io(op: str, outcome: str, nbytes: int, seconds: float) -> None:
    """Fold one store operation into the registry (cold path only).

    Disk locality depends on what other processes wrote, so these are
    ``invariant=False`` — excluded from the jobs-invariance contract.
    """
    labels = {"op": op, "outcome": outcome}
    TELEMETRY.counter(
        "repro_tracestore_ops_total", labels,
        help="TraceStore loads/saves by outcome", invariant=False,
    ).inc()
    TELEMETRY.counter(
        "repro_tracestore_bytes_total", labels,
        help="Compressed bytes moved by the TraceStore",
        invariant=False,
    ).inc(nbytes)
    TELEMETRY.counter(
        "repro_tracestore_io_seconds_total", labels,
        help="Wall-clock seconds in TraceStore I/O", invariant=False,
    ).inc(seconds)


def cache_enabled() -> bool:
    """Whether the persistent cache is enabled by the environment."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in _DISABLE_VALUES


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class TraceStore:
    """One directory of content-addressed trace files."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()

    @classmethod
    def from_env(cls) -> "TraceStore | None":
        """The environment-configured store, or ``None`` if disabled."""
        if not cache_enabled():
            return None
        return cls(default_cache_dir())

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json.gz"

    # -- read/write ---------------------------------------------------------

    def load(self, key: str) -> dict | None:
        """The stored entry for ``key``, or ``None`` on any failure.

        Returns the payload dict with ``traces`` already decoded to
        :class:`KernelTrace` objects.
        """
        path = self._path(key)
        telemetry = TELEMETRY.enabled
        started = time.perf_counter() if telemetry else 0.0
        try:
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                envelope = json.load(fh)
            if not isinstance(envelope, dict):
                return None
            if envelope.get("format") != TRACE_FORMAT_VERSION:
                return None
            if envelope.get("key") != key:
                return None
            payload = dict(envelope.get("payload") or {})
            payload["traces"] = decode_traces(payload.get("traces") or [])
            if telemetry:
                _tel_io("load", "hit", path.stat().st_size,
                        time.perf_counter() - started)
            return payload
        except (OSError, EOFError, ValueError, KeyError, TypeError):
            if telemetry:
                _tel_io("load", "miss", 0,
                        time.perf_counter() - started)
            return None

    def save(self, key: str, traces: list[KernelTrace], **meta) -> bool:
        """Persist ``traces`` (plus ``meta``) under ``key``.

        The write is atomic (temp file + rename) so concurrent workers
        racing on the same key leave a complete file either way.
        Returns ``False`` if the entry could not be written.
        """
        envelope = {
            "format": TRACE_FORMAT_VERSION,
            "key": key,
            "payload": {"traces": encode_traces(traces), **meta},
        }
        telemetry = TELEMETRY.enabled
        started = time.perf_counter() if telemetry else 0.0
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=self.cache_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as raw:
                    with gzip.open(raw, "wt", encoding="utf-8") as fh:
                        json.dump(envelope, fh, separators=(",", ":"))
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            if telemetry:
                _tel_io("save", "written",
                        self._path(key).stat().st_size,
                        time.perf_counter() - started)
            return True
        except OSError:
            if telemetry:
                _tel_io("save", "failed", 0,
                        time.perf_counter() - started)
            return False

    # -- maintenance --------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def entry_count(self) -> int:
        if not self.cache_dir.is_dir():
            return 0
        return sum(1 for _ in self.cache_dir.glob("*.json.gz"))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.cache_dir.is_dir():
            for path in self.cache_dir.glob("*.json.gz"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
